use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use dwm_core::spm::SpmLayout;
use dwm_core::Placement;
use dwm_device::fault::{FaultInjector, ShiftFaultModel};
use dwm_device::{CostProjection, Dbc, DeviceConfig, DeviceError};
use dwm_foundation::par;
use dwm_trace::Trace;

use crate::report::SimReport;
use crate::scratchpad::Scratchpad;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The trace references an item the placement does not cover.
    UnknownItem {
        /// The out-of-range item index.
        item: usize,
        /// Number of items the placement covers.
        items: usize,
    },
    /// The placement does not fit the configured device geometry.
    GeometryMismatch {
        /// Human-readable explanation.
        reason: String,
    },
    /// An underlying device access failed.
    Device(DeviceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownItem { item, items } => {
                write!(f, "trace item {item} outside placement of {items} items")
            }
            SimError::GeometryMismatch { reason } => {
                write!(f, "placement does not fit device: {reason}")
            }
            SimError::Device(e) => write!(f, "device access failed: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for SimError {
    fn from(e: DeviceError) -> Self {
        SimError::Device(e)
    }
}

/// Replays traces through a bit-level scratchpad under a placement.
///
/// The simulator is *self-checking*: each write stores a token derived
/// from the item id and a per-item version counter, and each read
/// compares the device's answer against a shadow model. Any divergence
/// increments `integrity_errors` in the report — placements that
/// corrupt the item↔offset mapping cannot silently pass.
#[derive(Debug, Clone)]
pub struct SpmSimulator {
    spm: Scratchpad,
    /// `slot_of[item] = (dbc, offset)`.
    slot_of: Vec<(usize, usize)>,
    /// Shadow model of the last value written per item.
    shadow: Vec<u64>,
    /// Per-item write version, used to derive distinguishable tokens.
    version: Vec<u64>,
    /// Mask of representable bits given the track count.
    word_mask: u64,
    /// Optional shift-slip injector (fault-injection runs).
    injector: Option<FaultInjector>,
}

impl SpmSimulator {
    /// Builds a simulator for a single-DBC device and a single-tape
    /// placement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GeometryMismatch`] when the placement needs
    /// more words than one DBC provides, or when the config has more
    /// than one DBC (use [`SpmSimulator::with_layout`] for multi-DBC).
    pub fn new(config: &DeviceConfig, placement: &Placement) -> Result<Self, SimError> {
        if config.dbcs() != 1 {
            return Err(SimError::GeometryMismatch {
                reason: format!(
                    "config has {} DBCs; single-tape simulation needs exactly 1",
                    config.dbcs()
                ),
            });
        }
        if placement.num_items() > config.words_per_dbc() {
            return Err(SimError::GeometryMismatch {
                reason: format!(
                    "{} items exceed the {}-word DBC",
                    placement.num_items(),
                    config.words_per_dbc()
                ),
            });
        }
        let slot_of = (0..placement.num_items())
            .map(|i| (0usize, placement.offset_of(i)))
            .collect();
        Ok(Self::from_parts(config, slot_of))
    }

    /// Builds a simulator for an identity placement over `items` items
    /// (the naive baseline).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpmSimulator::new`].
    pub fn with_identity_placement(config: &DeviceConfig, items: usize) -> Result<Self, SimError> {
        SpmSimulator::new(config, &Placement::identity(items))
    }

    /// Builds a simulator for a multi-DBC layout.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GeometryMismatch`] when the layout's
    /// geometry disagrees with the device configuration.
    pub fn with_layout(config: &DeviceConfig, layout: &SpmLayout) -> Result<Self, SimError> {
        if layout.dbcs() != config.dbcs() || layout.words_per_dbc() != config.words_per_dbc() {
            return Err(SimError::GeometryMismatch {
                reason: format!(
                    "layout is {}×{} but device is {}×{}",
                    layout.dbcs(),
                    layout.words_per_dbc(),
                    config.dbcs(),
                    config.words_per_dbc()
                ),
            });
        }
        let slot_of = (0..layout.num_items())
            .map(|i| (layout.dbc_of(i), layout.offset_of(i)))
            .collect();
        Ok(Self::from_parts(config, slot_of))
    }

    fn from_parts(config: &DeviceConfig, slot_of: Vec<(usize, usize)>) -> Self {
        let n = slot_of.len();
        let width = config.tracks_per_dbc();
        SpmSimulator {
            spm: Scratchpad::new(config),
            slot_of,
            shadow: vec![0; n],
            version: vec![0; n],
            word_mask: if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            },
            injector: None,
        }
    }

    /// Enables shift-slip fault injection for subsequent
    /// [`run`](Self::run)s. Each access's shift distance is sampled for
    /// slips; a slip physically displaces the tape, and the next access
    /// pays the re-alignment (see
    /// [`Dbc::inject_displacement_error`](dwm_device::Dbc::inject_displacement_error)).
    pub fn with_fault_injection(mut self, model: ShiftFaultModel, seed: u64) -> Self {
        self.injector = Some(FaultInjector::new(model, seed));
        self
    }

    /// The underlying scratchpad (for inspecting per-DBC state).
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.spm
    }

    /// Replays `trace`, returning counters, latency/energy projection,
    /// and the integrity-check result. Counters accumulate across
    /// calls until [`reset`](Self::reset).
    ///
    /// Multi-DBC replays run one worker per DBC when `DWM_THREADS`
    /// allows (DBCs shift independently, so the per-DBC access
    /// subsequences never interact); the report is merged in DBC order
    /// and is byte-identical to the sequential replay at any worker
    /// count. Fault-injection runs always replay sequentially: the
    /// injector draws one slip per access from a single RNG stream, so
    /// its results are defined by trace order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownItem`] if the trace touches an item
    /// outside the placement, or a device error bubbled up from the
    /// bit-level model.
    pub fn run(&mut self, trace: &Trace) -> Result<SimReport, SimError> {
        accesses_counter().add(trace.len() as u64);
        if self.injector.is_none() && self.spm.num_dbcs() > 1 && par::num_threads() > 1 {
            return self.run_parallel(trace);
        }
        let hist = shift_distance_histogram();
        let mut integrity_errors = 0u64;
        let mut slip_events = 0u64;
        for a in trace.iter() {
            let item = a.item.index();
            let (dbc, offset) = *self.slot_of.get(item).ok_or(SimError::UnknownItem {
                item,
                items: self.slot_of.len(),
            })?;
            let shifts_before = self.spm.dbc_stats(dbc).shifts;
            if a.kind.is_write() {
                self.version[item] += 1;
                let token = write_token(item, self.version[item], self.word_mask);
                self.spm.write(dbc, offset, token)?;
                self.shadow[item] = token;
            } else {
                let value = self.spm.read(dbc, offset)?;
                if value != self.shadow[item] {
                    integrity_errors += 1;
                }
            }
            let distance = self.spm.dbc_stats(dbc).shifts - shifts_before;
            hist.record(distance);
            if let Some(injector) = &mut self.injector {
                let (net, events) = injector.draw_slip(distance);
                slip_events += events;
                if net != 0 {
                    self.spm.inject_displacement_error(dbc, net);
                }
            }
        }
        self.report(integrity_errors, slip_events)
    }

    /// Parallel multi-DBC replay: the trace is split into per-DBC
    /// access subsequences, each DBC (with the shadow state of the
    /// items living on it) is simulated on its own worker, and the
    /// outcomes merge back in DBC order.
    fn run_parallel(&mut self, trace: &Trace) -> Result<SimReport, SimError> {
        let num_dbcs = self.spm.num_dbcs();
        // Validate and bucket accesses up front; order within each DBC
        // is trace order, which is all the per-DBC state depends on.
        let mut accesses_of: Vec<Vec<(usize, bool, usize)>> = vec![Vec::new(); num_dbcs];
        for a in trace.iter() {
            let item = a.item.index();
            let (dbc, offset) = *self.slot_of.get(item).ok_or(SimError::UnknownItem {
                item,
                items: self.slot_of.len(),
            })?;
            accesses_of[dbc].push((offset, a.kind.is_write(), item));
        }
        // Each unit owns one DBC plus the shadow/version entries of the
        // items placed on it — disjoint by construction.
        let mut state_of: Vec<HashMap<usize, (u64, u64)>> = vec![HashMap::new(); num_dbcs];
        for (item, &(dbc, _)) in self.slot_of.iter().enumerate() {
            state_of[dbc].insert(item, (self.shadow[item], self.version[item]));
        }
        struct Unit<'a> {
            dbc: &'a mut Dbc,
            accesses: Vec<(usize, bool, usize)>,
            /// `item -> (shadow value, write version)`.
            state: HashMap<usize, (u64, u64)>,
        }
        let word_mask = self.word_mask;
        let mut units: Vec<Unit<'_>> = self
            .spm
            .dbcs_mut()
            .iter_mut()
            .zip(accesses_of.into_iter().zip(state_of))
            .map(|(dbc, (accesses, state))| Unit {
                dbc,
                accesses,
                state,
            })
            .collect();
        let hist = shift_distance_histogram();
        let outcomes: Vec<Result<u64, DeviceError>> = par::par_map_mut(&mut units, |_, unit| {
            let mut integrity_errors = 0u64;
            for &(offset, is_write, item) in &unit.accesses {
                let (shadow, version) = unit.state.get_mut(&item).expect("item lives on this DBC");
                let shifts_before = unit.dbc.stats().shifts;
                if is_write {
                    *version += 1;
                    let token = write_token(item, *version, word_mask);
                    unit.dbc.write(offset, token)?;
                    *shadow = token;
                } else if unit.dbc.read(offset)? != *shadow {
                    integrity_errors += 1;
                }
                hist.record(unit.dbc.stats().shifts - shifts_before);
            }
            Ok(integrity_errors)
        });
        // Merge in DBC order: shadow state back into the flat arrays,
        // integrity counts summed, first device error (by DBC index)
        // reported.
        let mut integrity_errors = 0u64;
        for unit in units {
            for (item, (shadow, version)) in unit.state {
                self.shadow[item] = shadow;
                self.version[item] = version;
            }
        }
        for outcome in outcomes {
            integrity_errors += outcome?;
        }
        self.report(integrity_errors, 0)
    }

    fn report(&self, integrity_errors: u64, slip_events: u64) -> Result<SimReport, SimError> {
        let stats = self.spm.total_stats();
        let projection = CostProjection::new(self.spm.config());
        Ok(SimReport {
            stats,
            per_dbc: (0..self.spm.num_dbcs())
                .map(|d| *self.spm.dbc_stats(d))
                .collect(),
            latency: projection.latency(&stats),
            energy: projection.energy(&stats),
            integrity_errors,
            slip_events,
        })
    }

    /// Clears counters and shadow state (device contents are zeroed
    /// logically by resetting versions).
    pub fn reset(&mut self) {
        self.spm.reset_stats();
        self.shadow.iter_mut().for_each(|v| *v = 0);
        self.version.iter_mut().for_each(|v| *v = 0);
    }
}

/// Accesses replayed across all simulator runs in this process.
pub(crate) fn accesses_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_sim_accesses_total",
        "Trace accesses replayed through the bit-level device model"
    )
}

/// Distribution of shift distances (domains moved per access) — the
/// paper's cost metric, observed at device level.
pub(crate) fn shift_distance_histogram() -> &'static dwm_foundation::obs::Histogram {
    dwm_foundation::obs_histogram!(
        "dwm_sim_shift_distance",
        "Domains shifted per simulated access (the paper's cost metric)"
    )
}

/// Token stored on a write: mixes item and version so stale or
/// misplaced data is distinguishable on read-back.
fn write_token(item: usize, version: u64, word_mask: u64) -> u64 {
    (item as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(version)
        & word_mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_core::cost::{CostModel, SinglePortCost};
    use dwm_core::{GroupedChainGrowth, Hybrid, PlacementAlgorithm};
    use dwm_graph::AccessGraph;
    use dwm_trace::kernels::Kernel;

    fn config(l: usize) -> DeviceConfig {
        DeviceConfig::builder()
            .domains_per_track(l)
            .tracks_per_dbc(32)
            .build()
            .unwrap()
    }

    #[test]
    fn sim_matches_analytic_single_port_model() {
        for kernel in Kernel::suite() {
            let trace = kernel.trace();
            let n = trace.num_items();
            let graph = AccessGraph::from_trace(&trace);
            let placement = GroupedChainGrowth.place(&graph);
            let analytic = SinglePortCost::new().trace_cost(&placement, &trace);
            let mut sim = SpmSimulator::new(&config(n.max(1)), &placement).unwrap();
            let report = sim.run(&trace).unwrap();
            assert_eq!(
                report.stats.shifts,
                analytic.stats.shifts,
                "sim diverges from analytic model on {}",
                kernel.name()
            );
            assert_eq!(report.integrity_errors, 0, "{}", kernel.name());
        }
    }

    #[test]
    fn integrity_checking_passes_on_real_workloads() {
        let trace = Kernel::MergeSort {
            n: 32,
            block: 2,
            seed: 5,
        }
        .trace();
        let n = trace.num_items();
        let mut sim = SpmSimulator::with_identity_placement(&config(n), n).unwrap();
        let report = sim.run(&trace).unwrap();
        assert_eq!(report.integrity_errors, 0);
        assert!(report.latency.total_cycles() > 0);
        assert!(report.energy.total_pj() > 0.0);
    }

    #[test]
    fn unknown_item_is_reported() {
        let mut sim = SpmSimulator::with_identity_placement(&config(4), 4).unwrap();
        let trace = Trace::from_ids([9u32]);
        assert!(matches!(
            sim.run(&trace),
            Err(SimError::UnknownItem { item: 9, items: 4 })
        ));
    }

    #[test]
    fn oversized_placement_is_rejected() {
        let p = Placement::identity(100);
        assert!(matches!(
            SpmSimulator::new(&config(64), &p),
            Err(SimError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn multi_dbc_config_requires_layout_api() {
        let cfg = DeviceConfig::builder().dbcs(2).build().unwrap();
        assert!(matches!(
            SpmSimulator::with_identity_placement(&cfg, 4),
            Err(SimError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn reset_clears_counters() {
        let trace = Trace::from_ids([0u32, 1, 2, 1]);
        let mut sim = SpmSimulator::with_identity_placement(&config(8), 3).unwrap();
        sim.run(&trace).unwrap();
        sim.reset();
        let report = sim.run(&Trace::from_ids([0u32])).unwrap();
        assert_eq!(report.stats.accesses(), 1);
    }

    #[test]
    fn fault_injection_preserves_data_and_counts_slips() {
        let trace = Kernel::Fft { n: 32, block: 1 }.trace();
        let mut sim = SpmSimulator::with_identity_placement(&config(32), 32)
            .unwrap()
            .with_fault_injection(ShiftFaultModel::new(0.02), 77);
        let report = sim.run(&trace).unwrap();
        // Slips occurred and were repaired transparently: data intact,
        // extra shifts paid.
        assert!(report.slip_events > 0);
        assert_eq!(report.integrity_errors, 0);
        let clean = SpmSimulator::with_identity_placement(&config(32), 32)
            .unwrap()
            .run(&trace)
            .unwrap();
        // Slips perturb the shift count (a slip may even luckily move
        // the tape toward its next target, so the sign is not fixed —
        // only the perturbation and the zero-slip baseline are).
        assert_ne!(report.stats.shifts, clean.stats.shifts);
        assert_eq!(clean.slip_events, 0);
    }

    #[test]
    fn fault_injection_is_seed_deterministic() {
        let trace = Kernel::Lu { n: 16 }.trace();
        let run = |seed| {
            SpmSimulator::with_identity_placement(&config(16), 16)
                .unwrap()
                .with_fault_injection(ShiftFaultModel::new(0.05), seed)
                .run(&trace)
                .unwrap()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).stats.shifts, run(2).stats.shifts);
    }

    #[test]
    fn fewer_shifts_means_fewer_slips() {
        // The reliability argument: a better placement shifts less and
        // is therefore exposed to fewer slip events.
        let trace = Kernel::Histogram {
            bins: 32,
            samples: 600,
            seed: 4,
        }
        .trace();
        let graph = AccessGraph::from_trace(&trace);
        let model = ShiftFaultModel::new(0.02);
        let naive = SpmSimulator::with_identity_placement(&config(32), 32)
            .unwrap()
            .with_fault_injection(model, 5)
            .run(&trace)
            .unwrap();
        let tuned_placement = Hybrid::default().place(&graph);
        let tuned = SpmSimulator::new(&config(32), &tuned_placement)
            .unwrap()
            .with_fault_injection(model, 5)
            .run(&trace)
            .unwrap();
        assert!(tuned.slip_events < naive.slip_events);
    }

    #[test]
    fn layout_simulation_matches_layout_cost() {
        use dwm_core::spm::SpmAllocator;
        use dwm_device::PortLayout;
        let trace = Kernel::MatMul { n: 8, block: 2 }.trace();
        let layout = SpmAllocator::new(4, 16)
            .allocate(&trace, &GroupedChainGrowth)
            .unwrap();
        let cfg = DeviceConfig::builder()
            .dbcs(4)
            .domains_per_track(16)
            .tracks_per_dbc(32)
            .build()
            .unwrap();
        let mut sim = SpmSimulator::with_layout(&cfg, &layout).unwrap();
        let report = sim.run(&trace).unwrap();
        let (analytic, _) = layout.trace_cost(&trace, &PortLayout::single());
        assert_eq!(report.stats.shifts, analytic.shifts);
        assert_eq!(report.integrity_errors, 0);
    }

    #[test]
    fn parallel_replay_matches_sequential() {
        use dwm_core::spm::SpmAllocator;
        use dwm_foundation::par::override_threads;
        // The override is process-global; this is the only test in the
        // dwm-sim binary that installs it, so no lock is needed yet.
        let trace = Kernel::MergeSort {
            n: 48,
            block: 4,
            seed: 9,
        }
        .trace();
        let layout = SpmAllocator::new(4, 16)
            .allocate(&trace, &GroupedChainGrowth)
            .unwrap();
        let cfg = DeviceConfig::builder()
            .dbcs(4)
            .domains_per_track(16)
            .tracks_per_dbc(32)
            .build()
            .unwrap();
        let sequential = {
            let _g = override_threads(1);
            let mut sim = SpmSimulator::with_layout(&cfg, &layout).unwrap();
            sim.run(&trace).unwrap()
        };
        let parallel = {
            let _g = override_threads(8);
            let mut sim = SpmSimulator::with_layout(&cfg, &layout).unwrap();
            sim.run(&trace).unwrap()
        };
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.integrity_errors, 0);
        // Repeated runs accumulate identically too (shadow state must
        // survive the merge back out of the workers).
        let twice = {
            let _g = override_threads(8);
            let mut sim = SpmSimulator::with_layout(&cfg, &layout).unwrap();
            sim.run(&trace).unwrap();
            sim.run(&trace).unwrap()
        };
        assert_eq!(twice.integrity_errors, 0);
        assert_eq!(twice.stats.accesses(), 2 * sequential.stats.accesses());
    }
}
