//! Experiment T3 (headline table): shift counts per algorithm per
//! benchmark on a single-port DBC, with reduction relative to the
//! naive order-of-appearance placement.
//!
//! The last column adds local-search refinement on top of the proposed
//! grouped-chain algorithm ("grouped+ls"), the full pipeline.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{GroupedChainGrowth, LocalSearch};
use dwm_experiments::{algorithm_suite, percent_reduction, workload_suite, Table};
use dwm_foundation::par;
use dwm_graph::AccessGraph;

fn main() {
    println!("Table 3: total shifts per benchmark (single-port DBC); (reduction vs naive)\n");
    let algorithms = algorithm_suite();
    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(algorithms.iter().map(|a| a.name()));
    header.push("grouped+ls".into());
    let mut t = Table::new(header);

    let model = SinglePortCost::new();
    // One row per benchmark, computed independently; row order follows
    // the workload suite at every DWM_THREADS setting.
    let workloads = workload_suite();
    let rows = par::par_map(&workloads, |(name, trace)| {
        let graph = AccessGraph::from_trace(trace);
        let mut cells = vec![name.clone()];
        let naive_shifts = model
            .trace_cost(&algorithms[0].place(&graph), trace)
            .stats
            .shifts;
        for alg in &algorithms {
            let shifts = model.trace_cost(&alg.place(&graph), trace).stats.shifts;
            if alg.name() == "naive" {
                cells.push(shifts.to_string());
            } else {
                cells.push(format!(
                    "{} ({})",
                    shifts,
                    percent_reduction(naive_shifts, shifts)
                ));
            }
        }
        let refined = LocalSearch::default().refine_placement_of(&GroupedChainGrowth, &graph);
        let shifts = model.trace_cost(&refined, trace).stats.shifts;
        cells.push(format!(
            "{} ({})",
            shifts,
            percent_reduction(naive_shifts, shifts)
        ));
        cells
    });
    for row in rows {
        t.row(row);
    }
    t.print();
}
