//! Experiment T7 (extension): the five extended kernels.
//!
//! Validates that the headline T3 result generalizes beyond the base
//! suite: image processing (conv2d), clustering (kmeans), shortest
//! paths (dijkstra), sparse algebra (spmv), and text search
//! (string-match), all on the single-port DBC with the hybrid pipeline.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{Hybrid, OrderOfAppearance, OrganPipe, PlacementAlgorithm};
use dwm_experiments::{percent_reduction, Table};
use dwm_foundation::par;
use dwm_graph::AccessGraph;
use dwm_trace::kernels::Kernel;

fn main() {
    println!("Table 7: extended kernels, shifts on a single-port DBC\n");
    let mut t = Table::new([
        "benchmark",
        "items",
        "accesses",
        "naive",
        "organ-pipe",
        "hybrid",
        "reduction",
    ]);
    let model = SinglePortCost::new();
    // Kernels are independent; rows come back in suite order.
    let kernels = Kernel::extended_suite();
    let rows = par::par_map(&kernels, |kernel| {
        let trace = kernel.trace();
        let graph = AccessGraph::from_trace(&trace);
        let naive = model
            .trace_cost(&OrderOfAppearance.place(&graph), &trace)
            .stats
            .shifts;
        let pipe = model
            .trace_cost(&OrganPipe.place(&graph), &trace)
            .stats
            .shifts;
        let hybrid = model
            .trace_cost(&Hybrid::default().place(&graph), &trace)
            .stats
            .shifts;
        [
            kernel.name().to_string(),
            graph.num_items().to_string(),
            trace.len().to_string(),
            naive.to_string(),
            pipe.to_string(),
            hybrid.to_string(),
            percent_reduction(naive, hybrid),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print();
}
