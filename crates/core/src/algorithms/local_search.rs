use dwm_graph::{AccessGraph, ArrangementEval, CsrGraph};

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Local-search refinement: repeated first-improvement passes of
/// *windowed* position swaps until a pass yields no improvement (or
/// the pass budget is exhausted).
///
/// Each pass tries swapping the items at offsets `k` and `k + d` for
/// every `k` and every `d ≤ window`. Adjacent swaps (`window = 1`)
/// converge fast but get trapped in shallow minima on structured
/// graphs (grids, butterflies); a modest window escapes most of them
/// while keeping a pass at `O(n · window · d̄)`. Deltas come from an
/// [`ArrangementEval`] over the frozen [`CsrGraph`], so the inner loop
/// streams flat neighbour arrays instead of walking adjacency trees.
///
/// `LocalSearch` is both a standalone refiner ([`LocalSearch::refine`])
/// and composable: call [`refine`](LocalSearch::refine) on any
/// algorithm's output, which is what the experiment harness's "+LS"
/// variants and the [`Hybrid`](crate::algorithms::Hybrid) pipeline do.
/// Pipelines that already hold a frozen graph use
/// [`refine_frozen`](LocalSearch::refine_frozen) to skip re-freezing.
///
/// Refinement never increases cost (each accepted move strictly
/// decreases it), an invariant the property tests enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearch {
    /// Maximum number of full passes.
    pub max_passes: usize,
    /// Maximum distance between swapped positions.
    pub window: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            max_passes: 50,
            window: 12,
        }
    }
}

impl LocalSearch {
    /// A refiner with the given pass budget and the default window.
    pub fn new(max_passes: usize) -> Self {
        LocalSearch {
            max_passes,
            ..LocalSearch::default()
        }
    }

    /// Sets the swap window (1 = adjacent swaps only).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Refines `placement` in place; returns the total cost reduction
    /// achieved (non-negative).
    pub fn refine(&self, graph: &AccessGraph, placement: &mut Placement) -> u64 {
        if placement.num_items() < 2 {
            return 0;
        }
        let csr = CsrGraph::freeze(graph);
        self.refine_frozen(&csr, placement)
    }

    /// [`refine`](Self::refine) on an already-frozen graph.
    pub fn refine_frozen(&self, csr: &CsrGraph, placement: &mut Placement) -> u64 {
        let n = placement.num_items();
        if n < 2 {
            return 0;
        }
        let w = self.window;
        let mut eval = ArrangementEval::new(csr, placement.offsets());
        let mut saved = 0i64;
        // Anchor profile: ga[q − k] = Σ_{v∈N(a)} w(a,v)·|q − pos[v]|
        // for the window slots q ∈ [k, hi], a = item_at(k). Filled in
        // one row walk, it turns each pair's delta into a single walk
        // of the *other* item's row (see the identity below) instead
        // of two — the anchor's row is not re-walked per pair.
        let mut ga = vec![0i64; w + 1];
        let mut mid: Vec<(i64, i64)> = Vec::new();
        // Metrics accumulate locally and flush after the pass loop.
        let (mut passes, mut swaps) = (0u64, 0u64);
        for _ in 0..self.max_passes {
            passes += 1;
            let mut improved = false;
            for k in 0..n - 1 {
                let hi = (k + w).min(n - 1);
                let mut a = eval.item_at(k);
                window_profile(csr, &eval, a, k, hi, &mut ga, &mut mid);
                for j in (k + 1)..=hi {
                    let b = eval.item_at(j);
                    // One walk of b's row: G_b(k) − G_b(j) and w(a,b).
                    let (half_b, wab) = eval.half_swap_delta(b, j, k, a);
                    // Swapping a (slot k) with b (slot j) changes their
                    // own-edge terms by the profile differences; both
                    // differences double-count the shared edge (a, b),
                    // whose length a swap preserves, hence the
                    // +2·w(a,b)·(j − k) correction. All-integer, so the
                    // value equals `eval.swap_delta(a, b)` exactly (the
                    // apply below re-checks that in debug builds).
                    let delta = (ga[j - k] - ga[0]) + half_b + 2 * wab * (j - k) as i64;
                    if delta < 0 {
                        swaps += 1;
                        eval.apply_swap_with_delta(a, b, delta);
                        saved -= delta;
                        improved = true;
                        a = b; // slot k now holds b
                        window_profile(csr, &eval, a, k, hi, &mut ga, &mut mid);
                    }
                }
            }
            if !improved {
                break;
            }
        }
        window_passes_counter().add(passes);
        improving_swaps_counter().add(swaps);
        *placement = Placement::from_offsets(eval.positions().to_vec())
            .expect("evaluator maintains a permutation");
        saved as u64
    }

    /// Convenience: place with `base`, then refine.
    pub fn refine_placement_of(
        &self,
        base: &dyn PlacementAlgorithm,
        graph: &AccessGraph,
    ) -> Placement {
        let mut p = base.place(graph);
        self.refine(graph, &mut p);
        p
    }
}

/// Fills `ga[q − k] = Σ_{v∈N(a)} w(a,v)·|q − pos[v]|` for every window
/// slot `q ∈ [k, hi]` in one walk of `a`'s row. Neighbours left of the
/// window contribute the linear ramp `q·W − S` (weight and moment
/// sums), neighbours right of it the mirrored ramp; only the few
/// neighbours *inside* the window need per-slot absolute values.
fn window_profile(
    csr: &CsrGraph,
    eval: &ArrangementEval<'_>,
    a: usize,
    k: usize,
    hi: usize,
    ga: &mut [i64],
    mid: &mut Vec<(i64, i64)>,
) {
    let (vs, ws) = csr.neighbor_slices(a);
    let (ki, hii) = (k as i64, hi as i64);
    let (mut wl, mut sl, mut wr, mut sr) = (0i64, 0i64, 0i64, 0i64);
    mid.clear();
    for (&v, &wt) in vs.iter().zip(ws) {
        let pv = eval.position_of(v as usize) as i64;
        let wt = wt as i64;
        if pv <= ki {
            wl += wt;
            sl += wt * pv;
        } else if pv >= hii {
            wr += wt;
            sr += wt * pv;
        } else {
            mid.push((pv, wt));
        }
    }
    for (i, g) in ga[..=hi - k].iter_mut().enumerate() {
        let q = ki + i as i64;
        let mut acc = (q * wl - sl) + (sr - q * wr);
        for &(pv, wt) in mid.iter() {
            acc += wt * (q - pv).abs();
        }
        *g = acc;
    }
}

/// Window passes executed across all local-search runs.
pub(crate) fn window_passes_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_local_search_passes_total",
        "Windowed improvement passes executed by local search"
    )
}

/// Improving swaps applied across all local-search runs.
pub(crate) fn improving_swaps_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_local_search_swaps_total",
        "Improving swaps applied by local search"
    )
}

impl PlacementAlgorithm for LocalSearch {
    fn name(&self) -> String {
        "local-search".into()
    }

    /// As a standalone algorithm, refines the identity placement.
    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut p = Placement::identity(graph.num_items());
        self.refine(graph, &mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, two_cluster_graph};
    use crate::algorithms::{ChainGrowth, OrganPipe, RandomPlacement};

    #[test]
    fn refine_never_increases_cost() {
        let g = kernel_graph();
        for base in [
            &RandomPlacement::new(5) as &dyn PlacementAlgorithm,
            &ChainGrowth,
            &OrganPipe,
        ] {
            let mut p = base.place(&g);
            let before = g.arrangement_cost(p.offsets());
            let saved = LocalSearch::default().refine(&g, &mut p);
            let after = g.arrangement_cost(p.offsets());
            assert!(after <= before, "{} got worse", base.name());
            assert_eq!(before - after, saved, "reported saving mismatch");
        }
    }

    #[test]
    fn eval_position_swap_delta_matches_recomputation() {
        let g = two_cluster_graph();
        let csr = CsrGraph::freeze(&g);
        let mut p = RandomPlacement::new(11).place(&g);
        let n = p.num_items();
        for k in 0..n {
            for j in (k + 1)..n {
                let before = g.arrangement_cost(p.offsets()) as i64;
                let eval = ArrangementEval::new(&csr, p.offsets());
                let (a, b) = (p.item_at(k), p.item_at(j));
                let delta = eval.swap_delta(a, b);
                p.swap_items(a, b);
                let after = g.arrangement_cost(p.offsets()) as i64;
                assert_eq!(after - before, delta);
                p.swap_items(a, b);
            }
        }
    }

    #[test]
    fn converges_to_local_optimum() {
        let g = kernel_graph();
        let csr = CsrGraph::freeze(&g);
        let mut p = RandomPlacement::new(3).place(&g);
        LocalSearch::default().refine(&g, &mut p);
        // No in-window swap may improve further.
        let eval = ArrangementEval::new(&csr, p.offsets());
        let n = p.num_items();
        for k in 0..n - 1 {
            for j in (k + 1)..(k + 1 + LocalSearch::default().window).min(n) {
                assert!(eval.swap_delta(eval.item_at(k), eval.item_at(j)) >= 0);
            }
        }
    }

    #[test]
    fn frozen_entry_point_matches_refine() {
        let g = two_cluster_graph();
        let csr = CsrGraph::freeze(&g);
        let mut a = RandomPlacement::new(7).place(&g);
        let mut b = a.clone();
        let saved_a = LocalSearch::default().refine(&g, &mut a);
        let saved_b = LocalSearch::default().refine_frozen(&csr, &mut b);
        assert_eq!(a, b);
        assert_eq!(saved_a, saved_b);
    }

    #[test]
    fn refine_placement_of_composes() {
        let g = kernel_graph();
        let base = ChainGrowth;
        let refined = LocalSearch::default().refine_placement_of(&base, &g);
        assert!(
            g.arrangement_cost(refined.offsets()) <= g.arrangement_cost(base.place(&g).offsets())
        );
    }

    #[test]
    fn handles_trivial_graphs() {
        for n in 0..2 {
            let g = AccessGraph::with_items(n);
            let mut p = Placement::identity(n);
            assert_eq!(LocalSearch::default().refine(&g, &mut p), 0);
        }
    }
}
