//! Seeded synthetic trace generators.
//!
//! The sensitivity sweeps (experiments F4/F5/F7) and the property tests
//! need workloads whose statistical character is controlled: uniform
//! random (worst case for placement), Zipf-skewed (frequency-dominated),
//! sequential/strided (regular), and Markov-clustered (locality-
//! dominated, the case placement exploits best). All generators are
//! deterministic given their seed.

use dwm_foundation::rng::Zipf;
use dwm_foundation::Rng;

use crate::access::{Access, AccessKind, Trace};
use crate::profile::{bucket_lo, TraceProfile};

/// A source of synthetic traces.
///
/// Implementors are cheap value types describing a distribution; call
/// [`generate`](TraceGenerator::generate) to materialize a trace of the
/// requested length. The trait is object-safe so sweeps can iterate
/// over `&[&dyn TraceGenerator]`.
pub trait TraceGenerator {
    /// Short name used as the trace label and in report tables.
    fn name(&self) -> String;

    /// Generates `len` accesses over `self`'s item universe using the
    /// generator's seed (same seed → same trace).
    fn generate(&self, len: usize) -> Trace;
}

fn rw_kind(rng: &mut Rng, write_ratio: f64) -> AccessKind {
    if rng.gen_bool(write_ratio.clamp(0.0, 1.0)) {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

/// Uniform random accesses over `items` items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformGen {
    /// Number of distinct items.
    pub items: usize,
    /// Probability an access is a write.
    pub write_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UniformGen {
    /// Uniform reads over `items` items with the given seed.
    pub fn new(items: usize, seed: u64) -> Self {
        UniformGen {
            items,
            write_ratio: 0.0,
            seed,
        }
    }
}

impl TraceGenerator for UniformGen {
    fn name(&self) -> String {
        format!("uniform-{}", self.items)
    }

    fn generate(&self, len: usize) -> Trace {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut trace: Trace = (0..len)
            .map(|_| Access {
                item: (rng.gen_range(0..self.items.max(1)) as u32).into(),
                kind: rw_kind(&mut rng, self.write_ratio),
            })
            .collect();
        trace = trace.with_label(self.name());
        trace
    }
}

/// Zipf-distributed accesses: item `i` (0-based rank) is drawn with
/// probability proportional to `1 / (i + 1)^exponent`.
///
/// Sampling uses an explicit CDF and binary search, so no external
/// distribution crate is needed and the result is reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfGen {
    /// Number of distinct items.
    pub items: usize,
    /// Skew exponent (0 = uniform; ≈1 = classic Zipf).
    pub exponent: f64,
    /// Probability an access is a write.
    pub write_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ZipfGen {
    /// Zipf reads with the classic exponent 1.0.
    pub fn new(items: usize, seed: u64) -> Self {
        ZipfGen {
            items,
            exponent: 1.0,
            write_ratio: 0.0,
            seed,
        }
    }

    /// Sets the skew exponent.
    pub fn with_exponent(mut self, exponent: f64) -> Self {
        self.exponent = exponent;
        self
    }
}

impl TraceGenerator for ZipfGen {
    fn name(&self) -> String {
        format!("zipf-{}-s{:.2}", self.items, self.exponent)
    }

    fn generate(&self, len: usize) -> Trace {
        let zipf = Zipf::new(self.items.max(1), self.exponent);
        let mut rng = Rng::seed_from_u64(self.seed);
        let trace: Trace = (0..len)
            .map(|_| {
                let idx = zipf.sample(&mut rng);
                Access {
                    item: (idx as u32).into(),
                    kind: rw_kind(&mut rng, self.write_ratio),
                }
            })
            .collect();
        trace.with_label(self.name())
    }
}

/// Repeated sequential sweeps over `items` items (streaming pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialGen {
    /// Number of distinct items.
    pub items: usize,
}

impl SequentialGen {
    /// A sequential sweep generator.
    pub fn new(items: usize) -> Self {
        SequentialGen { items }
    }
}

impl TraceGenerator for SequentialGen {
    fn name(&self) -> String {
        format!("seq-{}", self.items)
    }

    fn generate(&self, len: usize) -> Trace {
        let trace: Trace = (0..len)
            .map(|t| Access::read((t % self.items.max(1)) as u32))
            .collect();
        trace.with_label(self.name())
    }
}

/// Strided accesses: item `(t * stride) mod items` at step `t`
/// (column-major array walks, banked FFT stages, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedGen {
    /// Number of distinct items.
    pub items: usize,
    /// Stride between consecutive accesses.
    pub stride: usize,
}

impl StridedGen {
    /// A strided generator.
    pub fn new(items: usize, stride: usize) -> Self {
        StridedGen { items, stride }
    }
}

impl TraceGenerator for StridedGen {
    fn name(&self) -> String {
        format!("stride-{}-by{}", self.items, self.stride)
    }

    fn generate(&self, len: usize) -> Trace {
        let n = self.items.max(1);
        let trace: Trace = (0..len)
            .map(|t| Access::read(((t * self.stride) % n) as u32))
            .collect();
        trace.with_label(self.name())
    }
}

/// Markov-cluster generator: items are grouped into clusters; the walk
/// stays inside its current cluster with probability `stay`, and jumps
/// to a uniformly random cluster otherwise.
///
/// This models the phase-local behaviour of real programs, which is the
/// structure adjacency-driven placement exploits: items co-accessed in
/// a phase should be co-located on the tape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovGen {
    /// Number of distinct items.
    pub items: usize,
    /// Number of clusters items are divided into.
    pub clusters: usize,
    /// Probability of staying within the current cluster per step.
    pub stay: f64,
    /// Probability an access is a write.
    pub write_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MarkovGen {
    /// A clustered walk with the given geometry and a default 0.9 stay
    /// probability.
    pub fn new(items: usize, clusters: usize, seed: u64) -> Self {
        MarkovGen {
            items,
            clusters: clusters.max(1),
            stay: 0.9,
            write_ratio: 0.0,
            seed,
        }
    }

    /// Sets the stay probability.
    pub fn with_stay(mut self, stay: f64) -> Self {
        self.stay = stay;
        self
    }
}

impl TraceGenerator for MarkovGen {
    fn name(&self) -> String {
        format!("markov-{}-c{}-p{:.2}", self.items, self.clusters, self.stay)
    }

    fn generate(&self, len: usize) -> Trace {
        let n = self.items.max(1);
        let k = self.clusters.min(n);
        let cluster_size = n.div_ceil(k);
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut cluster = 0usize;
        let trace: Trace = (0..len)
            .map(|_| {
                if !rng.gen_bool(self.stay.clamp(0.0, 1.0)) {
                    cluster = rng.gen_range(0..k);
                }
                let lo = cluster * cluster_size;
                let hi = ((cluster + 1) * cluster_size).min(n);
                let item = rng.gen_range(lo..hi.max(lo + 1)).min(n - 1);
                Access {
                    item: (item as u32).into(),
                    kind: rw_kind(&mut rng, self.write_ratio),
                }
            })
            .collect();
        trace.with_label(self.name())
    }
}

/// Phase-changing workload: the trace is split into `phases` segments,
/// each a clustered Markov walk over a *different affine shuffle* of
/// the item space, so the hot clusters of one phase are scattered in
/// the next.
///
/// This is the stress workload for static placement (no single layout
/// fits all phases) and the design case for
/// online/adaptive placement (experiment F10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasedGen {
    /// Number of distinct items.
    pub items: usize,
    /// Number of phases.
    pub phases: usize,
    /// Within-phase stay probability (cluster tightness).
    pub stay: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PhasedGen {
    /// A phased generator with the default 0.95 stay probability.
    pub fn new(items: usize, phases: usize, seed: u64) -> Self {
        PhasedGen {
            items,
            phases: phases.max(1),
            stay: 0.95,
            seed,
        }
    }
}

impl TraceGenerator for PhasedGen {
    fn name(&self) -> String {
        format!("phased-{}-p{}", self.items, self.phases)
    }

    fn generate(&self, len: usize) -> Trace {
        let n = self.items.max(1);
        let per_phase = len / self.phases;
        let mut accesses = Vec::with_capacity(len);
        for phase in 0..self.phases {
            let want = if phase + 1 == self.phases {
                len - accesses.len() // absorb rounding in the last phase
            } else {
                per_phase
            };
            let inner = MarkovGen::new(n, (n / 8).max(2), self.seed + phase as u64)
                .with_stay(self.stay)
                .generate(want);
            // Affine relabel: stride coprime with n scatters clusters.
            let stride = 2 * phase + 1;
            accesses.extend(inner.iter().map(|a| Access {
                item: (((a.item.index() * stride + 7 * phase) % n) as u32).into(),
                kind: a.kind,
            }));
        }
        Trace::from_accesses(accesses).with_label(self.name())
    }
}

/// Profile-driven generator: replays the statistical fingerprint in a
/// [`TraceProfile`] at arbitrary scale.
///
/// Each step draws from a three-component mixture. Self-transitions
/// are replayed *explicitly*: with a compensated probability (the
/// profile's `self_transition_rate` minus the rate the other two
/// components already produce by accident) the previous item repeats,
/// which matters for sources like BFS whose back-to-back revisits are
/// not predicted by popularity skew alone. Otherwise, with probability
/// `profile.locality` it samples a reuse distance ≥ 1 from the
/// profile's log₂ reuse histogram (bucket 0 excluded — that mass is
/// the explicit component) and re-touches the item at that LRU-stack
/// depth — reproducing the *excess* short-distance locality that
/// clustered walks exhibit. Otherwise it draws a popularity rank from
/// the log₂ rank-share histogram — anchoring per-item frequencies (and
/// therefore Zipf tail mass and the i.i.d. component of the reuse
/// distribution) to the source. Phase structure is replayed by
/// re-labelling ranks through a fresh coprime affine permutation per
/// phase segment, scattering which concrete ids are hot the way
/// [`PhasedGen`] does.
///
/// [`stream`](ProfiledGen::stream) yields accesses one at a time in
/// `O(items)` memory, so 10⁸-access replays never materialize a trace;
/// [`TraceGenerator::generate`] collects the same stream for the
/// moderate lengths tests use. Same seed → same trace, independent of
/// `DWM_THREADS` (generation is a single sequential RNG walk).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledGen {
    profile: TraceProfile,
    /// RNG seed.
    pub seed: u64,
}

impl ProfiledGen {
    /// A generator replaying `profile` with the given seed.
    pub fn new(profile: TraceProfile, seed: u64) -> Self {
        ProfiledGen { profile, seed }
    }

    /// The profile being replayed.
    pub fn profile(&self) -> &TraceProfile {
        &self.profile
    }

    /// Streams `len` accesses without materializing them.
    pub fn stream(&self, len: u64) -> ProfiledStream {
        let p = &self.profile;
        let cumulate = |masses: &[f64]| {
            let mut cum = Vec::with_capacity(masses.len());
            let mut acc = 0.0f64;
            for &mass in masses {
                acc += mass;
                cum.push(acc);
            }
            cum
        };
        let phases = p.phases.max(1);
        let per_phase = if len == 0 {
            0
        } else {
            (len / phases as u64).max(1)
        };
        let locality = p.locality.clamp(0.0, 1.0);
        // Reuse distances ≥ 1: bucket 0 (the self-transition mass) is
        // replayed by the explicit component, so strip and renormalize.
        let mut nonself: Vec<f64> = p.reuse_buckets.clone();
        if let Some(first) = nonself.first_mut() {
            *first = 0.0;
        }
        let nonself_total: f64 = nonself.iter().sum();
        let cum_reuse = if nonself_total > 0.0 {
            cumulate(
                &nonself
                    .iter()
                    .map(|&m| m / nonself_total)
                    .collect::<Vec<f64>>(),
            )
        } else {
            Vec::new()
        };
        // Rank draws place bucket mass uniformly within each log₂
        // bucket, so their accidental repeat rate is Σ m_b²/w_b; two
        // consecutive rank draws collide with roughly that probability.
        let rank_iid: f64 = p
            .rank_shares
            .iter()
            .enumerate()
            .map(|(b, &m)| {
                let lo = bucket_lo(b).min(p.items.saturating_sub(1) as u64);
                let hi = bucket_lo(b + 1).min(p.items as u64);
                m * m / (hi.saturating_sub(lo).max(1) as f64)
            })
            .sum();
        let accidental = ((1.0 - locality) * (1.0 - locality) * rank_iid).clamp(0.0, 1.0);
        ProfiledStream {
            rng: Rng::seed_from_u64(self.seed),
            emitted: 0,
            len: if p.items == 0 { 0 } else { len },
            items: p.items,
            write_ratio: p.write_ratio,
            locality,
            self_excess: (p.self_transition_rate - accidental).clamp(0.0, 1.0),
            last: None,
            cum_reuse,
            cum_rank: cumulate(&p.rank_shares),
            stack: Vec::with_capacity(p.items),
            phases,
            per_phase,
            phase: 0,
            stride: 1,
            offset: 0,
        }
    }
}

impl TraceGenerator for ProfiledGen {
    fn name(&self) -> String {
        format!("profiled-{}-p{}", self.profile.items, self.profile.phases)
    }

    fn generate(&self, len: usize) -> Trace {
        let trace: Trace = self.stream(len as u64).collect();
        trace.with_label(self.name())
    }
}

/// Streaming iterator over a [`ProfiledGen`] replay. See
/// [`ProfiledGen::stream`].
#[derive(Debug, Clone)]
pub struct ProfiledStream {
    rng: Rng,
    emitted: u64,
    len: u64,
    items: usize,
    write_ratio: f64,
    /// Share of locality (stack-distance) draws vs rank draws.
    locality: f64,
    /// Probability of explicitly repeating the previous item: the
    /// profile's self-transition rate minus the accidental repeat rate
    /// the mixture already produces.
    self_excess: f64,
    /// The previously emitted item, target of explicit repeats.
    last: Option<u32>,
    /// Cumulative reuse-bucket masses over distances ≥ 1, renormalized
    /// (last entry ≈ 1 when any non-self reuse mass exists).
    cum_reuse: Vec<f64>,
    /// Cumulative rank-share masses.
    cum_rank: Vec<f64>,
    /// LRU stack of *underlying* popularity ranks, hottest at the end.
    /// Only maintained when locality draws can consume it.
    stack: Vec<u32>,
    phases: usize,
    per_phase: u64,
    phase: usize,
    /// Current phase's affine relabel `rank ↦ (rank·stride + offset) % items`.
    stride: usize,
    offset: usize,
}

impl ProfiledStream {
    /// Samples a log₂ bucket index by cumulative mass, then a uniform
    /// value within the bucket, capped at `max` (exclusive).
    fn sample_bucketed(&mut self, which: Which, max: u64) -> u64 {
        let cum = match which {
            Which::Reuse => &self.cum_reuse,
            Which::Rank => &self.cum_rank,
        };
        let u = self.rng.next_f64();
        let b = cum.partition_point(|&c| c <= u).min(cum.len() - 1);
        let lo = bucket_lo(b).min(max.saturating_sub(1));
        let hi = bucket_lo(b + 1).min(max);
        lo + self.rng.gen_range(0..(hi - lo).max(1) as usize) as u64
    }

    /// Moves `rank` to the stack top (or introduces it), preserving the
    /// recency order locality draws index into.
    fn touch(&mut self, rank: u32) {
        if let Some(pos) = self.stack.iter().rposition(|&x| x == rank) {
            self.stack.remove(pos);
        }
        self.stack.push(rank);
    }
}

#[derive(Clone, Copy)]
enum Which {
    Reuse,
    Rank,
}

impl Iterator for ProfiledStream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.emitted >= self.len {
            return None;
        }
        // Phase advance: a fresh coprime affine relabel per segment
        // scatters which concrete ids are hot, as phased sources do.
        let phase = ((self.emitted / self.per_phase.max(1)) as usize).min(self.phases - 1);
        if phase != self.phase {
            self.phase = phase;
            self.stride = coprime_stride(phase, self.items);
            self.offset = (7 * phase) % self.items.max(1);
        }
        if let Some(last) = self.last {
            if self.self_excess > 0.0 && self.rng.gen_bool(self.self_excess) {
                self.emitted += 1;
                return Some(Access {
                    item: last.into(),
                    kind: rw_kind(&mut self.rng, self.write_ratio),
                });
            }
        }
        let use_locality = self.locality > 0.0
            && !self.cum_reuse.is_empty()
            && !self.stack.is_empty()
            && self.rng.gen_bool(self.locality);
        let rank = if use_locality {
            let d = self.sample_bucketed(Which::Reuse, self.stack.len() as u64) as usize;
            let pos = self.stack.len() - 1 - d;
            let rank = self.stack.remove(pos);
            self.stack.push(rank);
            rank
        } else {
            let rank = if self.cum_rank.is_empty() {
                0
            } else {
                self.sample_bucketed(Which::Rank, self.items as u64) as u32
            };
            if self.locality > 0.0 {
                self.touch(rank);
            }
            rank
        };
        let item = (rank as usize * self.stride + self.offset) % self.items;
        self.last = Some(item as u32);
        self.emitted += 1;
        Some(Access {
            item: (item as u32).into(),
            kind: rw_kind(&mut self.rng, self.write_ratio),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.len - self.emitted) as usize;
        (left, Some(left))
    }
}

/// Smallest stride ≥ `2·phase + 1` (mod `n`) coprime with `n`, so the
/// per-phase relabel is a bijection on the item universe.
fn coprime_stride(phase: usize, n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    for k in 0..n {
        let mut s = (2 * phase + 1 + 2 * k) % n;
        if s == 0 {
            s = 1;
        }
        if gcd(s, n) == 1 {
            return s;
        }
    }
    1
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let g = UniformGen::new(32, 7);
        assert_eq!(g.generate(100), g.generate(100));
        let z = ZipfGen::new(32, 7);
        assert_eq!(z.generate(100), z.generate(100));
        let m = MarkovGen::new(32, 4, 7);
        assert_eq!(m.generate(100), m.generate(100));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            UniformGen::new(32, 1).generate(200),
            UniformGen::new(32, 2).generate(200)
        );
    }

    #[test]
    fn items_stay_in_range() {
        for trace in [
            UniformGen::new(10, 3).generate(500),
            ZipfGen::new(10, 3).generate(500),
            SequentialGen::new(10).generate(500),
            StridedGen::new(10, 3).generate(500),
            MarkovGen::new(10, 3, 3).generate(500),
        ] {
            assert!(
                trace.iter().all(|a| a.item.index() < 10),
                "{}",
                trace.label()
            );
            assert_eq!(trace.len(), 500);
        }
    }

    #[test]
    fn zipf_is_skewed_uniform_is_not() {
        let z = ZipfGen::new(50, 11).generate(5000).normalize().stats();
        let u = UniformGen::new(50, 11).generate(5000).normalize().stats();
        assert!(z.hot20_share > u.hot20_share + 0.2);
    }

    #[test]
    fn markov_clusters_reduce_transition_spread() {
        let m = MarkovGen::new(64, 8, 5).with_stay(0.95).generate(5000);
        let u = UniformGen::new(64, 5).generate(5000);
        assert!(m.stats().mean_stride < u.stats().mean_stride);
    }

    #[test]
    fn sequential_wraps_around() {
        let t = SequentialGen::new(4).generate(10);
        let ids: Vec<u32> = t.iter().map(|a| a.item.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn write_ratio_produces_writes() {
        let g = UniformGen {
            items: 8,
            write_ratio: 1.0,
            seed: 1,
        };
        assert!(g.generate(50).iter().all(|a| a.kind.is_write()));
    }

    #[test]
    fn phased_generator_changes_adjacency_between_phases() {
        // The relabeling scatters *adjacency* (who is co-accessed with
        // whom), not item frequencies: the transition structure of
        // phase 1 must be a poor predictor of phase 2. We check that
        // the hot transitions of phase 1 are mostly absent in phase 2.
        let t = PhasedGen::new(64, 2, 3).generate(8000);
        assert_eq!(t.len(), 8000);
        assert!(t.iter().all(|a| a.item.index() < 64));
        let pair_set = |accs: &[Access]| -> std::collections::HashSet<(u32, u32)> {
            accs.windows(2)
                .filter(|p| p[0].item != p[1].item)
                .map(|p| {
                    let (a, b) = (p[0].item.0, p[1].item.0);
                    (a.min(b), a.max(b))
                })
                .collect()
        };
        let p1 = pair_set(&t.accesses()[..4000]);
        let p2 = pair_set(&t.accesses()[4000..]);
        let overlap = p1.intersection(&p2).count() as f64 / p1.len().max(1) as f64;
        assert!(
            overlap < 0.5,
            "phases share {:.0}% of their transition pairs",
            overlap * 100.0
        );
    }

    #[test]
    fn phased_generator_is_deterministic_and_exact_length() {
        let g = PhasedGen::new(32, 3, 9);
        assert_eq!(g.generate(1000), g.generate(1000));
        // 1000 not divisible by 3: last phase absorbs the remainder.
        assert_eq!(g.generate(1000).len(), 1000);
    }

    #[test]
    fn profiled_replay_matches_its_source_profile() {
        let source = ZipfGen::new(64, 17).generate(20_000).normalize();
        let profile = TraceProfile::from_trace(&source);
        let synth = ProfiledGen::new(profile.clone(), 5).generate(20_000);
        let re = TraceProfile::from_trace(&synth.normalize());
        let f = profile.fidelity(&re);
        assert!(f.within_default_tolerance(), "{f}");
        assert_eq!(re.items, profile.items, "universe preserved");
    }

    #[test]
    fn profiled_generator_is_deterministic_and_streaming() {
        let profile = TraceProfile::from_trace(&MarkovGen::new(32, 4, 2).generate(5000));
        let g = ProfiledGen::new(profile, 9);
        assert_eq!(g.generate(2000), g.generate(2000));
        assert_ne!(
            g.generate(2000),
            ProfiledGen::new(g.profile().clone(), 10).generate(2000)
        );
        // The stream and the collected trace are the same sequence.
        let streamed: Vec<Access> = g.stream(500).collect();
        assert_eq!(streamed.as_slice(), &g.generate(500).accesses()[..500]);
        assert_eq!(g.stream(500).size_hint(), (500, Some(500)));
    }

    #[test]
    fn profiled_replay_preserves_the_write_mix() {
        let source = UniformGen {
            items: 24,
            write_ratio: 0.3,
            seed: 4,
        }
        .generate(10_000);
        let profile = TraceProfile::from_trace(&source);
        let synth = ProfiledGen::new(profile, 8).generate(40_000);
        let writes = synth.iter().filter(|a| a.kind.is_write()).count();
        let ratio = writes as f64 / synth.len() as f64;
        assert!((ratio - 0.3).abs() < 0.02, "write ratio {ratio}");
    }

    #[test]
    fn profiled_replay_of_an_empty_profile_is_empty() {
        let profile = TraceProfile::from_trace(&Trace::new());
        let g = ProfiledGen::new(profile, 1);
        assert!(g.generate(100).is_empty());
        assert_eq!(g.stream(100).count(), 0);
    }

    #[test]
    fn profiled_phases_scatter_hot_items() {
        // A two-phase source (same universe, relabeled hot set): the
        // replay must also shift its hot set between the halves.
        let mut accs: Vec<Access> = ZipfGen::new(64, 3).generate(8000).into_iter().collect();
        accs.extend(
            ZipfGen::new(64, 4)
                .generate(8000)
                .into_iter()
                .map(|a| Access {
                    item: (((a.item.index() * 13 + 7) % 64) as u32).into(),
                    kind: a.kind,
                }),
        );
        let source = Trace::from_accesses(accs);
        let profile = TraceProfile::from_trace(&source);
        assert!(
            profile.phases >= 2,
            "source shows {} phases",
            profile.phases
        );
        let synth = ProfiledGen::new(profile, 6).generate(16_000);
        let hot = |accs: &[Access]| {
            let mut freq = [0u64; 64];
            for a in accs {
                freq[a.item.index()] += 1;
            }
            let mut order: Vec<usize> = (0..64).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(freq[i]));
            order.truncate(8);
            order.sort_unstable();
            order
        };
        let first = hot(&synth.accesses()[..8000]);
        let second = hot(&synth.accesses()[8000..]);
        assert_ne!(first, second, "phases should relabel the hot set");
    }

    #[test]
    fn coprime_strides_are_bijective() {
        for n in [1usize, 2, 7, 9, 12, 64] {
            for phase in 0..6 {
                let s = coprime_stride(phase, n);
                let mut seen = vec![false; n.max(1)];
                for i in 0..n {
                    seen[(i * s) % n] = true;
                }
                assert!(
                    n == 0 || seen.iter().all(|&b| b),
                    "n={n} phase={phase} s={s}"
                );
            }
        }
    }

    #[test]
    fn generators_usable_as_objects() {
        let gens: Vec<Box<dyn TraceGenerator>> = vec![
            Box::new(UniformGen::new(8, 1)),
            Box::new(SequentialGen::new(8)),
        ];
        for g in &gens {
            assert!(!g.name().is_empty());
            assert_eq!(g.generate(10).len(), 10);
        }
    }
}
