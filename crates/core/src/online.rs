//! Online (adaptive) placement with migration accounting.
//!
//! Static placement fixes the layout once, from a profile of the whole
//! run. Real workloads have *phases*: the access graph of one phase can
//! be useless for the next. The [`OnlinePlacer`] processes the trace in
//! windows, and at each window boundary decides whether re-placing data
//! (paying an explicit per-item migration cost in shifts) beats keeping
//! the current layout — the classic benefit-vs-migration tradeoff,
//! reproduced here as the "dynamic placement" extension experiment
//! (F10).
//!
//! The decision rule is conservative and deterministic: re-place when
//! the *observed* window's cost under the current placement exceeds its
//! cost under a freshly computed placement by more than the migration
//! bill, assuming the next window resembles the current one (a
//! one-window lookbehind predictor).
//!
//! **Limitation.** The lookbehind premise fails on workloads whose
//! pattern churns every window (e.g. FFT stages, each with a different
//! butterfly stride): adapting to the previous stage actively hurts
//! the next, and the placer can end up *behind* the static baseline.
//! Raise `hysteresis` or the migration cost to suppress adaptation on
//! such workloads; the F10 experiment shows the favourable case
//! (phases lasting many windows), and the integration tests pin down
//! both behaviours.

use dwm_device::Topology;
use dwm_graph::AccessGraph;
use dwm_trace::Trace;

use crate::algorithms::{Hybrid, PlacementAlgorithm};
use crate::cost::{CostModel, TopologyCost};
use crate::placement::Placement;

/// Tuning and cost parameters for online placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Window length in accesses.
    pub window: usize,
    /// Shift cost charged for migrating one item to a new offset
    /// (covers the read-out and write-back alignments). The default of
    /// 2× a half-tape traversal (= one full tape length) is the
    /// worst-case bound for a 64-word tape.
    pub migration_shifts_per_item: u64,
    /// Hysteresis factor: predicted per-window saving must exceed
    /// `migration_bill / horizon_windows` by this multiple.
    pub hysteresis: f64,
    /// Number of future windows the saving is assumed to persist for.
    pub horizon_windows: u64,
    /// Track topology the tape is replayed (and the decision rule
    /// costed) under. The default [`Topology::linear`] reproduces the
    /// legacy behaviour byte for byte.
    pub topology: Topology,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: 512,
            migration_shifts_per_item: 64,
            hysteresis: 1.0,
            horizon_windows: 4,
            topology: Topology::linear(),
        }
    }
}

/// Precomputed per-window views of a trace, in structure-of-arrays
/// form: window `i`'s accesses (for replay costing) live in one array,
/// its access graph over the full item space (for candidate placement
/// and cost comparison) in a parallel one. The replay loop streams the
/// trace array while the decision step reads only the graph array, so
/// each consumer touches one contiguous allocation instead of
/// interleaved trace/graph pairs — and configuration sweeps that only
/// re-run the decision rule ([`WindowProfiles::graphs`]) never pull
/// window traces through the cache at all.
///
/// Profiles depend only on the trace and the window length — not on
/// any placer configuration — so one precomputation can be shared
/// across a sweep of [`OnlinePlacer`] settings
/// (see [`window_profiles`] and [`OnlinePlacer::run_profiles`]),
/// instead of re-deriving the same graphs per configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowProfiles {
    /// Each window's accesses as a standalone trace.
    traces: Vec<Trace>,
    /// Each window's access graph over all `n` items, parallel to
    /// `traces`.
    graphs: Vec<AccessGraph>,
}

impl WindowProfiles {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the source trace was empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Window `i`'s accesses as a standalone trace.
    pub fn trace(&self, i: usize) -> &Trace {
        &self.traces[i]
    }

    /// Window `i`'s access graph over the full item space.
    pub fn graph(&self, i: usize) -> &AccessGraph {
        &self.graphs[i]
    }

    /// The per-window graphs alone — the decision-rule array, for
    /// sweeps that never replay accesses.
    pub fn graphs(&self) -> &[AccessGraph] {
        &self.graphs
    }

    /// Paired `(trace, graph)` views in window order.
    pub fn iter(&self) -> impl Iterator<Item = (&Trace, &AccessGraph)> {
        self.traces.iter().zip(&self.graphs)
    }
}

/// Precomputes the per-window profiles of `trace`: one trace/graph
/// pair per `window`-access chunk (the last may be shorter), each
/// graph built over `n` items — the exact structures
/// [`OnlinePlacer::run`] derives internally, stored SoA.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn window_profiles(trace: &Trace, window: usize, n: usize) -> WindowProfiles {
    assert!(window > 0, "window must be nonzero");
    let mut profiles = WindowProfiles::default();
    for chunk in trace.accesses().chunks(window) {
        let mut graph = AccessGraph::with_items(n);
        for pair in chunk.windows(2) {
            let (u, v) = (pair[0].item.index(), pair[1].item.index());
            if u != v {
                graph.add_weight(u, v, 1);
            }
        }
        for a in chunk {
            let i = a.item.index();
            graph.set_frequency(i, graph.frequency(i) + 1);
        }
        profiles
            .traces
            .push(Trace::from_accesses(chunk.iter().copied()));
        profiles.graphs.push(graph);
    }
    profiles
}

/// The adaptation decision for one observed window.
///
/// Produced by [`OnlinePlacer::decide`]; `adapt` is the verdict of the
/// benefit-vs-migration rule, the other fields expose its inputs so
/// callers (the serve session subsystem, experiments) can account for
/// the bill and the projection without re-deriving them.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The freshly computed placement for the observed window.
    pub candidate: Placement,
    /// The window's arrangement cost under the incumbent placement.
    pub current_cost: u64,
    /// The window's arrangement cost under the candidate.
    pub candidate_cost: u64,
    /// Items whose offset differs between incumbent and candidate.
    pub items_moved: u64,
    /// Migration bill in shifts (`items_moved ×
    /// migration_shifts_per_item`).
    pub bill: u64,
    /// Projected saving over the horizon
    /// (`(current − candidate) × horizon_windows`).
    pub predicted_saving: u64,
    /// Whether the rule says to adopt the candidate.
    pub adapt: bool,
}

/// Outcome of an online-placement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineReport {
    /// Shifts spent serving accesses.
    pub access_shifts: u64,
    /// Shifts spent migrating data at re-placement points.
    pub migration_shifts: u64,
    /// Number of re-placement events.
    pub migrations: u64,
    /// Total items moved across all migrations.
    pub items_moved: u64,
    /// The placement in force after the last window.
    pub final_placement: Placement,
}

impl OnlineReport {
    /// Total shift bill: accesses plus migrations.
    pub fn total_shifts(&self) -> u64 {
        self.access_shifts + self.migration_shifts
    }
}

/// Windowed adaptive placer; see the module docs.
///
/// # Example
///
/// ```
/// use dwm_trace::Trace;
/// use dwm_core::online::{OnlineConfig, OnlinePlacer};
///
/// // Two phases over disjoint, far-apart hot pairs.
/// let mut ids: Vec<u32> = (0..600).map(|i| [0, 5][i % 2]).collect();
/// ids.extend((0..600).map(|i| [2, 7][i % 2]));
/// let trace = Trace::from_ids(ids);
/// let report = OnlinePlacer::new(OnlineConfig {
///     window: 200,
///     migration_shifts_per_item: 4,
///     ..OnlineConfig::default()
/// })
/// .run(&trace);
/// assert!(report.migrations >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePlacer {
    config: OnlineConfig,
}

impl OnlinePlacer {
    /// A placer with the given configuration.
    pub fn new(config: OnlineConfig) -> Self {
        assert!(config.window > 0, "window must be nonzero");
        OnlinePlacer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Replays `trace` window by window, re-placing when predicted
    /// savings exceed the migration bill. The first window runs under
    /// the naive identity placement (nothing is known yet).
    pub fn run(&self, trace: &Trace) -> OnlineReport {
        let n = trace.num_items();
        self.run_profiles(n, &window_profiles(trace, self.config.window, n))
    }

    /// Runs the window loop over precomputed [`WindowProfiles`] —
    /// byte-identical to [`run`](Self::run) on the trace the profiles
    /// came from, but shareable across a sweep of configurations with
    /// the same window length (the profile precomputation dominates
    /// replays over many settings).
    pub fn run_profiles(&self, n: usize, profiles: &WindowProfiles) -> OnlineReport {
        let mut placement = Placement::identity(n);
        // Linear single-port TopologyCost replays byte-identically to
        // the legacy SinglePortCost (a pinned cost-model invariant), so
        // one model serves every topology.
        let model = TopologyCost::single_port(self.config.topology, n);

        let mut access_shifts = 0u64;
        let mut migration_shifts = 0u64;
        let mut migrations = 0u64;
        let mut items_moved = 0u64;

        for (trace, graph) in profiles.iter() {
            // Serve the window under the current placement. Item ids in
            // the window are global, placement covers all n items.
            access_shifts += model.trace_cost(&placement, trace).stats.shifts;

            // Decide whether to re-place for the (assumed similar)
            // next window.
            let decision = self.decide(&placement, graph);
            if decision.adapt {
                migration_shifts += decision.bill;
                migrations += 1;
                items_moved += decision.items_moved;
                placement = decision.candidate;
            }
        }

        OnlineReport {
            access_shifts,
            migration_shifts,
            migrations,
            items_moved,
            final_placement: placement,
        }
    }

    /// Applies the benefit-vs-migration rule to one observed window:
    /// solves the window's graph for a candidate placement and compares
    /// the projected saving against the hysteresis-scaled migration
    /// bill. This is the single decision point shared by
    /// [`run`](Self::run) and the streaming session subsystem in
    /// `dwm-serve` — the solver ([`Hybrid`]) is deterministic, so the
    /// decision is a pure function of `(placement, window_graph,
    /// config)`.
    pub fn decide(&self, placement: &Placement, window_graph: &AccessGraph) -> Decision {
        self.decide_with(placement, window_graph, &Hybrid::default())
    }

    /// [`decide`](Self::decide) with an explicit candidate solver —
    /// the tiered anytime portfolio plugs in here so a streaming
    /// session can pick its re-placement tier by budget. The decision
    /// stays a pure function of `(placement, window_graph, config,
    /// solver)` as long as the solver is deterministic.
    pub fn decide_with(
        &self,
        placement: &Placement,
        window_graph: &AccessGraph,
        solver: &dyn PlacementAlgorithm,
    ) -> Decision {
        let n = window_graph.num_items();
        let candidate = solver.place(window_graph);
        let (current_cost, candidate_cost) = if self.config.topology.is_linear() {
            (
                window_graph.arrangement_cost(placement.offsets()),
                window_graph.arrangement_cost(candidate.offsets()),
            )
        } else {
            let model = TopologyCost::single_port(self.config.topology, n);
            (
                model.graph_cost(placement, window_graph),
                model.graph_cost(&candidate, window_graph),
            )
        };
        let items_moved: u64 = (0..n)
            .filter(|&i| placement.offset_of(i) != candidate.offset_of(i))
            .count() as u64;
        let bill = items_moved * self.config.migration_shifts_per_item;
        let predicted_saving =
            current_cost.saturating_sub(candidate_cost) * self.config.horizon_windows;
        let adapt =
            items_moved > 0 && predicted_saving as f64 > self.config.hysteresis * bill as f64;
        Decision {
            candidate,
            current_cost,
            candidate_cost,
            items_moved,
            bill,
            predicted_saving,
            adapt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SinglePortCost;
    use dwm_trace::synth::{MarkovGen, TraceGenerator, UniformGen};

    /// Two-phase workload: hot pairs move between phases. Ids are kept
    /// un-normalized so the identity placement really does scatter the
    /// hot pairs across the tape.
    fn phased_trace() -> Trace {
        let mut ids: Vec<u32> = Vec::new();
        // Phase 1: ping-pong between far-apart items 0 and 30.
        ids.extend((0..2000).map(|i| [0u32, 30][i % 2]));
        // Phase 2: ping-pong between 7 and 23.
        ids.extend((0..2000).map(|i| [7u32, 23][i % 2]));
        Trace::from_ids(ids)
    }

    #[test]
    fn adapts_to_phase_changes() {
        let report = OnlinePlacer::new(OnlineConfig {
            window: 500,
            migration_shifts_per_item: 8,
            ..OnlineConfig::default()
        })
        .run(&phased_trace());
        assert!(report.migrations >= 1, "never adapted");
        // The adaptive run must beat the naive static placement by a
        // wide margin: naive pays ~30 shifts per access forever.
        let naive = SinglePortCost::new()
            .trace_cost(&Placement::identity(31), &phased_trace())
            .stats
            .shifts;
        assert!(
            report.total_shifts() < naive / 2,
            "online {} vs naive {naive}",
            report.total_shifts()
        );
    }

    #[test]
    fn stable_workload_converges_to_few_migrations() {
        let trace = MarkovGen::new(32, 4, 3).generate(8000).normalize();
        let report = OnlinePlacer::new(OnlineConfig::default()).run(&trace);
        // One adaptation away from the identity start is expected;
        // after that the layout should stick.
        assert!(report.migrations <= 3, "{} migrations", report.migrations);
    }

    #[test]
    fn prohibitive_migration_cost_disables_adaptation() {
        let report = OnlinePlacer::new(OnlineConfig {
            migration_shifts_per_item: u64::MAX / 1_000_000,
            ..OnlineConfig::default()
        })
        .run(&phased_trace());
        assert_eq!(report.migrations, 0);
        assert_eq!(report.migration_shifts, 0);
    }

    #[test]
    fn report_totals_are_consistent() {
        let trace = UniformGen::new(16, 2).generate(3000).normalize();
        let report = OnlinePlacer::new(OnlineConfig::default()).run(&trace);
        assert_eq!(
            report.total_shifts(),
            report.access_shifts + report.migration_shifts
        );
        assert_eq!(report.final_placement.num_items(), 16);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_rejected() {
        let _ = OnlinePlacer::new(OnlineConfig {
            window: 0,
            ..OnlineConfig::default()
        });
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let report = OnlinePlacer::new(OnlineConfig::default()).run(&Trace::new());
        assert_eq!(report.total_shifts(), 0);
        assert_eq!(report.migrations, 0);
    }

    /// The decision rule requires the predicted saving to *strictly*
    /// exceed the migration bill. This test engineers exact equality by
    /// mirroring the placer's window-graph construction, then checks
    /// both sides of the boundary: equality keeps the layout, one shift
    /// cheaper flips it.
    #[test]
    fn saving_equal_to_bill_is_not_enough_to_adapt() {
        // One window of ping-pong between far-apart items, so the
        // candidate placement differs from identity and saves shifts.
        let ids: Vec<u32> = (0..400).map(|i| [0u32, 30][i % 2]).collect();
        let trace = Trace::from_ids(ids);
        let n = trace.num_items();

        // Mirror OnlinePlacer::run's window graph for the single chunk.
        let accesses = trace.accesses();
        let mut window_graph = AccessGraph::with_items(n);
        for pair in accesses.windows(2) {
            let (u, v) = (pair[0].item.index(), pair[1].item.index());
            if u != v {
                window_graph.add_weight(u, v, 1);
            }
        }
        for a in accesses {
            let i = a.item.index();
            window_graph.set_frequency(i, window_graph.frequency(i) + 1);
        }
        let identity = Placement::identity(n);
        let candidate = Hybrid::default().place(&window_graph);
        let current_cost = window_graph.arrangement_cost(identity.offsets());
        let candidate_cost = window_graph.arrangement_cost(candidate.offsets());
        let delta = current_cost - candidate_cost;
        let moved = (0..n)
            .filter(|&i| identity.offset_of(i) != candidate.offset_of(i))
            .count() as u64;
        assert!(delta > 1, "degenerate fixture: no saving to trade off");
        assert!(moved > 0, "degenerate fixture: candidate equals identity");

        // With horizon = moved, predicted saving is delta × moved and
        // the bill is moved × per-item cost, so per-item cost = delta
        // makes the two sides exactly equal.
        let run = |migration_shifts_per_item| {
            OnlinePlacer::new(OnlineConfig {
                window: accesses.len(),
                migration_shifts_per_item,
                hysteresis: 1.0,
                horizon_windows: moved,
                ..OnlineConfig::default()
            })
            .run(&trace)
        };
        let at_boundary = run(delta);
        assert_eq!(at_boundary.migrations, 0, "equality must not adapt");
        assert_eq!(at_boundary.migration_shifts, 0);
        let below_boundary = run(delta - 1);
        assert_eq!(below_boundary.migrations, 1, "one shift cheaper must adapt");
        assert_eq!(below_boundary.migration_shifts, moved * (delta - 1));
        assert_eq!(below_boundary.items_moved, moved);
    }

    /// The pre-refactor window loop, kept verbatim as a reference
    /// implementation: `run` (now window-profiles + `decide`) must
    /// reproduce it report for report, placement for placement.
    fn reference_run(config: &OnlineConfig, trace: &Trace) -> OnlineReport {
        let n = trace.num_items();
        let mut placement = Placement::identity(n);
        let model = SinglePortCost::new();
        let algorithm = Hybrid::default();
        let mut access_shifts = 0u64;
        let mut migration_shifts = 0u64;
        let mut migrations = 0u64;
        let mut items_moved = 0u64;
        for chunk in trace.accesses().chunks(config.window) {
            let window_trace = Trace::from_accesses(chunk.iter().copied());
            access_shifts += model.trace_cost(&placement, &window_trace).stats.shifts;
            let mut window_graph = AccessGraph::with_items(n);
            for pair in chunk.windows(2) {
                let (u, v) = (pair[0].item.index(), pair[1].item.index());
                if u != v {
                    window_graph.add_weight(u, v, 1);
                }
            }
            for a in chunk {
                let i = a.item.index();
                window_graph.set_frequency(i, window_graph.frequency(i) + 1);
            }
            let candidate = algorithm.place(&window_graph);
            let current_cost = window_graph.arrangement_cost(placement.offsets());
            let candidate_cost = window_graph.arrangement_cost(candidate.offsets());
            let moved: u64 = (0..n)
                .filter(|&i| placement.offset_of(i) != candidate.offset_of(i))
                .count() as u64;
            let bill = moved * config.migration_shifts_per_item;
            let predicted_saving =
                current_cost.saturating_sub(candidate_cost) * config.horizon_windows;
            if moved > 0 && predicted_saving as f64 > config.hysteresis * bill as f64 {
                migration_shifts += bill;
                migrations += 1;
                items_moved += moved;
                placement = candidate;
            }
        }
        OnlineReport {
            access_shifts,
            migration_shifts,
            migrations,
            items_moved,
            final_placement: placement,
        }
    }

    #[test]
    fn profile_based_run_reproduces_the_reference_loop_exactly() {
        let configs = [
            OnlineConfig {
                window: 500,
                migration_shifts_per_item: 8,
                ..OnlineConfig::default()
            },
            OnlineConfig {
                window: 333, // ragged final window
                hysteresis: 2.5,
                ..OnlineConfig::default()
            },
            OnlineConfig::default(),
        ];
        let traces = [
            phased_trace(),
            MarkovGen::new(32, 4, 3).generate(4000).normalize(),
            Trace::new(),
        ];
        for config in &configs {
            let placer = OnlinePlacer::new(*config);
            for trace in &traces {
                assert_eq!(
                    placer.run(trace),
                    reference_run(config, trace),
                    "window {} diverged from the reference loop",
                    config.window
                );
            }
        }
    }

    #[test]
    fn shared_profiles_replay_identically_across_configs() {
        // One profile set, many configurations — the dedupe pattern
        // exp_f10 uses. Each must equal its own full run.
        let trace = phased_trace();
        let n = trace.num_items();
        let profiles = window_profiles(&trace, 500, n);
        for hysteresis in [0.5, 1.0, 4.0] {
            let placer = OnlinePlacer::new(OnlineConfig {
                window: 500,
                migration_shifts_per_item: 8,
                hysteresis,
                ..OnlineConfig::default()
            });
            assert_eq!(placer.run_profiles(n, &profiles), placer.run(&trace));
        }
    }

    /// A ring topology wraps end-to-end ping-pong in one step, so the
    /// same workload costs far fewer access shifts than under the
    /// default linear tape; the default config stays byte-identical to
    /// the legacy (linear) behaviour.
    #[test]
    fn ring_topology_cheapens_wraparound_workloads() {
        let ids: Vec<u32> = (0..2000).map(|i| [0u32, 30][i % 2]).collect();
        let trace = Trace::from_ids(ids);
        let base = OnlineConfig {
            window: 500,
            migration_shifts_per_item: 8,
            ..OnlineConfig::default()
        };
        let linear = OnlinePlacer::new(base).run(&trace);
        let ring = OnlinePlacer::new(OnlineConfig {
            topology: Topology::parse("ring").unwrap(),
            ..base
        })
        .run(&trace);
        assert!(
            ring.total_shifts() < linear.total_shifts(),
            "ring {} vs linear {}",
            ring.total_shifts(),
            linear.total_shifts()
        );
    }

    /// On a workload whose hot pair churns every single window, the
    /// one-window lookbehind predictor is always wrong. A large enough
    /// hysteresis factor suppresses every adaptation (and its
    /// migration bill), where the default setting keeps chasing phases.
    #[test]
    fn hysteresis_suppresses_adaptation_on_churning_phases() {
        let mut ids: Vec<u32> = Vec::new();
        for phase in 0..10 {
            let pair = if phase % 2 == 0 {
                [0u32, 30]
            } else {
                [7u32, 23]
            };
            ids.extend((0..200).map(|i| pair[i % 2]));
        }
        let trace = Trace::from_ids(ids);
        let run = |hysteresis| {
            OnlinePlacer::new(OnlineConfig {
                window: 200,
                migration_shifts_per_item: 2,
                hysteresis,
                ..OnlineConfig::default()
            })
            .run(&trace)
        };

        let eager = run(1.0);
        assert!(
            eager.migrations >= 2,
            "fixture too tame: default hysteresis only migrated {} times",
            eager.migrations
        );
        let damped = run(1e6);
        assert_eq!(damped.migrations, 0);
        assert_eq!(damped.migration_shifts, 0);
        assert_eq!(damped.items_moved, 0);
        // With adaptation fully suppressed, the run degenerates to the
        // static identity placement, window by window (the head resets
        // at window boundaries, so sum the per-window costs).
        let model = SinglePortCost::new();
        let identity = Placement::identity(trace.num_items());
        let naive: u64 = trace
            .accesses()
            .chunks(200)
            .map(|chunk| {
                let window = Trace::from_accesses(chunk.iter().copied());
                model.trace_cost(&identity, &window).stats.shifts
            })
            .sum();
        assert_eq!(damped.access_shifts, naive);
    }
}
