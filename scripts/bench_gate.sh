#!/usr/bin/env bash
# Benchmark regression gate: runs the gated bench suites with JSON
# output and compares minimum iteration times against the checked-in
# baseline (results/bench_baseline.json). Fails when any benchmark's
# minimum is more than DWM_BENCH_GATE_THRESHOLD (default 0.25 = 25%)
# slower. Minima, not medians: on a small shared box scheduler noise
# swings medians by tens of percent while minima stay put, and a real
# regression raises the minimum too. The serve suite additionally
# carries a same-run p99 tail bound (see P99 below) so request-latency
# tails are gated, not just best cases.
#
# After an intentional performance change (or on a new reference
# machine), re-baseline and commit the result:
#
#   bash scripts/bench_gate.sh --rebaseline
#
# The comparison logic lives in crates/bench/src/gate.rs (unit-tested);
# this script only runs the suites and invokes the bench_compare CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

BASELINE=results/bench_baseline.json
THRESHOLD="${DWM_BENCH_GATE_THRESHOLD:-0.25}"
# Few samples: the gate compares minima, which stabilize quickly —
# this is not publication-grade statistics. Override via env.
export DWM_BENCH_SAMPLES="${DWM_BENCH_SAMPLES:-10}"
export DWM_BENCH_WARMUP_MS="${DWM_BENCH_WARMUP_MS:-50}"

reports="$(mktemp -d)"
trap 'rm -rf "$reports"' EXIT

# Only the suites with parallel (bench_threads) coverage are gated,
# plus the serve request-latency suite, the trace-synthesis suite, and
# the simulator/topology replay suite — fast enough to run on every CI
# push.
for suite in bench_sweep bench_exact bench_graph bench_serve bench_trace bench_sim; do
  echo "== $suite"
  # The serve suite carries the tight 5% pair bound, so it gets more
  # samples: the pair compares per-side minima, and a longer sampling
  # window makes a transient load spike unable to inflate every sample
  # of one side. The trace suite's headline point streams 10^8
  # accesses per iteration (~10 s), so it gets few.
  samples="$DWM_BENCH_SAMPLES"
  [[ "$suite" == bench_serve ]] && samples="${DWM_BENCH_SERVE_SAMPLES:-30}"
  [[ "$suite" == bench_trace ]] && samples="${DWM_BENCH_TRACE_SAMPLES:-3}"
  DWM_BENCH_JSON="$reports" DWM_BENCH_SAMPLES="$samples" \
    cargo bench -q -p dwm-bench --bench "$suite"
done

# Same-run pair bounds (both 5%, alternating samples):
#  - the cached-solve path with metric collection on vs off, proving
#    observability costs < 5%;
#  - the cached-solve path while the idle lane holds a deep queue of
#    pending tier-2 upgrades vs a quiet engine, proving background
#    upgrades never steal cycles from foreground solves.
# Both sides of each pair run seconds apart on this machine, so the
# bounds hold even where the absolute baseline would drift.
PAIR=(--pair serve/serve/solve_hit serve/serve/solve_hit_obs_off
      --pair serve/serve/solve_hit_idle_load serve/serve/solve_hit_lane_quiet
      --pair-threshold "${DWM_BENCH_OBS_THRESHOLD:-0.05}")

# Same-run speedup floor: the batched profile-cached local-search
# kernel must stay >= 2x its byte-identical scalar reference at the
# n=4096 scale the 10^8-access profile-driven workloads land on.
SPEEDUP=(--min-speedup graph/algo/local_search_scalar/4096
                       graph/algo/local_search/4096
                       "${DWM_BENCH_LS_SPEEDUP:-2.0}")

# Same-run p99 tail bound on the serve suite: every serve/* bench's
# 99th-percentile iteration time must stay within the factor times its
# own median. Like the pairs this is machine-drift immune (p99 and
# median scale together with the box), but an event-loop pathology —
# a lost wakeup, a convoy behind accept — blows the ratio up by orders
# of magnitude. 20x default: serve medians sit at 60us-4ms, so honest
# scheduler noise stays far below it.
P99=(--p99-tail serve/ "${DWM_BENCH_P99_TAIL:-20}")

# Every gate run appends a perf-trajectory snapshot
# (results/bench_history/BENCH_<n>.json) so performance over time is
# diffable, not just pass/fail.
SUMMARY=(--summary-json "${DWM_BENCH_SUMMARY_DIR:-results/bench_history}")

mkdir -p results
if [[ "${1:-}" == "--rebaseline" ]]; then
  cargo run --release -q -p dwm-bench --bin bench_compare -- \
    --write-baseline "${PAIR[@]}" "${SPEEDUP[@]}" "${P99[@]}" "${SUMMARY[@]}" \
    "$BASELINE" "$reports"
else
  cargo run --release -q -p dwm-bench --bin bench_compare -- \
    --threshold "$THRESHOLD" "${PAIR[@]}" "${SPEEDUP[@]}" "${P99[@]}" \
    "${SUMMARY[@]}" "$BASELINE" "$reports"
fi
