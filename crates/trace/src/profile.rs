//! Workload profiles: compact statistical fingerprints of traces.
//!
//! A [`TraceProfile`] captures what the placement stack cares about —
//! kernel mix (read/write ratio), reuse-distance histogram, phase
//! structure, and Zipf skew — in a few hundred bytes of versioned JSON,
//! so realistic workloads can be shipped and replayed *without* shipping
//! the tenant trace itself. The profile feeds
//! [`ProfiledGen`](crate::synth::ProfiledGen), which regenerates a
//! statistically matched trace at arbitrary scale, streaming one access
//! at a time (a 10⁸-access replay never materializes the trace).
//!
//! Histograms use log₂ buckets: bucket `b` covers distances (or
//! popularity ranks) in `[2^b − 1, 2^(b+1) − 1)`, so bucket 0 is exactly
//! `{0}` — which makes the self-transition rate an exact corollary of
//! the reuse histogram rather than a separate knob.

use std::collections::HashMap;

use crate::access::{Access, Trace};
use crate::analysis::PhaseDetector;

/// Version stamp embedded in every serialized profile. Bump when the
/// schema or the generation semantics change incompatibly.
pub const PROFILE_VERSION: u32 = 1;

/// Log₂ bucket index of a distance or rank: bucket `b` covers
/// `[2^b − 1, 2^(b+1) − 1)`; bucket 0 is exactly `{0}`.
pub(crate) fn log2_bucket(x: u64) -> usize {
    (u64::BITS - 1 - (x + 1).leading_zeros()) as usize
}

/// Inclusive lower bound of log₂ bucket `b`.
pub(crate) fn bucket_lo(b: usize) -> u64 {
    (1u64 << b) - 1
}

/// A compact, versioned statistical fingerprint of a trace.
///
/// Produced by [`TraceProfile::from_trace`] (or the streaming
/// [`ProfileBuilder`]), serialized by `dwm trace profile`, and consumed
/// by [`ProfiledGen`](crate::synth::ProfiledGen) / `dwm trace synth`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Schema version ([`PROFILE_VERSION`]).
    pub version: u32,
    /// Label of the profiled trace (kernel or generator name).
    pub source: String,
    /// Length of the profiled trace, in accesses.
    pub length: u64,
    /// Number of distinct items — the item universe replays preserve.
    pub items: usize,
    /// Fraction of accesses that are writes (the kernel mix).
    pub write_ratio: f64,
    /// Fraction of consecutive access pairs touching the same item.
    pub self_transition_rate: f64,
    /// Least-squares Zipf exponent fitted to the rank/frequency curve.
    pub zipf_exponent: f64,
    /// Fraction of accesses going to the hottest 20% of items.
    pub hot20_share: f64,
    /// Mean absolute id distance between consecutive accesses.
    pub mean_stride: f64,
    /// Cold (first-touch) accesses as a fraction of the trace length.
    pub cold_fraction: f64,
    /// Excess short-distance reuse mass beyond what the frequency
    /// distribution alone would produce (0 for i.i.d.-like workloads,
    /// approaching 1 for tightly clustered walks). Drives the share of
    /// locality draws during replay.
    pub locality: f64,
    /// Number of detected phases (≥ 1; phase churn scatters adjacency).
    pub phases: usize,
    /// Access mass per log₂ popularity-rank bucket (sums to 1 when the
    /// trace is nonempty).
    pub rank_shares: Vec<f64>,
    /// Finite reuse-distance mass per log₂ bucket (sums to 1 when any
    /// reuse exists). Bucket 0 is the self-transition mass.
    pub reuse_buckets: Vec<f64>,
}

dwm_foundation::json_struct!(TraceProfile {
    version,
    source,
    length,
    items,
    write_ratio,
    self_transition_rate,
    zipf_exponent,
    hot20_share,
    mean_stride,
    cold_fraction,
    locality,
    phases,
    rank_shares,
    reuse_buckets,
});

impl TraceProfile {
    /// Profiles `trace` in one pass. The phase-detection window scales
    /// with the trace (`len/16`, clamped to `[64, 8192]`) so short
    /// kernel traces and long synthetic ones both resolve their phases.
    pub fn from_trace(trace: &Trace) -> Self {
        let window = (trace.len() / 16).clamp(64, 8192);
        let mut builder = ProfileBuilder::new(trace.label(), window);
        for a in trace.iter() {
            builder.push(*a);
        }
        builder.finish()
    }

    /// Parses a serialized profile, rejecting unknown schema versions.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a shape mismatch, or a
    /// version other than [`PROFILE_VERSION`].
    pub fn parse(input: &str) -> Result<Self, String> {
        let profile: TraceProfile =
            dwm_foundation::json::from_str(input).map_err(|e| e.to_string())?;
        if profile.version != PROFILE_VERSION {
            return Err(format!(
                "unsupported profile version {} (this build reads version {})",
                profile.version, PROFILE_VERSION
            ));
        }
        Ok(profile)
    }

    /// Serializes the profile as pretty-printed JSON (the `dwm trace
    /// profile` output format).
    pub fn to_json_pretty(&self) -> String {
        dwm_foundation::json::to_string_pretty(self)
    }

    /// Access mass going to items *outside* the hottest 20% — the Zipf
    /// tail mass the fidelity tests compare.
    pub fn tail_mass(&self) -> f64 {
        1.0 - self.hot20_share
    }

    /// Index of the log₂ reuse bucket at which the cumulative finite
    /// reuse mass first reaches quantile `q` (0 when no reuse exists).
    pub fn reuse_quantile_bucket(&self, q: f64) -> usize {
        let mut cum = 0.0;
        for (b, &mass) in self.reuse_buckets.iter().enumerate() {
            cum += mass;
            if cum >= q {
                return b;
            }
        }
        self.reuse_buckets.len().saturating_sub(1)
    }

    /// Component-wise gaps between this profile and `other`.
    pub fn fidelity(&self, other: &TraceProfile) -> Fidelity {
        let reuse_quantile_gap = [0.25, 0.5, 0.75]
            .iter()
            .map(|&q| {
                self.reuse_quantile_bucket(q)
                    .abs_diff(other.reuse_quantile_bucket(q))
            })
            .max()
            .unwrap_or(0);
        Fidelity {
            kernel_mix_gap: (self.write_ratio - other.write_ratio).abs(),
            self_transition_gap: (self.self_transition_rate - other.self_transition_rate).abs(),
            tail_mass_gap: (self.tail_mass() - other.tail_mass()).abs(),
            reuse_quantile_gap,
        }
    }
}

/// Gaps between two profiles, one per statistic the property tests
/// gate on. Produced by [`TraceProfile::fidelity`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fidelity {
    /// Absolute write-ratio (kernel mix) difference.
    pub kernel_mix_gap: f64,
    /// Absolute self-transition-rate difference.
    pub self_transition_gap: f64,
    /// Absolute Zipf tail-mass difference.
    pub tail_mass_gap: f64,
    /// Largest log₂-bucket distance across the p25/p50/p75 reuse
    /// quantiles.
    pub reuse_quantile_gap: usize,
}

impl Fidelity {
    /// Default kernel-mix tolerance (absolute write-ratio gap).
    pub const KERNEL_MIX_TOL: f64 = 0.05;
    /// Default Zipf tail-mass tolerance.
    pub const TAIL_MASS_TOL: f64 = 0.10;
    /// Default self-transition-rate tolerance.
    pub const SELF_TRANSITION_TOL: f64 = 0.05;
    /// Default reuse-quantile tolerance, in log₂ buckets.
    pub const REUSE_BUCKET_TOL: usize = 2;

    /// Whether every gap is within the default tolerances.
    pub fn within_default_tolerance(&self) -> bool {
        self.kernel_mix_gap <= Self::KERNEL_MIX_TOL
            && self.self_transition_gap <= Self::SELF_TRANSITION_TOL
            && self.tail_mass_gap <= Self::TAIL_MASS_TOL
            && self.reuse_quantile_gap <= Self::REUSE_BUCKET_TOL
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel mix Δ{:.3}, self-transition Δ{:.3}, tail mass Δ{:.3}, reuse quantiles Δ{} bucket(s)",
            self.kernel_mix_gap,
            self.self_transition_gap,
            self.tail_mass_gap,
            self.reuse_quantile_gap
        )
    }
}

/// Streaming profile accumulator: the incremental counterpart of
/// [`TraceProfile::from_trace`] for traces that never exist in memory
/// (the 10⁸-access fidelity checks profile
/// [`ProfiledGen::stream`](crate::synth::ProfiledGen::stream) output
/// directly through this).
///
/// Memory is `O(items)` — a frequency map, the reuse LRU stack, the
/// phase detector's window counts, and a ~64-entry histogram — never
/// `O(accesses)`.
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    label: String,
    length: u64,
    writes: u64,
    freq: HashMap<u32, u64>,
    prev: Option<u32>,
    self_transitions: u64,
    stride_sum: u64,
    /// LRU stack for reuse distances (classic stack algorithm).
    stack: Vec<u32>,
    reuse_counts: Vec<u64>,
    cold: u64,
    detector: PhaseDetector,
    boundaries: u64,
}

impl ProfileBuilder {
    /// Phase-detection window used when the stream length is unknown.
    pub const DEFAULT_WINDOW: usize = 4096;

    /// A builder labelling its profile `source`, detecting phases over
    /// `phase_window`-access windows.
    ///
    /// # Panics
    ///
    /// Panics if `phase_window` is zero.
    pub fn new(source: impl Into<String>, phase_window: usize) -> Self {
        ProfileBuilder {
            label: source.into(),
            length: 0,
            writes: 0,
            freq: HashMap::new(),
            prev: None,
            self_transitions: 0,
            stride_sum: 0,
            stack: Vec::new(),
            reuse_counts: Vec::new(),
            cold: 0,
            detector: PhaseDetector::new(phase_window, 0.5),
            boundaries: 0,
        }
    }

    /// Accesses pushed so far.
    pub fn len(&self) -> u64 {
        self.length
    }

    /// Whether no accesses have been pushed.
    pub fn is_empty(&self) -> bool {
        self.length == 0
    }

    /// Feeds one access.
    pub fn push(&mut self, access: Access) {
        let id = access.item.0;
        self.length += 1;
        if access.kind.is_write() {
            self.writes += 1;
        }
        *self.freq.entry(id).or_insert(0) += 1;
        if let Some(prev) = self.prev {
            if prev == id {
                self.self_transitions += 1;
            }
            self.stride_sum += u64::from(prev.abs_diff(id));
        }
        self.prev = Some(id);
        match self.stack.iter().rposition(|&x| x == id) {
            Some(pos) => {
                let distance = (self.stack.len() - 1 - pos) as u64;
                let b = log2_bucket(distance);
                if self.reuse_counts.len() <= b {
                    self.reuse_counts.resize(b + 1, 0);
                }
                self.reuse_counts[b] += 1;
                self.stack.remove(pos);
                self.stack.push(id);
            }
            None => {
                self.cold += 1;
                self.stack.push(id);
            }
        }
        if self.detector.push(id).is_some() {
            self.boundaries += 1;
        }
    }

    /// Finalizes the profile, folding in the trailing partial phase
    /// window exactly as [`crate::analysis::detect_phases`] would.
    pub fn finish(self) -> TraceProfile {
        let pairs = self.length.saturating_sub(1);
        let mut counts: Vec<u64> = self.freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let hot_n = counts.len().max(1).div_ceil(5);
        let hot_sum: u64 = counts.iter().take(hot_n).sum();
        let mut rank_shares = Vec::new();
        if total > 0 {
            for (rank, &c) in counts.iter().enumerate() {
                let b = log2_bucket(rank as u64);
                if rank_shares.len() <= b {
                    rank_shares.resize(b + 1, 0.0);
                }
                rank_shares[b] += c as f64 / total as f64;
            }
        }
        let reuses: u64 = self.reuse_counts.iter().sum();
        let reuse_buckets = self
            .reuse_counts
            .iter()
            .map(|&c| {
                if reuses == 0 {
                    0.0
                } else {
                    c as f64 / reuses as f64
                }
            })
            .collect();
        let boundaries = self.boundaries + u64::from(self.detector.finish().is_some());
        let locality = estimate_locality(&counts, &self.reuse_counts);
        TraceProfile {
            version: PROFILE_VERSION,
            source: self.label,
            length: self.length,
            items: counts.len(),
            write_ratio: ratio(self.writes, self.length),
            self_transition_rate: ratio(self.self_transitions, pairs),
            zipf_exponent: fit_zipf_exponent(&counts),
            hot20_share: ratio(hot_sum, total),
            mean_stride: ratio(self.stride_sum, pairs),
            cold_fraction: ratio(self.cold, self.length),
            locality,
            phases: (boundaries + 1) as usize,
            rank_shares,
            reuse_buckets,
        }
    }
}

/// Estimates how much short-distance reuse mass exceeds what an
/// i.i.d. draw from the same frequency distribution would produce.
///
/// The yardstick is the participation ratio `N_eff = (Σc)² / Σc²` (the
/// effective working-set size): for an i.i.d. stream the LRU stack
/// distance is spread over roughly `[0, N_eff)`, so about a quarter of
/// the reuse mass falls below `N_eff / 4`. Mass above that baseline is
/// clustering the frequency distribution can't explain, and is what
/// replay must re-create with explicit locality draws. Skewed i.i.d.
/// sources concentrate somewhat below the uniform baseline too, so the
/// excess is attenuated and tiny values snap to zero — pure rank draws
/// already reproduce those.
fn estimate_locality(sorted_counts: &[u64], reuse_counts: &[u64]) -> f64 {
    let total: u64 = sorted_counts.iter().sum();
    let sq: f64 = sorted_counts
        .iter()
        .map(|&c| (c as f64 / total.max(1) as f64).powi(2))
        .sum();
    if total == 0 || sq <= 0.0 {
        return 0.0;
    }
    let n_eff = 1.0 / sq;
    let reuses: u64 = reuse_counts.iter().sum();
    if reuses == 0 || n_eff < 8.0 {
        return 0.0;
    }
    let t = n_eff / 4.0;
    // Mass of reuse distances below t, interpolating linearly inside
    // the straddling log₂ bucket.
    let mut short = 0.0f64;
    for (b, &c) in reuse_counts.iter().enumerate() {
        let lo = bucket_lo(b) as f64;
        let hi = bucket_lo(b + 1) as f64;
        let frac = ((t - lo) / (hi - lo)).clamp(0.0, 1.0);
        short += frac * c as f64 / reuses as f64;
    }
    // The i.i.d. baseline is ≥ 0.25 and higher under skew; 0.4 keeps
    // mildly skewed i.i.d. sources at locality ≈ 0 while clustered
    // walks (short mass ≈ 0.9) still land near 0.8.
    let excess = ((short - 0.4) / 0.6).clamp(0.0, 1.0);
    if excess < 0.05 {
        0.0
    } else {
        excess
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Least-squares slope of `ln(count)` against `ln(rank + 1)` over the
/// descending-sorted counts, negated — the classic Zipf exponent fit.
fn fit_zipf_exponent(sorted_counts: &[u64]) -> f64 {
    let points: Vec<(f64, f64)> = sorted_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(rank, &c)| ((rank as f64 + 1.0).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (-(n * sxy - sx * sy) / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{MarkovGen, TraceGenerator, UniformGen, ZipfGen};

    #[test]
    fn log2_buckets_partition_the_line() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(6), 2);
        assert_eq!(log2_bucket(7), 3);
        for b in 0..20 {
            assert_eq!(log2_bucket(bucket_lo(b)), b);
            assert_eq!(log2_bucket(bucket_lo(b + 1) - 1), b);
        }
    }

    #[test]
    fn profile_matches_trace_stats() {
        let t = ZipfGen::new(64, 9).generate(5000).normalize();
        let p = TraceProfile::from_trace(&t);
        let s = t.stats();
        assert_eq!(p.length as usize, s.length);
        assert_eq!(p.items, s.distinct_items);
        assert!((p.write_ratio - s.writes as f64 / s.length as f64).abs() < 1e-12);
        assert!((p.self_transition_rate - s.self_transition_rate).abs() < 1e-12);
        assert!((p.hot20_share - s.hot20_share).abs() < 1e-12);
        assert!((p.mean_stride - s.mean_stride).abs() < 1e-12);
    }

    #[test]
    fn histogram_masses_are_normalized() {
        let t = MarkovGen::new(48, 6, 3).generate(4000);
        let p = TraceProfile::from_trace(&t);
        let rank_sum: f64 = p.rank_shares.iter().sum();
        let reuse_sum: f64 = p.reuse_buckets.iter().sum();
        assert!((rank_sum - 1.0).abs() < 1e-9, "rank mass {rank_sum}");
        assert!((reuse_sum - 1.0).abs() < 1e-9, "reuse mass {reuse_sum}");
        // Self-transitions are exactly the bucket-0 reuse mass (scaled
        // from pairs to reuses).
        let reuses: f64 = 1.0; // normalized
        assert!(p.reuse_buckets[0] <= reuses);
    }

    #[test]
    fn streaming_builder_matches_from_trace() {
        let t = ZipfGen::new(32, 5).generate(3000).normalize();
        let window = (t.len() / 16).clamp(64, 8192);
        let mut b = ProfileBuilder::new(t.label(), window);
        for a in t.iter() {
            b.push(*a);
        }
        assert_eq!(b.finish(), TraceProfile::from_trace(&t));
    }

    #[test]
    fn zipf_fit_recovers_the_exponent_roughly() {
        for exp in [0.8f64, 1.2] {
            let t = ZipfGen::new(128, 7)
                .with_exponent(exp)
                .generate(60_000)
                .normalize();
            let p = TraceProfile::from_trace(&t);
            assert!(
                (p.zipf_exponent - exp).abs() < 0.35,
                "fitted {} for true {}",
                p.zipf_exponent,
                exp
            );
        }
        let u = UniformGen::new(128, 7).generate(60_000).normalize();
        assert!(TraceProfile::from_trace(&u).zipf_exponent < 0.2);
    }

    #[test]
    fn json_round_trip_preserves_the_profile() {
        let t = MarkovGen::new(40, 5, 11).generate(2500).normalize();
        let p = TraceProfile::from_trace(&t);
        let json = p.to_json_pretty();
        assert!(json.contains("\"version\": 1"));
        assert_eq!(TraceProfile::parse(&json).unwrap(), p);
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let t = UniformGen::new(8, 1).generate(100);
        let mut p = TraceProfile::from_trace(&t);
        p.version = 99;
        let err = TraceProfile::parse(&p.to_json_pretty()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        assert!(TraceProfile::parse("{not json").is_err());
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = TraceProfile::from_trace(&Trace::new());
        assert_eq!(p.length, 0);
        assert_eq!(p.items, 0);
        assert_eq!(p.phases, 1);
        assert_eq!(p.tail_mass(), 1.0);
        assert!(p.rank_shares.is_empty());
        assert!(p.reuse_buckets.is_empty());
        assert_eq!(p.reuse_quantile_bucket(0.5), 0);
    }

    #[test]
    fn fidelity_of_a_profile_with_itself_is_zero() {
        let t = ZipfGen::new(50, 3).generate(4000).normalize();
        let p = TraceProfile::from_trace(&t);
        let f = p.fidelity(&p);
        assert_eq!(f.kernel_mix_gap, 0.0);
        assert_eq!(f.tail_mass_gap, 0.0);
        assert_eq!(f.reuse_quantile_gap, 0);
        assert!(f.within_default_tolerance());
    }

    #[test]
    fn fidelity_flags_dissimilar_workloads() {
        let z = TraceProfile::from_trace(&ZipfGen::new(64, 3).with_exponent(1.4).generate(8000));
        let u = TraceProfile::from_trace(&UniformGen::new(64, 3).generate(8000));
        let f = z.fidelity(&u);
        assert!(!f.within_default_tolerance(), "{f}");
        assert!(f.tail_mass_gap > Fidelity::TAIL_MASS_TOL);
    }

    #[test]
    fn phase_churn_is_counted() {
        let mut ids: Vec<u32> = (0..2000).map(|i| i % 8).collect();
        ids.extend((0..2000).map(|i| 100 + i % 8));
        let p = TraceProfile::from_trace(&Trace::from_ids(ids));
        assert!(p.phases >= 2, "saw {} phases", p.phases);
        let stable = TraceProfile::from_trace(&UniformGen::new(16, 2).generate(4000));
        assert_eq!(stable.phases, 1);
    }
}
