//! The memoizing solve cache: sharded, LRU-evicting, fingerprint-keyed.
//!
//! A cache entry memoizes the full solve *result object* (placement,
//! costs, metadata) for one `(fingerprint, algorithm, seed)` triple.
//! Because every solver in the workspace is deterministic, a hit is
//! byte-for-byte what a fresh solve would have produced — the cache is
//! a pure latency optimization and can never change response bodies.
//!
//! Sharding: entries are spread over a power-of-two number of
//! independently locked shards by the low fingerprint bits, so
//! concurrent requests for *different* workloads never contend on one
//! mutex. Each shard runs its own LRU clock (a bump-on-touch tick);
//! eviction scans the over-full shard for the stale minimum, which is
//! O(shard size) but only runs on insert into a full shard — cheap next
//! to the solve that produced the entry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dwm_foundation::json::Value;
use dwm_graph::Fingerprint;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 8;

/// Key identifying one memoized solve.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical workload fingerprint.
    pub fingerprint: Fingerprint,
    /// Algorithm name the solve used.
    pub algorithm: String,
    /// Seed the stochastic algorithms used.
    pub seed: u64,
}

struct Entry {
    value: Arc<Value>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Monotonic counters describing cache behaviour since startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Configured capacity (0 = caching disabled).
    pub capacity: u64,
}

/// A sharded LRU cache from [`CacheKey`] to memoized solve results.
///
/// `capacity` is the total entry budget, split evenly across shards; a
/// capacity of 0 disables caching entirely (every lookup misses, every
/// insert is dropped), which the bench suite uses to measure pure
/// solve cost.
pub struct SolveCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SolveCache {
    /// Creates a cache with room for roughly `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        SolveCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.fingerprint.lo as usize) & (SHARDS - 1)]
    }

    /// Looks up a memoized result, refreshing its LRU position.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Value>> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_of(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a solve result, evicting the least-recently-used entry
    /// of the target shard if it is full.
    pub fn insert(&self, key: CacheKey, value: Arc<Value>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard_of(&key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(stale) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&stale);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// A consistent-enough snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().map.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_foundation::json::Number;

    fn key(lo: u64, alg: &str, seed: u64) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint { hi: 7, lo },
            algorithm: alg.to_owned(),
            seed,
        }
    }

    fn val(n: u64) -> Arc<Value> {
        Arc::new(Value::Num(Number::U(n)))
    }

    #[test]
    fn hit_after_insert_and_key_components_distinguish() {
        let cache = SolveCache::new(64);
        cache.insert(key(1, "hybrid", 1), val(10));
        assert_eq!(cache.get(&key(1, "hybrid", 1)).as_deref(), Some(&*val(10)));
        assert!(cache.get(&key(2, "hybrid", 1)).is_none());
        assert!(cache.get(&key(1, "spectral", 1)).is_none());
        assert!(cache.get(&key(1, "hybrid", 2)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // Capacity 8 over 8 shards = 1 entry per shard; keys 0 and 8
        // land in the same shard (lo % 8).
        let cache = SolveCache::new(8);
        cache.insert(key(0, "a", 0), val(1));
        cache.insert(key(8, "a", 0), val(2));
        assert!(cache.get(&key(0, "a", 0)).is_none(), "cold entry evicted");
        assert_eq!(cache.get(&key(8, "a", 0)).as_deref(), Some(&*val(2)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn get_refreshes_recency() {
        // 16 total → 2 per shard. Keys 0, 8, 16 share shard 0.
        let cache = SolveCache::new(16);
        cache.insert(key(0, "a", 0), val(1));
        cache.insert(key(8, "a", 0), val(2));
        // Touch 0 so 8 becomes the LRU victim.
        assert!(cache.get(&key(0, "a", 0)).is_some());
        cache.insert(key(16, "a", 0), val(3));
        assert!(cache.get(&key(0, "a", 0)).is_some());
        assert!(cache.get(&key(8, "a", 0)).is_none());
        assert!(cache.get(&key(16, "a", 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = SolveCache::new(0);
        cache.insert(key(1, "a", 0), val(1));
        assert!(cache.get(&key(1, "a", 0)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn reinserting_an_existing_key_replaces_without_eviction() {
        let cache = SolveCache::new(8);
        cache.insert(key(0, "a", 0), val(1));
        cache.insert(key(0, "a", 0), val(9));
        assert_eq!(cache.get(&key(0, "a", 0)).as_deref(), Some(&*val(9)));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 1);
    }
}
