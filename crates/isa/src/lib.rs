//! Basic-block layout for racetrack *instruction* memories.
//!
//! An instruction scratchpad built from DWM behaves like the data tape
//! with one pleasant difference: sequential fetch advances the tape by
//! one domain anyway, so straight-line execution is free — only
//! *taken control transfers* pay shifts, proportional to the jump
//! distance on the tape. Which basic block sits where therefore
//! determines the fetch-shift bill, a sized variant of the data-
//! placement problem (blocks have lengths, so offsets are cumulative).
//!
//! This crate provides:
//!
//! * [`Cfg`] — basic blocks with sizes, weighted control-flow edges,
//!   and generators (structured loop/branch programs and random CFGs);
//! * [`BlockOrder`] — a block permutation with cumulative start
//!   offsets and the fetch-shift cost model (fallthrough to the next
//!   block on tape is free; every other transfer costs `|from_end −
//!   to_start|` shifts weighted by edge frequency);
//! * [`chain_layout`] — hottest-edge chaining (the Pettis–Hansen
//!   construction adapted to tape distance) plus a local-search
//!   refiner, against the program-order baseline.
//!
//! # Example
//!
//! ```
//! use dwm_isa::{Cfg, chain_layout, BlockOrder};
//!
//! let cfg = Cfg::random(24, 3, 42);
//! let naive = BlockOrder::program_order(&cfg);
//! let tuned = chain_layout(&cfg);
//! assert!(tuned.cost(&cfg) <= naive.cost(&cfg));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod layout;

pub use cfg::{BlockId, Cfg, CfgEdge};
pub use layout::{best_layout, chain_layout, refine_order, BlockOrder};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::{best_layout, chain_layout, refine_order, BlockId, BlockOrder, Cfg, CfgEdge};
}
