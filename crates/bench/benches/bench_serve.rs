//! S17: `dwm-serve` request latency — memoized vs fresh solves, and
//! full loopback round-trips.
//!
//! `serve/solve_hit` and `serve/solve_miss` time the transport-free
//! [`Engine`] path, so their ratio is the value of the solve cache;
//! `serve/throughput` times one keep-alive round-trip of a cached
//! solve over a real loopback socket — the unit the CI smoke job's
//! req/s floor is made of.

use dwm_bench::BENCH_SEED;
use dwm_foundation::bench::{black_box, Harness};
use dwm_foundation::net::Request;
use dwm_serve::client::ClientConn;
use dwm_serve::{start, Engine, ServeConfig};
use dwm_trace::synth::{TraceGenerator, ZipfGen};

fn solve_body(items: usize, len: usize) -> String {
    let trace = ZipfGen::new(items, BENCH_SEED).generate(len);
    let ids: Vec<String> = trace.iter().map(|a| a.item.index().to_string()).collect();
    format!(r#"{{"algorithm":"hybrid","ids":[{}]}}"#, ids.join(","))
}

fn main() {
    let body = solve_body(48, 2400);
    let request = Request::post("/solve", body.clone().into_bytes());

    let mut h = Harness::from_env("serve");

    // Memoized path: the first call populates the cache, every timed
    // call is a fingerprint + shard lookup.
    let cached = Engine::new(64);
    assert!(cached.handle(&request).is_success());
    h.bench("serve/solve_hit", || black_box(cached.handle(&request)));

    // Capacity 0 disables memoization, so every call runs the solver.
    let uncached = Engine::new(0);
    h.bench("serve/solve_miss", || black_box(uncached.handle(&request)));

    // Full loopback round-trip of the cached solve: framing, socket,
    // worker dispatch, cache hit, response.
    let handle = start(ServeConfig {
        workers: 2,
        cache_capacity: 64,
        ..ServeConfig::ephemeral()
    })
    .expect("loopback server starts");
    let mut conn = ClientConn::connect(handle.local_addr()).expect("connect");
    assert!(conn
        .post_json("/solve", body.as_str())
        .expect("prime")
        .is_success());
    h.bench("serve/throughput", || {
        black_box(conn.post_json("/solve", body.as_str()).expect("round-trip"))
    });
    handle.shutdown();
    handle.join();

    h.finish();
}
