//! Experiment F4: sensitivity to tape length (domains per track).
//!
//! Longer tapes hold more items but make bad placements costlier. We
//! scale a Markov-clustered workload to fill tapes of L ∈
//! {16,32,64,128,256} words and report shifts-per-access of the naive,
//! organ-pipe, and grouped-chain placements, plus the reduction of
//! grouped over naive at each L.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{GroupedChainGrowth, OrderOfAppearance, OrganPipe, PlacementAlgorithm};
use dwm_experiments::{percent_reduction, Table, EXPERIMENT_SEED};
use dwm_foundation::par;
use dwm_graph::AccessGraph;
use dwm_trace::synth::{MarkovGen, TraceGenerator};

fn main() {
    println!("Figure 4: shifts/access vs. tape length L (Markov workload, 20k accesses)\n");
    let mut t = Table::new(["L", "naive", "organ-pipe", "grouped-chain", "reduction"]);
    let model = SinglePortCost::new();
    let lengths = [16usize, 32, 64, 128, 256];
    // Each tape length is an independent cell; par_map keeps the rows
    // in L order regardless of DWM_THREADS.
    let rows = par::par_map(&lengths, |&l| {
        let trace = MarkovGen::new(l, (l / 8).max(2), EXPERIMENT_SEED)
            .with_stay(0.9)
            .generate(20_000)
            .normalize();
        let graph = AccessGraph::from_trace(&trace);
        let naive = model
            .trace_cost(&OrderOfAppearance.place(&graph), &trace)
            .stats;
        let pipe = model.trace_cost(&OrganPipe.place(&graph), &trace).stats;
        let grouped = model
            .trace_cost(&GroupedChainGrowth.place(&graph), &trace)
            .stats;
        [
            l.to_string(),
            format!("{:.2}", naive.mean_shift()),
            format!("{:.2}", pipe.mean_shift()),
            format!("{:.2}", grouped.mean_shift()),
            percent_reduction(naive.shifts, grouped.shifts),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print();
}
