//! S17: `dwm-serve` request latency — memoized vs fresh solves, and
//! full loopback round-trips.
//!
//! `serve/solve_hit` and `serve/solve_miss` time the transport-free
//! [`Engine`] path, so their ratio is the value of the solve cache;
//! `serve/throughput` times one keep-alive round-trip of a cached
//! solve over a real loopback socket — the unit the CI smoke job's
//! req/s floor is made of.
//!
//! `serve/solve_hit_obs_off` repeats the hit path with metric
//! collection force-disabled; the gate bounds `solve_hit /
//! solve_hit_obs_off` at 1.05x, proving observability costs < 5%.
//! `serve/metrics_scrape` times a full `GET /metrics` render.
//!
//! `serve/session_ingest` (S19) times one 256-access chunk through the
//! transport-free streaming-session path: dense id remap, delta-graph
//! updates, phase detection, and one window-boundary decision per
//! call.
//!
//! The tiered additions (S20): `serve/solve_tier0` times the
//! deadline-planned greedy fast path end to end (the latency the
//! deadline contract is written against); `serve/upgrade_drain` times
//! one full background-upgrade cycle — a tier-0 miss that schedules a
//! tier-2 portfolio job on the idle lane, plus the drain handshake.
//! `serve/solve_hit_idle_load` re-times the cached-solve path while
//! the engine's idle lane holds a deep queue of pending tier-2
//! upgrades; the gate bounds it against `serve/solve_hit_lane_quiet`
//! at 1.05x, proving the idle-priority lane's foreground deferral
//! keeps background upgrades from stealing cycles from live solves.

use std::time::Duration;

use dwm_bench::BENCH_SEED;
use dwm_core::anytime::{estimate_us, Tier};
use dwm_foundation::bench::{black_box, Harness};
use dwm_foundation::net::Request;
use dwm_foundation::obs;
use dwm_graph::AccessGraph;
use dwm_serve::client::ClientConn;
use dwm_serve::{start, Engine, ServeConfig};
use dwm_trace::synth::{TraceGenerator, ZipfGen};

fn solve_body(items: usize, len: usize) -> String {
    let trace = ZipfGen::new(items, BENCH_SEED).generate(len);
    let ids: Vec<String> = trace.iter().map(|a| a.item.index().to_string()).collect();
    format!(r#"{{"algorithm":"hybrid","ids":[{}]}}"#, ids.join(","))
}

/// A tiered solve body: `prefix` carries the quality/deadline knobs,
/// `seed` varies the trace so distinct bodies hash to distinct cache
/// keys.
fn tiered_body(prefix: &str, items: usize, len: usize, seed: u64) -> String {
    let trace = ZipfGen::new(items, seed).generate(len);
    let ids: Vec<String> = trace.iter().map(|a| a.item.index().to_string()).collect();
    format!(r#"{{{prefix}"ids":[{}]}}"#, ids.join(","))
}

/// The tightest deadline the engine's admission control accepts for
/// this workload: exactly the tier-0 estimate. `plan` then answers
/// from tier 0 (tier 1 costs strictly more than the deadline), so a
/// `quality:"best"` request with this budget is the canonical
/// "answer fast, upgrade in the background" shape — and never 503s.
fn tier0_deadline(items: usize, len: usize, seed: u64) -> u64 {
    let trace = ZipfGen::new(items, seed).generate(len).normalize();
    let graph = AccessGraph::from_trace(&trace);
    estimate_us(Tier::Fast, graph.num_items(), graph.num_edges())
}

fn main() {
    let body = solve_body(48, 2400);
    let request = Request::post("/solve", body.clone().into_bytes());

    let mut h = Harness::from_env("serve");

    // Memoized path: the first call populates the cache, every timed
    // call is a fingerprint + shard lookup. The obs-on and obs-off
    // sides are sampled *alternately* (`bench_pair`) because the gate
    // bounds their ratio at 5% — a sequential layout would let a
    // transient load spike inflate one side alone. The override guard
    // inside each closure forces collection on/off per call (two
    // atomic swaps against a ~300 µs body: noise) so the pair measures
    // a real difference regardless of the ambient DWM_OBS.
    let cached = Engine::new(64);
    assert!(cached.handle(&request).is_success());
    {
        let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
        h.bench_pair(
            "serve/solve_hit",
            "serve/solve_hit_obs_off",
            || {
                let _on = obs::override_enabled(true);
                black_box(cached.handle(&request))
            },
            || {
                let _off = obs::override_enabled(false);
                black_box(cached.handle(&request))
            },
        );
    }

    // Prometheus render of the engine + global registries.
    {
        let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = obs::override_enabled(true);
        let scrape = Request::new("GET", "/metrics");
        h.bench("serve/metrics_scrape", || black_box(cached.handle(&scrape)));
    }

    // Capacity 0 disables memoization, so every call runs the solver.
    let uncached = Engine::new(0);
    h.bench("serve/solve_miss", || black_box(uncached.handle(&request)));

    // Tier-0 fast path, uncached: every call plans the tier from the
    // request knobs and runs the greedy CSR solve — the per-request
    // latency the deadline contract promises to keep under budget.
    let tier0_request = Request::post(
        "/solve",
        tiered_body(r#""quality":"fast","#, 48, 2400, BENCH_SEED).into_bytes(),
    );
    assert!(uncached.handle(&tier0_request).is_success());
    h.bench("serve/solve_tier0", || {
        black_box(uncached.handle(&tier0_request))
    });

    // One full background-upgrade cycle: a best-quality solve under a
    // deadline too tight for refinement answers from tier 0 and
    // schedules a tier-2 portfolio job on the idle lane; the drain
    // waits for that job to land in the cache. Every iteration renders
    // a never-before-seen workload (the cache is sharded, so eviction
    // tricks cannot force repeat misses) — rendering ~600 ids and
    // sizing its admissible deadline costs ~10 µs against a
    // multi-hundred-µs cycle.
    let upgrading = Engine::new(64);
    let mut upgrade_seed = BENCH_SEED + 100;
    h.bench("serve/upgrade_drain", || {
        upgrade_seed += 1;
        let prefix = format!(
            r#""quality":"best","deadline_us":{},"#,
            tier0_deadline(24, 600, upgrade_seed)
        );
        let req = Request::post(
            "/solve",
            tiered_body(&prefix, 24, 600, upgrade_seed).into_bytes(),
        );
        let resp = upgrading.handle(&req);
        assert!(resp.is_success());
        assert!(upgrading.drain_upgrades(Duration::from_secs(30)));
        black_box(resp)
    });

    // Cached-solve latency under idle-lane load: prime a deep queue of
    // pending tier-2 upgrades (distinct small workloads, each solved
    // at tier 0 with an upgrade scheduled), then sample the hit path
    // against a quiet twin. The lane's contract is *deferral*: while
    // any foreground section is in flight it never starts a queued
    // job. Holding one explicit foreground section across the whole
    // pair models a server under sustained traffic — the scenario the
    // contract protects — and makes the measurement deterministic: the
    // loaded side carries a full pending queue plus the deferring
    // worker's wakeups, and the gate bounds the pair at 5%. (Without
    // the outer section, jobs start in the sub-µs gaps between
    // iterations and their multi-ms runtime lands on whichever sample
    // is next — single-core scheduling physics, not a lane defect.)
    let busy = Engine::new(1024);
    let quiet = Engine::new(1024);
    for k in 0..256 {
        let seed = BENCH_SEED + 1000 + k;
        let prefix = format!(
            r#""quality":"best","deadline_us":{},"#,
            tier0_deadline(16, 300, seed)
        );
        let req = Request::post("/solve", tiered_body(&prefix, 16, 300, seed).into_bytes());
        assert!(busy.handle(&req).is_success());
    }
    assert!(busy.handle(&request).is_success());
    assert!(quiet.handle(&request).is_success());
    {
        let _traffic = dwm_foundation::par::enter_foreground();
        h.bench_pair(
            "serve/solve_hit_idle_load",
            "serve/solve_hit_lane_quiet",
            || black_box(busy.handle(&request)),
            || black_box(quiet.handle(&request)),
        );
        assert!(
            busy.upgrade_queue_depth() > 0,
            "idle-lane jobs ran despite an active foreground section"
        );
    }
    assert!(busy.drain_upgrades(Duration::from_secs(120)));

    // Streaming ingest: the same 256-access chunk over and over, with
    // the window sized to the chunk so every call completes exactly
    // one decision window. Identical windows stop triggering phase
    // changes after the first, so the timed calls hit the steady-state
    // path: remap lookups, delta-graph bumps, detector pushes, one
    // boundary decision.
    let streaming = Engine::new(64);
    let create = Request::post("/session", r#"{"window":256}"#.as_bytes().to_vec());
    assert!(streaming.handle(&create).is_success());
    let ids: Vec<String> = (0..256).map(|i| ((i * 7) % 48).to_string()).collect();
    let ingest = Request::post(
        "/session/s-1/accesses",
        format!(r#"{{"ids":[{}]}}"#, ids.join(",")).into_bytes(),
    );
    assert!(streaming.handle(&ingest).is_success());
    h.bench("serve/session_ingest", || {
        black_box(streaming.handle(&ingest))
    });

    // Full loopback round-trip of the cached solve: framing, socket,
    // worker dispatch, cache hit, response.
    let handle = start(ServeConfig {
        workers: 2,
        cache_capacity: 64,
        ..ServeConfig::ephemeral()
    })
    .expect("loopback server starts");
    let mut conn = ClientConn::connect(handle.local_addr()).expect("connect");
    assert!(conn
        .post_json("/solve", body.as_str())
        .expect("prime")
        .is_success());
    h.bench("serve/throughput", || {
        black_box(conn.post_json("/solve", body.as_str()).expect("round-trip"))
    });
    handle.shutdown();
    handle.join();

    h.finish();
}
