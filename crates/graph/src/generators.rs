//! Synthetic access-graph generators.
//!
//! The optimality-gap study (T4) and the runtime-scaling study (F7)
//! need graphs of controlled size and structure without going through a
//! trace. All generators are deterministic given their seed.

use dwm_foundation::Rng;

use crate::graph::AccessGraph;

/// Erdős–Rényi-style weighted graph: each pair becomes an edge with
/// probability `density`, with weight uniform in `1..=max_weight`.
///
/// Vertex frequencies are set to the weighted degrees so that
/// frequency-aware algorithms behave sensibly on generated graphs.
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn random_graph(n: usize, density: f64, max_weight: u64, seed: u64) -> AccessGraph {
    assert!(max_weight > 0, "max_weight must be nonzero");
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = AccessGraph::with_items(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                g.add_weight(u, v, rng.gen_range(1..=max_weight));
            }
        }
    }
    for u in 0..n {
        g.set_frequency(u, g.degree(u));
    }
    g
}

/// A weighted path `0—1—…—(n−1)`, every edge of weight `w`.
///
/// Paths are the best case for linear arrangement (the identity order
/// is optimal), which makes them handy ground truth in tests.
pub fn path_graph(n: usize, w: u64) -> AccessGraph {
    let mut g = AccessGraph::with_items(n);
    for u in 0..n.saturating_sub(1) {
        g.add_weight(u, u + 1, w);
    }
    for u in 0..n {
        g.set_frequency(u, g.degree(u));
    }
    g
}

/// Clustered graph: `n` vertices in `k` equal clusters; intra-cluster
/// pairs get weight `w_in` with probability `p_in`, inter-cluster pairs
/// weight 1 with probability `p_out`.
///
/// This mimics the access graphs of phase-local programs and is the
/// structure on which adjacency-driven placement beats frequency-only
/// placement by the widest margin.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn clustered_graph(
    n: usize,
    k: usize,
    p_in: f64,
    p_out: f64,
    w_in: u64,
    seed: u64,
) -> AccessGraph {
    assert!(k > 0, "cluster count must be nonzero");
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = AccessGraph::with_items(n);
    let cluster = |v: usize| v * k / n.max(1);
    for u in 0..n {
        for v in (u + 1)..n {
            if cluster(u) == cluster(v) {
                if rng.gen_bool(p_in.clamp(0.0, 1.0)) {
                    g.add_weight(u, v, w_in);
                }
            } else if rng.gen_bool(p_out.clamp(0.0, 1.0)) {
                g.add_weight(u, v, 1);
            }
        }
    }
    for u in 0..n {
        g.set_frequency(u, g.degree(u));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        assert_eq!(random_graph(20, 0.3, 9, 5), random_graph(20, 0.3, 9, 5));
        assert_ne!(random_graph(20, 0.3, 9, 5), random_graph(20, 0.3, 9, 6));
    }

    #[test]
    fn random_graph_density_extremes() {
        let empty = random_graph(10, 0.0, 5, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = random_graph(10, 1.0, 5, 1);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn path_graph_identity_cost_is_total_weight() {
        let g = path_graph(12, 3);
        let identity: Vec<usize> = (0..12).collect();
        assert_eq!(g.arrangement_cost(&identity), 11 * 3);
        assert_eq!(g.num_edges(), 11);
    }

    #[test]
    fn clustered_graph_has_heavier_intra_edges() {
        let g = clustered_graph(24, 4, 0.9, 0.05, 8, 7);
        let cluster = |v: usize| v * 4 / 24;
        let intra: u64 = g
            .edges()
            .filter(|e| cluster(e.u) == cluster(e.v))
            .map(|e| e.weight)
            .sum();
        let inter: u64 = g
            .edges()
            .filter(|e| cluster(e.u) != cluster(e.v))
            .map(|e| e.weight)
            .sum();
        assert!(intra > inter);
    }

    #[test]
    fn frequencies_match_degrees() {
        let g = random_graph(15, 0.4, 4, 9);
        for u in 0..15 {
            assert_eq!(g.frequency(u), g.degree(u));
        }
    }
}
