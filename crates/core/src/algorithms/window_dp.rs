use dwm_graph::{AccessGraph, CsrGraph};

use crate::placement::Placement;

/// Sliding-window exact refinement.
///
/// Takes an existing placement and, for each window of `window`
/// consecutive tape positions, finds the *provably optimal* ordering of
/// the items inside that window — holding everything outside fixed —
/// by a subset DP with boundary terms. Windows slide by half their
/// length, so improvements propagate; passes repeat until a full sweep
/// yields nothing.
///
/// This is the strongest polynomial refiner in the suite: where
/// [`LocalSearch`](crate::LocalSearch) explores single swaps,
/// `WindowedDp` explores all `window!` orderings of each region at
/// `O(2^w · w)` per window. It never increases cost.
///
/// # The DP
///
/// Inside a window starting at tape position `base`, the cost of an
/// ordering decomposes into (a) internal edges, handled by the prefix-
/// cut identity exactly as in [`crate::exact`], and (b) edges to items
/// outside the window, whose endpoints are fixed — so placing item `v`
/// at slot `base + k` contributes a precomputable `ext(v, k)`. Thus
///
/// ```text
/// f(S) = min_{v ∈ S} [ f(S∖{v}) + ext(v, |S|−1) ] + cut(S)·span(S)
/// ```
///
/// with `cut(S)` the internal cut of the window's subset (each
/// internal prefix boundary contributes once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedDp {
    /// Window length in tape positions (≤ 16; the DP table is `2^w`).
    pub window: usize,
    /// Maximum full sweeps.
    pub max_passes: usize,
}

impl Default for WindowedDp {
    fn default() -> Self {
        WindowedDp {
            window: 10,
            max_passes: 8,
        }
    }
}

impl WindowedDp {
    /// A refiner with the given window (clamped to `2..=16`).
    pub fn new(window: usize) -> Self {
        WindowedDp {
            window: window.clamp(2, 16),
            ..WindowedDp::default()
        }
    }

    /// Optimally reorders the items at positions `base..base+w` of
    /// `placement`; returns `true` if the order changed.
    fn solve_window(
        &self,
        csr: &CsrGraph,
        placement: &mut Placement,
        base: usize,
        local_of: &mut [usize],
    ) -> bool {
        let n = placement.num_items();
        let w = self.window.min(n - base);
        if w < 2 {
            return false;
        }
        let items: Vec<usize> = (0..w).map(|k| placement.item_at(base + k)).collect();
        // Scatter index: local_of[v] = v's window slot, usize::MAX
        // outside (reset before returning).
        for (li, &v) in items.iter().enumerate() {
            local_of[v] = li;
        }

        // One CSR pass builds both the external-edge slot costs
        // (ext[v_local][k] = cost of v's external edges if v sits at
        // slot base + k) and the internal weights in local indexing.
        let mut ext = vec![vec![0u64; w]; w];
        let mut wmat = vec![0u64; w * w];
        for (li, &v) in items.iter().enumerate() {
            let (us, ws) = csr.neighbor_slices(v);
            for (&u, &weight) in us.iter().zip(ws) {
                let lj = local_of[u as usize];
                if lj != usize::MAX {
                    wmat[li * w + lj] = weight;
                    continue;
                }
                let pu = placement.offset_of(u as usize) as i64;
                for (k, slot_cost) in ext[li].iter_mut().enumerate() {
                    *slot_cost += weight * ((base + k) as i64).abs_diff(pu);
                }
            }
        }
        for &v in &items {
            local_of[v] = usize::MAX;
        }
        let degree: Vec<u64> = (0..w)
            .map(|li| (0..w).map(|lj| wmat[li * w + lj]).sum())
            .collect();

        let full = (1usize << w) - 1;
        let mut cut = vec![0u64; full + 1];
        let mut f = vec![u64::MAX; full + 1];
        let mut parent = vec![u8::MAX; full + 1];
        f[0] = 0;
        for s in 1..=full {
            let low = s.trailing_zeros() as usize;
            let rest = s & (s - 1);
            let mut w_into = 0u64;
            let mut t = rest;
            while t != 0 {
                let v = t.trailing_zeros() as usize;
                t &= t - 1;
                w_into += wmat[low * w + v];
            }
            cut[s] = cut[rest] + degree[low] - 2 * w_into;

            let slot = s.count_ones() as usize - 1;
            let mut best = u64::MAX;
            let mut best_v = u8::MAX;
            let mut t = s;
            while t != 0 {
                let v = t.trailing_zeros() as usize;
                t &= t - 1;
                let prev = f[s & !(1 << v)];
                if prev == u64::MAX {
                    continue;
                }
                let cand = prev + ext[v][slot];
                if cand < best {
                    best = cand;
                    best_v = v as u8;
                }
            }
            // Internal prefix cut contributes once per boundary inside
            // the window (the final boundary, s == full, is external
            // and already priced by ext terms).
            f[s] = best + if s == full { 0 } else { cut[s] };
            parent[s] = best_v;
        }

        // Reconstruct and compare against the current order's cost.
        let mut order = vec![0usize; w];
        let mut s = full;
        for slot in (0..w).rev() {
            let v = parent[s] as usize;
            order[slot] = v;
            s &= !(1 << v);
        }
        let changed = order
            .iter()
            .enumerate()
            .any(|(k, &li)| items[li] != items[k]);
        if !changed {
            return false;
        }
        // Apply only if the full arrangement cost actually improves
        // (guards the window model against edge-case mismatches).
        let before = csr.arrangement_cost(placement.offsets());
        let mut candidate = placement.clone();
        apply_window_order(&mut candidate, base, &items, &order);
        let after = csr.arrangement_cost(candidate.offsets());
        if after < before {
            *placement = candidate;
            true
        } else {
            false
        }
    }

    /// Refines `placement` in place; returns the total cost reduction.
    pub fn refine(&self, graph: &AccessGraph, placement: &mut Placement) -> u64 {
        if placement.num_items() < 3 {
            return 0;
        }
        self.refine_frozen(&CsrGraph::freeze(graph), placement)
    }

    /// [`refine`](Self::refine) on an already-frozen graph.
    pub fn refine_frozen(&self, csr: &CsrGraph, placement: &mut Placement) -> u64 {
        let n = placement.num_items();
        if n < 3 {
            return 0;
        }
        let before = csr.arrangement_cost(placement.offsets());
        let step = (self.window / 2).max(1);
        let mut local_of = vec![usize::MAX; n];
        for _ in 0..self.max_passes {
            let mut improved = false;
            let mut base = 0usize;
            while base + 2 <= n {
                improved |= self.solve_window(csr, placement, base, &mut local_of);
                base += step;
            }
            if !improved {
                break;
            }
        }
        before - csr.arrangement_cost(placement.offsets())
    }
}

fn apply_window_order(placement: &mut Placement, base: usize, items: &[usize], order: &[usize]) {
    // Rebuild the window as a sequence of swaps: walk the slots,
    // swapping the desired item into place.
    for (k, &li) in order.iter().enumerate() {
        let want = items[li];
        let have = placement.item_at(base + k);
        if have != want {
            placement.swap_items(have, want);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Hybrid, PlacementAlgorithm, RandomPlacement};
    use crate::exact::optimal_placement;
    use dwm_graph::generators::{clustered_graph, path_graph, random_graph};

    #[test]
    fn never_increases_cost() {
        for seed in 0..6 {
            let g = random_graph(30, 0.3, 6, seed);
            let mut p = RandomPlacement::new(seed).place(&g);
            let before = g.arrangement_cost(p.offsets());
            let saved = WindowedDp::default().refine(&g, &mut p);
            let after = g.arrangement_cost(p.offsets());
            assert!(after <= before);
            assert_eq!(before - after, saved);
        }
    }

    #[test]
    fn window_covering_whole_instance_reaches_optimum() {
        for seed in 0..5 {
            let g = random_graph(9, 0.5, 5, seed);
            let (_, opt) = optimal_placement(&g).unwrap();
            let mut p = RandomPlacement::new(seed + 100).place(&g);
            WindowedDp::new(9).refine(&g, &mut p);
            assert_eq!(
                g.arrangement_cost(p.offsets()),
                opt,
                "whole-instance window must find the optimum (seed {seed})"
            );
        }
    }

    #[test]
    fn recovers_scrambled_path() {
        let g = path_graph(20, 3);
        let mut p = RandomPlacement::new(7).place(&g);
        WindowedDp::default().refine(&g, &mut p);
        // The path optimum is 19·3 = 57; windows of 10 with overlap
        // should get close (within 2× is already strong from random).
        assert!(g.arrangement_cost(p.offsets()) <= 2 * 57);
    }

    #[test]
    fn improves_on_hybrid_sometimes_never_hurts() {
        for seed in 0..5 {
            let g = clustered_graph(28, 4, 0.7, 0.1, 6, seed);
            let mut p = Hybrid::default().place(&g);
            let before = g.arrangement_cost(p.offsets());
            WindowedDp::default().refine(&g, &mut p);
            assert!(g.arrangement_cost(p.offsets()) <= before);
        }
    }

    #[test]
    fn result_is_a_permutation() {
        let g = random_graph(25, 0.4, 5, 3);
        let mut p = RandomPlacement::new(1).place(&g);
        WindowedDp::new(8).refine(&g, &mut p);
        let mut seen = [false; 25];
        for off in 0..25 {
            assert!(!seen[p.item_at(off)]);
            seen[p.item_at(off)] = true;
        }
    }

    #[test]
    fn tiny_instances_are_no_ops() {
        for n in 0..3 {
            let g = AccessGraph::with_items(n);
            let mut p = Placement::identity(n);
            assert_eq!(WindowedDp::default().refine(&g, &mut p), 0);
        }
    }

    #[test]
    fn window_is_clamped() {
        assert_eq!(WindowedDp::new(1).window, 2);
        assert_eq!(WindowedDp::new(64).window, 16);
    }
}
