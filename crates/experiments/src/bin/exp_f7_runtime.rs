//! Experiment F7: algorithm runtime scaling.
//!
//! Wall-clock time of each placement algorithm on Markov workloads of
//! n ∈ {64, 256, 1024, 4096} items (trace length 20·n). The point of
//! the figure: the proposed chain heuristics scale near-linearly in the
//! edge count, while annealing and spectral pay iteration costs.

use std::time::Instant;

use dwm_core::algorithms::{
    ChainGrowth, GroupedChainGrowth, OrganPipe, PlacementAlgorithm, SimulatedAnnealing, Spectral,
};
use dwm_experiments::{Table, EXPERIMENT_SEED};
use dwm_graph::AccessGraph;
use dwm_trace::synth::{MarkovGen, TraceGenerator};

fn time_ms(f: impl FnOnce()) -> String {
    let start = Instant::now();
    f();
    format!("{:.1} ms", start.elapsed().as_secs_f64() * 1000.0)
}

fn main() {
    println!("Figure 7: placement runtime vs. item count (Markov workload, 20n accesses)\n");
    let mut t = Table::new([
        "n",
        "edges",
        "organ-pipe",
        "chain",
        "grouped-chain",
        "spectral",
        "annealing",
    ]);
    for n in [64usize, 256, 1024, 4096] {
        let trace = MarkovGen::new(n, (n / 8).max(2), EXPERIMENT_SEED)
            .generate(20 * n)
            .normalize();
        let graph = AccessGraph::from_trace(&trace);
        t.row([
            n.to_string(),
            graph.num_edges().to_string(),
            time_ms(|| {
                let _ = OrganPipe.place(&graph);
            }),
            time_ms(|| {
                let _ = ChainGrowth.place(&graph);
            }),
            time_ms(|| {
                let _ = GroupedChainGrowth.place(&graph);
            }),
            time_ms(|| {
                let _ = Spectral::default().place(&graph);
            }),
            time_ms(|| {
                let _ = SimulatedAnnealing::new(EXPERIMENT_SEED).place(&graph);
            }),
        ]);
    }
    t.print();
}
