//! Placement-as-a-service: the `dwm-serve` daemon.
//!
//! Everything before this crate was batch: one process, one workload,
//! one placement, exit. This crate turns the solver core into a
//! long-running, concurrent service — the ROADMAP's "serves heavy
//! traffic" step — without giving up the workspace's determinism
//! invariant:
//!
//! * [`server`] — the daemon. A [`dwm_foundation::net`] bounded-queue
//!   TCP server speaking newline-less HTTP/1.1-style framing with six
//!   request kinds: `solve`, `evaluate`, `simulate`, `stats`,
//!   `health`, and a Prometheus-format `metrics` scrape (see
//!   [`protocol`]).
//! * [`engine`] — request handling. Workloads are canonicalized to
//!   their access graph and hashed with
//!   [`fn@dwm_graph::fingerprint`]; a sharded LRU [`cache`] serves
//!   repeated workloads without re-running the solver, and a batch of
//!   cache misses inside one request fans out over the
//!   [`dwm_foundation::par`] pool.
//! * [`load`] — the loopback load harness behind the `serve_load`
//!   binary: closed-loop clients, a seeded workload mix, latency
//!   percentiles from [`dwm_foundation::bench::Histogram`], and a
//!   cross-client determinism check on every response body.
//! * [`session`] — streaming placement sessions: per-tenant state that
//!   ingests an access stream in chunks, maintains the access graph
//!   incrementally ([`dwm_graph::DeltaGraph`]), detects phase changes
//!   ([`dwm_trace::analysis::PhaseDetector`]), and re-places on
//!   confirmed drift when the projected saving beats the migration
//!   bill ([`dwm_core::online::OnlinePlacer::decide`]).
//!
//! # Determinism across the wire
//!
//! Response *bodies* are a pure function of the request: same request,
//! same bytes, at any `DWM_THREADS`, on any worker, hit or miss
//! (modulo the explicit `cache` field, which reports hit/miss truth-
//! fully and is therefore identical for identical request *sequences*).
//! Per-request wall-clock timing is reported out-of-band in the
//! `x-dwm-elapsed-us` response header so it can never perturb body
//! bytes — and all metrics ([`dwm_foundation::obs`]) live in `/stats`,
//! `GET /metrics`, and headers, never in other response bodies.
//! `tests/serve.rs` pins all of this over a real socket.

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod engine;
pub mod load;
pub mod protocol;
pub mod server;
pub mod session;
pub mod signal;

pub use cache::{CacheStats, SolveCache};
pub use client::ClientConn;
pub use cluster::Cluster;
pub use engine::{Engine, EngineConfig};
pub use load::{LoadConfig, LoadReport};
pub use server::{start, ServeConfig, ServeHandle};
pub use session::{IngestReport, SessionConfig, SessionState, SessionTable};
