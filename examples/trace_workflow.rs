//! Trace files as the interchange format: record, save, reload, place.
//!
//! Demonstrates the workflow a compiler or pin-tool integration would
//! use — dump an access trace to the line-oriented text format, load
//! it back later, and compute a placement for it.
//!
//! ```text
//! cargo run --release --example trace_workflow
//! ```

use dwm_placement::prelude::*;
use dwm_placement::trace::io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record a trace (here: the BFS kernel stands in for instrumented
    // application code).
    let recorded = Kernel::Bfs {
        nodes: 48,
        degree: 3,
        seed: 99,
    }
    .trace();

    // Persist it in the text format (one `r <id>` / `w <id>` per line).
    let path = std::env::temp_dir().join("bfs.trace");
    io::save_text(&recorded, &path)?;
    println!(
        "saved {} accesses to {} ({} bytes)",
        recorded.len(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // ... later, in the placement tool ...
    let loaded = io::load_text(&path)?;
    assert_eq!(loaded, recorded);
    println!("reloaded: {}", loaded.stats());

    let graph = AccessGraph::from_trace(&loaded);
    let placement = Hybrid::default().place(&graph);
    let model = SinglePortCost::new();
    let naive = model
        .trace_cost(&Placement::identity(graph.num_items()), &loaded)
        .stats
        .shifts;
    let tuned = model.trace_cost(&placement, &loaded).stats.shifts;
    println!("placement: {naive} → {tuned} shifts");

    // The tape order, ready to hand to an allocator.
    println!(
        "first 10 tape slots: {:?}",
        &placement.order()[..10.min(placement.num_items())]
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
