//! Experiment V2: profile→synthesis fidelity across replay scale.
//!
//! `dwm trace profile` distills a workload into a compact fingerprint
//! and `ProfiledGen` replays it at arbitrary scale (DESIGN.md §S21).
//! This sweep quantifies how faithful those replays are: for every
//! corpus family it re-profiles synthetic replays at 1×, 10×, and
//! 100× the source length — streamed through `ProfileBuilder`, never
//! materialized — and reports each fidelity gap next to its default
//! tolerance:
//!
//! * `mix`  — |write-ratio Δ|              (tolerance 0.05)
//! * `self` — |self-transition-rate Δ|     (tolerance 0.05)
//! * `tail` — cold/tail mass Δ             (tolerance 0.10)
//! * `reuse`— max log₂ reuse-quantile Δ    (tolerance 2 buckets)
//!
//! The binary asserts `within_default_tolerance` on every cell, so it
//! doubles as a slow-path validation of the contract that
//! `tests/trace_profiles.rs` pins in CI at 1× and 10×. Pass `--scale`
//! to push the largest point further (e.g. `--scale 10000` takes a
//! 10⁴-access profile to 10⁸ accesses in `O(items)` memory).

use dwm_experiments::Table;
use dwm_trace::prelude::*;
use dwm_trace::synth::TraceGenerator;

fn corpus() -> Vec<(&'static str, Trace)> {
    vec![
        ("fft", Kernel::Fft { n: 256, block: 4 }.trace().normalize()),
        (
            "bfs",
            Kernel::Bfs {
                nodes: 512,
                degree: 8,
                seed: 7,
            }
            .trace()
            .normalize(),
        ),
        (
            "zipf",
            ZipfGen::new(256, 0xA11CE).generate(40_000).normalize(),
        ),
        (
            "markov",
            MarkovGen::new(64, 4, 0xBEEC).generate(40_000).normalize(),
        ),
        (
            "phased",
            PhasedGen::new(128, 4, 11).generate(40_000).normalize(),
        ),
        (
            "uniform-rw",
            UniformGen {
                items: 128,
                write_ratio: 0.3,
                seed: 4,
            }
            .generate(40_000)
            .normalize(),
        ),
    ]
}

fn extra_scale() -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--scale" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

fn main() {
    println!(
        "Experiment V2: profile->synth fidelity per corpus family \
         (gaps vs default tolerances mix<=0.05 self<=0.05 tail<=0.10 reuse<=2)\n"
    );
    let mut scales: Vec<u64> = vec![1, 10, 100];
    if let Some(s) = extra_scale() {
        scales.push(s);
    }
    let mut t = Table::new([
        "family", "scale", "accesses", "mix", "self", "tail", "reuse", "ok",
    ]);
    let mut worst = Fidelity {
        kernel_mix_gap: 0.0,
        self_transition_gap: 0.0,
        tail_mass_gap: 0.0,
        reuse_quantile_gap: 0,
    };
    for (name, trace) in corpus() {
        let profile = TraceProfile::from_trace(&trace);
        for &scale in &scales {
            let len = trace.len() as u64 * scale;
            let gen = ProfiledGen::new(profile.clone(), 0x5EED ^ scale);
            let mut builder = ProfileBuilder::new(name, 4096);
            for access in gen.stream(len) {
                builder.push(access);
            }
            let f = profile.fidelity(&builder.finish());
            assert!(
                f.within_default_tolerance(),
                "{name} at {scale}x drifted: {f:?}"
            );
            worst = Fidelity {
                kernel_mix_gap: worst.kernel_mix_gap.max(f.kernel_mix_gap),
                self_transition_gap: worst.self_transition_gap.max(f.self_transition_gap),
                tail_mass_gap: worst.tail_mass_gap.max(f.tail_mass_gap),
                reuse_quantile_gap: worst.reuse_quantile_gap.max(f.reuse_quantile_gap),
            };
            t.row([
                name.to_string(),
                format!("{scale}x"),
                len.to_string(),
                format!("{:.4}", f.kernel_mix_gap),
                format!("{:.4}", f.self_transition_gap),
                format!("{:.4}", f.tail_mass_gap),
                f.reuse_quantile_gap.to_string(),
                "yes".to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nevery cell within tolerance; worst gaps: mix {:.4}, self {:.4}, \
         tail {:.4}, reuse {}",
        worst.kernel_mix_gap,
        worst.self_transition_gap,
        worst.tail_mass_gap,
        worst.reuse_quantile_gap
    );
}
