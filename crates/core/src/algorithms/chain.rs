use std::collections::VecDeque;

use dwm_graph::AccessGraph;

use crate::algorithms::frequency::OrganPipe;
use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Adjacency-driven greedy chain merging.
///
/// The core of the proposed placement family: process access-graph
/// edges in descending weight order; an edge joins its two endpoints'
/// chains end-to-end whenever both endpoints are chain *ends* of
/// different chains. The result is a set of chains in which heavily
/// co-accessed items sit next to each other — exactly what a
/// single-port tape wants, since consecutive accesses then cost one
/// shift. Remaining chains are concatenated in descending total-weight
/// order.
///
/// This is the greedy-matching construction for weighted Hamiltonian
/// path / minimum linear arrangement, running in `O(E log E)` with
/// union-find-style chain bookkeeping.
///
/// # Example
///
/// ```
/// use dwm_graph::AccessGraph;
/// use dwm_core::{ChainGrowth, PlacementAlgorithm};
///
/// let mut g = AccessGraph::with_items(3);
/// g.add_weight(0, 2, 10); // hot pair
/// g.add_weight(0, 1, 1);
/// let p = ChainGrowth::default().place(&g);
/// // Hot pair ends up adjacent on the tape.
/// let d = (p.offset_of(0) as i64 - p.offset_of(2) as i64).abs();
/// assert_eq!(d, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainGrowth;

/// The chains produced by greedy edge merging, before final ordering.
#[derive(Debug, Clone)]
pub(crate) struct Chains {
    /// Each chain as an ordered item list.
    pub chains: Vec<VecDeque<usize>>,
}

pub(crate) fn grow_chains(graph: &AccessGraph) -> Chains {
    const NONE: usize = usize::MAX;
    let n = graph.num_items();
    assert!(n <= 1 << 32, "item ids must fit the packed u32 edge key");

    // Heaviest first; ties in (u, v) lexicographic order for
    // reproducibility. Each edge packs into one u128 — `!weight` in
    // the high bits (so ascending order means descending weight),
    // then `u`, then `v` — turning every comparison into a single
    // branchless integer compare instead of a three-field tuple walk.
    let mut edges: Vec<u128> = graph
        .edges()
        .map(|e| (u128::from(!e.weight) << 64) | (e.u as u128) << 32 | e.v as u128)
        .collect();
    edges.sort_unstable();

    // Chains live as undirected paths over per-item neighbour slots
    // (slot 0 fills first), with a union-find over membership — no
    // chain is materialised or relabelled until the final collection,
    // so merging is near-O(1) instead of O(chain length).
    let mut link = vec![[NONE; 2]; n];
    let mut parent: Vec<usize> = (0..n).collect();
    // Per-root [front, back] traversal ends; a singleton is its own
    // front and back.
    let mut ends: Vec<[usize; 2]> = (0..n).map(|v| [v, v]).collect();
    // The historical Vec-of-chains implementation re-pushed a merged
    // chain at a fresh index on every join, so chains came out ordered
    // by the index of their *last* merge; `last_merge` reproduces that
    // ordering (0 = never merged).
    let mut last_merge = vec![0usize; n];
    let mut merges = 0usize;

    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }

    for e in edges {
        let (u, v) = ((e >> 32) as u32 as usize, e as u32 as usize);
        // An item with both slots filled is interior to its chain.
        if link[u][1] != NONE || link[v][1] != NONE {
            continue;
        }
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru == rv {
            continue; // already in the same chain
        }
        // The historical merge oriented u's chain to end with u and
        // v's chain to start with v, so the joined path runs from u's
        // chain's other end to v's chain's other end.
        let front = if ends[ru][0] == u {
            ends[ru][1]
        } else {
            ends[ru][0]
        };
        let back = if ends[rv][0] == v {
            ends[rv][1]
        } else {
            ends[rv][0]
        };
        let su = usize::from(link[u][0] != NONE);
        link[u][su] = v;
        let sv = usize::from(link[v][0] != NONE);
        link[v][sv] = u;
        parent[ru] = rv;
        ends[rv] = [front, back];
        merges += 1;
        last_merge[rv] = merges;
    }

    // Collect merged chains by last-merge order, then leftover
    // singletons by item index — the order the historical
    // implementation produced.
    let mut roots: Vec<(usize, usize)> = (0..n)
        .filter(|&r| parent[r] == r && last_merge[r] > 0)
        .map(|r| (last_merge[r], r))
        .collect();
    roots.sort_unstable();
    let mut out: Vec<VecDeque<usize>> = Vec::with_capacity(roots.len());
    for (_, r) in roots {
        let [front, back] = ends[r];
        let mut chain = VecDeque::new();
        let (mut prev, mut cur) = (NONE, front);
        while cur != NONE {
            chain.push_back(cur);
            let next = if link[cur][0] == prev {
                link[cur][1]
            } else {
                link[cur][0]
            };
            prev = cur;
            cur = next;
        }
        debug_assert_eq!(*chain.back().expect("nonempty"), back);
        out.push(chain);
    }
    for (v, l) in link.iter().enumerate() {
        if l[0] == NONE {
            out.push(VecDeque::from([v]));
        }
    }
    Chains { chains: out }
}

/// Total access frequency of a chain (for ordering).
fn chain_weight(graph: &AccessGraph, chain: &VecDeque<usize>) -> u64 {
    chain.iter().map(|&v| graph.frequency(v)).sum()
}

impl PlacementAlgorithm for ChainGrowth {
    fn name(&self) -> String {
        "chain".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut chains = grow_chains(graph).chains;
        // Concatenate heaviest-first (hot chains near the port end).
        // Cached keys: `chain_weight` is O(chain length), too heavy to
        // recompute on every comparison.
        chains.sort_by_cached_key(|c| {
            (
                std::cmp::Reverse(chain_weight(graph, c)),
                c.front().copied().unwrap_or(0),
            )
        });
        let order: Vec<usize> = chains.into_iter().flatten().collect();
        Placement::from_order(order)
    }
}

/// The full proposed algorithm: chain growth followed by
/// frequency-anchored (organ-pipe) ordering *of the chains*.
///
/// Plain [`ChainGrowth`] concatenates chains heaviest-first, which
/// leaves a hot chain at one end of the tape far from cold chains it
/// still occasionally talks to. `GroupedChainGrowth` instead arranges
/// whole chains in an organ-pipe profile — the hottest chain in the
/// middle, cooler chains alternating outward — and then greedily
/// orients each chain to maximize the junction weight with its already-
/// placed neighbour. This combines the adjacency win (hot pairs
/// adjacent) with the frequency win (hot *groups* central).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupedChainGrowth;

impl PlacementAlgorithm for GroupedChainGrowth {
    fn name(&self) -> String {
        "grouped-chain".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut chains = grow_chains(graph).chains;
        // Sort chains by descending weight, then arrange in organ-pipe
        // profile at chain granularity (cached keys: the weight sum is
        // O(chain length)).
        chains.sort_by_cached_key(|c| {
            (
                std::cmp::Reverse(chain_weight(graph, c)),
                c.front().copied().unwrap_or(0),
            )
        });
        let piped = OrganPipe::pipe_order(chains);

        // Concatenate, flipping each chain if that strengthens the
        // junction with the previously placed item.
        let mut order: Vec<usize> = Vec::with_capacity(graph.num_items());
        for chain in piped {
            if let Some(&prev) = order.last() {
                let front = *chain.front().expect("chains are nonempty");
                let back = *chain.back().expect("chains are nonempty");
                let keep = graph.weight(prev, front);
                let flip = graph.weight(prev, back);
                if flip > keep {
                    order.extend(chain.into_iter().rev());
                    continue;
                }
            }
            order.extend(chain);
        }
        Placement::from_order(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, two_cluster_graph};

    #[test]
    fn chains_keep_heavy_edges_adjacent() {
        let g = two_cluster_graph();
        for alg in [&ChainGrowth as &dyn PlacementAlgorithm, &GroupedChainGrowth] {
            let p = alg.place(&g);
            // The lone inter-cluster edge (2,3) is light; the heavy
            // intra-cluster structure must dominate: each cluster's
            // items occupy three consecutive offsets.
            let c1: Vec<usize> = (0..3).map(|i| p.offset_of(i)).collect();
            let c2: Vec<usize> = (3..6).map(|i| p.offset_of(i)).collect();
            let spread = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap();
            assert_eq!(spread(&c1), 2, "{} scattered cluster 1", alg.name());
            assert_eq!(spread(&c2), 2, "{} scattered cluster 2", alg.name());
        }
    }

    #[test]
    fn grow_chains_covers_every_item_once() {
        let g = kernel_graph();
        let chains = grow_chains(&g).chains;
        let mut seen = vec![false; g.num_items()];
        for c in &chains {
            for &v in c {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chain_growth_beats_naive_on_kernel_graph() {
        let g = kernel_graph();
        let naive = g.arrangement_cost(Placement::identity(g.num_items()).offsets());
        let chain = g.arrangement_cost(ChainGrowth.place(&g).offsets());
        let grouped = g.arrangement_cost(GroupedChainGrowth.place(&g).offsets());
        assert!(chain <= naive);
        assert!(grouped <= naive);
    }

    #[test]
    fn edgeless_graph_yields_identity_like_order() {
        let g = AccessGraph::with_items(4);
        let p = ChainGrowth.place(&g);
        assert_eq!(p.num_items(), 4);
        let p = GroupedChainGrowth.place(&g);
        assert_eq!(p.num_items(), 4);
    }

    #[test]
    fn single_heavy_edge_is_adjacent() {
        let mut g = AccessGraph::with_items(8);
        g.add_weight(1, 6, 100);
        g.add_weight(0, 7, 1);
        let p = GroupedChainGrowth.place(&g);
        assert_eq!(
            (p.offset_of(1) as i64 - p.offset_of(6) as i64).abs(),
            1,
            "heavy pair must be adjacent"
        );
    }

    #[test]
    fn deterministic_output() {
        let g = kernel_graph();
        assert_eq!(ChainGrowth.place(&g), ChainGrowth.place(&g));
        assert_eq!(GroupedChainGrowth.place(&g), GroupedChainGrowth.place(&g));
    }
}
