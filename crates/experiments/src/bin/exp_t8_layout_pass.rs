//! Experiment T8 (extension): the compiler data-layout pass.
//!
//! Four affine programs written in the loop-nest IR are run through
//! `assign_layout`: the pass executes the program, builds its access
//! graph, and places every array block. This reproduces the intended
//! deployment of the paper's technique — inside a compiler that knows
//! the loop nest — rather than post-hoc trace optimization.

use dwm_compile::ir::{AffineExpr, Program};
use dwm_compile::layout::assign_layout;
use dwm_core::Hybrid;
use dwm_experiments::Table;

fn matvec_banded() -> (&'static str, Program) {
    let mut p = Program::new();
    let d = p.array("diag", 24, 2);
    let u = p.array("upper", 24, 2);
    let x = p.array("x", 24, 2);
    let y = p.array("y", 24, 2);
    let i = p.loop_var("i");
    p.for_loop(i, 0, 24, |b| {
        b.read(y, AffineExpr::var(i));
        b.read(d, AffineExpr::var(i));
        b.read(x, AffineExpr::var(i));
        b.read(u, AffineExpr::var(i));
        b.read(x, AffineExpr::var(i).offset(7).modulo(24));
        b.write(y, AffineExpr::var(i));
    });
    ("banded-matvec", p)
}

fn matmul() -> (&'static str, Program) {
    let n = 4i64;
    let mut p = Program::new();
    let a = p.array("A", 16, 1);
    let b_arr = p.array("B", 16, 1);
    let c = p.array("C", 16, 1);
    let i = p.loop_var("i");
    let j = p.loop_var("j");
    let k = p.loop_var("k");
    p.for_loop(i, 0, n, |bi| {
        bi.for_loop(j, 0, n, |bj| {
            bj.for_loop(k, 0, n, |bk| {
                bk.read(a, AffineExpr::var(i).scale(n).plus_var(k, 1));
                bk.read(b_arr, AffineExpr::var(k).scale(n).plus_var(j, 1));
                bk.write(c, AffineExpr::var(i).scale(n).plus_var(j, 1));
            });
        });
    });
    ("matmul-4", p)
}

fn triangular_solve() -> (&'static str, Program) {
    let n = 12i64;
    let mut p = Program::new();
    let l = p.array("L", (n * n) as usize, 4);
    let x = p.array("x", n as usize, 1);
    let b_arr = p.array("b", n as usize, 1);
    let i = p.loop_var("i");
    let j = p.loop_var("j");
    p.for_loop(i, 0, n, |bi| {
        bi.read(b_arr, AffineExpr::var(i));
        bi.for_loop_expr(j, AffineExpr::constant(0), AffineExpr::var(i), |bj| {
            bj.read(l, AffineExpr::var(i).scale(n).plus_var(j, 1));
            bj.read(x, AffineExpr::var(j));
        });
        bi.read(l, AffineExpr::var(i).scale(n).plus_var(i, 1));
        bi.write(x, AffineExpr::var(i));
    });
    ("trisolve-12", p)
}

fn transpose() -> (&'static str, Program) {
    let n = 8i64;
    let mut p = Program::new();
    let a = p.array("A", (n * n) as usize, 2);
    let t = p.array("T", (n * n) as usize, 2);
    let i = p.loop_var("i");
    let j = p.loop_var("j");
    p.for_loop(i, 0, n, |bi| {
        bi.for_loop(j, 0, n, |bj| {
            bj.read(a, AffineExpr::var(i).scale(n).plus_var(j, 1));
            bj.write(t, AffineExpr::var(j).scale(n).plus_var(i, 1));
        });
    });
    ("transpose-8", p)
}

fn main() {
    println!("Table 8: compiler data-layout pass on affine programs\n");
    let mut table = Table::new([
        "program",
        "arrays",
        "blocks",
        "accesses",
        "naive",
        "tuned",
        "reduction",
    ]);
    for (name, program) in [matvec_banded(), matmul(), triangular_solve(), transpose()] {
        let layout = assign_layout(&program, &Hybrid::default()).expect("programs are well-formed");
        table.row([
            name.to_string(),
            program.arrays().len().to_string(),
            layout.placement.num_items().to_string(),
            layout.trace.len().to_string(),
            layout.naive_shifts.to_string(),
            layout.tuned_shifts.to_string(),
            format!("{:.1}%", layout.reduction() * 100.0),
        ]);
    }
    table.print();
}
