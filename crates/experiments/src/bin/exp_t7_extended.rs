//! Experiment T7 (extension): the five extended kernels.
//!
//! Validates that the headline T3 result generalizes beyond the base
//! suite: image processing (conv2d), clustering (kmeans), shortest
//! paths (dijkstra), sparse algebra (spmv), and text search
//! (string-match), all on the single-port DBC with the hybrid pipeline.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{Hybrid, OrderOfAppearance, OrganPipe, PlacementAlgorithm};
use dwm_experiments::{percent_reduction, Table};
use dwm_graph::AccessGraph;
use dwm_trace::kernels::Kernel;

fn main() {
    println!("Table 7: extended kernels, shifts on a single-port DBC\n");
    let mut t = Table::new([
        "benchmark",
        "items",
        "accesses",
        "naive",
        "organ-pipe",
        "hybrid",
        "reduction",
    ]);
    let model = SinglePortCost::new();
    for kernel in Kernel::extended_suite() {
        let trace = kernel.trace();
        let graph = AccessGraph::from_trace(&trace);
        let naive = model
            .trace_cost(&OrderOfAppearance.place(&graph), &trace)
            .stats
            .shifts;
        let pipe = model
            .trace_cost(&OrganPipe.place(&graph), &trace)
            .stats
            .shifts;
        let hybrid = model
            .trace_cost(&Hybrid::default().place(&graph), &trace)
            .stats
            .shifts;
        t.row([
            kernel.name().to_string(),
            graph.num_items().to_string(),
            trace.len().to_string(),
            naive.to_string(),
            pipe.to_string(),
            hybrid.to_string(),
            percent_reduction(naive, hybrid),
        ]);
    }
    t.print();
}
