use dwm_trace::ItemId;

use crate::error::PlacementError;

/// A bijection between `n` data items and `n` word offsets on a tape.
///
/// `Placement` is the output of every algorithm in this crate and the
/// input to every cost model. Construction validates the bijection
/// property, so holders can index without further checks.
///
/// Offsets and items are both dense `0..n`; items map to
/// [`ItemId`](dwm_trace::ItemId)s of a normalized trace.
///
/// # Example
///
/// ```
/// use dwm_core::Placement;
///
/// // Item 0 → offset 2, item 1 → offset 0, item 2 → offset 1.
/// let p = Placement::from_offsets(vec![2, 0, 1])?;
/// assert_eq!(p.offset_of(0), 2);
/// assert_eq!(p.item_at(2), 0);
/// let same = Placement::from_order([1, 2, 0]);
/// assert_eq!(p, same);
/// # Ok::<(), dwm_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Placement {
    /// `offsets[item] = offset`.
    offsets: Vec<usize>,
    /// `items[offset] = item` (inverse of `offsets`).
    items: Vec<usize>,
}

dwm_foundation::json_struct!(Placement { offsets, items });

impl Placement {
    /// The identity placement: item `i` at offset `i`.
    ///
    /// With traces normalized in first-appearance order, this *is* the
    /// naive order-of-appearance placement the paper's baselines use.
    pub fn identity(n: usize) -> Self {
        Placement {
            offsets: (0..n).collect(),
            items: (0..n).collect(),
        }
    }

    /// Builds a placement from an `offsets[item] = offset` vector.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NotAPermutation`] if `offsets` is not
    /// a permutation of `0..offsets.len()`.
    pub fn from_offsets(offsets: Vec<usize>) -> Result<Self, PlacementError> {
        let n = offsets.len();
        let mut items = vec![usize::MAX; n];
        for (item, &off) in offsets.iter().enumerate() {
            if off >= n || items[off] != usize::MAX {
                return Err(PlacementError::NotAPermutation {
                    offset: off,
                    items: n,
                });
            }
            items[off] = item;
        }
        Ok(Placement { offsets, items })
    }

    /// Builds a placement from the item order along the tape:
    /// `order[k]` is the item stored at offset `k`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`;
    /// algorithms construct orders internally and rely on this check as
    /// a correctness assertion. Use [`Placement::from_offsets`] for
    /// fallible construction from external data.
    pub fn from_order<I: IntoIterator<Item = usize>>(order: I) -> Self {
        let items: Vec<usize> = order.into_iter().collect();
        let n = items.len();
        let mut offsets = vec![usize::MAX; n];
        for (off, &item) in items.iter().enumerate() {
            assert!(
                item < n && offsets[item] == usize::MAX,
                "order is not a permutation: item {item} at offset {off}"
            );
            offsets[item] = off;
        }
        Placement { offsets, items }
    }

    /// Number of items (= number of offsets).
    pub fn num_items(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Offset assigned to `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item >= num_items()`.
    pub fn offset_of(&self, item: usize) -> usize {
        self.offsets[item]
    }

    /// Offset assigned to a trace item id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn offset_of_id(&self, item: ItemId) -> usize {
        self.offsets[item.index()]
    }

    /// Item stored at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= num_items()`.
    pub fn item_at(&self, offset: usize) -> usize {
        self.items[offset]
    }

    /// The `offsets[item] = offset` view.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The `items[offset] = item` view (tape order).
    pub fn order(&self) -> &[usize] {
        &self.items
    }

    /// Swaps the offsets of two items, preserving the bijection.
    ///
    /// # Panics
    ///
    /// Panics if either item is out of range.
    pub fn swap_items(&mut self, a: usize, b: usize) {
        let (oa, ob) = (self.offsets[a], self.offsets[b]);
        self.offsets.swap(a, b);
        self.items.swap(oa, ob);
    }

    /// Reverses the tape order in place (cost-neutral for symmetric
    /// models; used by tests and canonicalization).
    pub fn mirror(&mut self) {
        self.items.reverse();
        for (off, &item) in self.items.iter().enumerate() {
            self.offsets[item] = off;
        }
    }

    /// Iterates `(item, offset)` pairs in item order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.offsets.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_items_to_themselves() {
        let p = Placement::identity(5);
        for i in 0..5 {
            assert_eq!(p.offset_of(i), i);
            assert_eq!(p.item_at(i), i);
        }
        assert_eq!(p.num_items(), 5);
        assert!(!p.is_empty());
        assert!(Placement::identity(0).is_empty());
    }

    #[test]
    fn from_offsets_validates_duplicates() {
        let err = Placement::from_offsets(vec![0, 1, 1]).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::NotAPermutation { offset: 1, .. }
        ));
    }

    #[test]
    fn from_offsets_validates_range() {
        let err = Placement::from_offsets(vec![0, 3, 1]).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::NotAPermutation { offset: 3, .. }
        ));
    }

    #[test]
    fn from_order_is_inverse_of_from_offsets() {
        let p = Placement::from_order([2, 0, 1]);
        assert_eq!(p.offsets(), &[1, 2, 0]);
        assert_eq!(p.order(), &[2, 0, 1]);
        assert_eq!(p, Placement::from_offsets(vec![1, 2, 0]).unwrap());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_order_rejects_duplicates() {
        let _ = Placement::from_order([0, 0, 1]);
    }

    #[test]
    fn swap_items_keeps_bijection() {
        let mut p = Placement::identity(4);
        p.swap_items(0, 3);
        assert_eq!(p.offset_of(0), 3);
        assert_eq!(p.offset_of(3), 0);
        assert_eq!(p.item_at(0), 3);
        assert_eq!(p.item_at(3), 0);
        // Inverse consistency for all items.
        for i in 0..4 {
            assert_eq!(p.item_at(p.offset_of(i)), i);
        }
    }

    #[test]
    fn mirror_reverses_order() {
        let mut p = Placement::from_order([2, 0, 1]);
        p.mirror();
        assert_eq!(p.order(), &[1, 0, 2]);
        for i in 0..3 {
            assert_eq!(p.item_at(p.offset_of(i)), i);
        }
    }

    #[test]
    fn json_round_trip() {
        let p = Placement::from_order([3, 1, 0, 2]);
        let json = dwm_foundation::json::to_string(&p);
        let back: Placement = dwm_foundation::json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
