use dwm_trace::Trace;

use crate::cost::CostModel;
use crate::placement::Placement;

/// Trace-aware refinement against an arbitrary cost model.
///
/// The graph-based [`LocalSearch`](crate::LocalSearch) optimizes the
/// arrangement cost, which equals the *single-port* shift count — but
/// multi-port and typed-port tapes have different geometry, and a
/// placement tuned for `|Δoffset|` can even lose to naive there
/// (experiment F5 shows this at 8 ports). `TraceRefiner` closes that
/// gap: it hill-climbs swap moves evaluated by *replaying the trace
/// under the actual cost model*. Each probe costs a full replay, so a
/// pass is `O(n · window · T)` — fine for DBC-sized item counts, and
/// the candidate placement it starts from is already good.
///
/// Never increases the model's cost (first-improvement hill climbing).
///
/// # Example
///
/// ```
/// use dwm_trace::Trace;
/// use dwm_graph::AccessGraph;
/// use dwm_core::{Hybrid, PlacementAlgorithm};
/// use dwm_core::cost::{CostModel, MultiPortCost};
/// use dwm_core::algorithms::TraceRefiner;
///
/// let trace = Trace::from_ids([0u32, 7, 1, 6, 2, 5, 3, 4, 0, 7]);
/// let graph = AccessGraph::from_trace(&trace);
/// let mut placement = Hybrid::default().place(&graph);
/// let model = MultiPortCost::evenly_spaced(2, 8);
/// let before = model.trace_cost(&placement, &trace).stats.shifts;
/// TraceRefiner::default().refine(&model, &trace, &mut placement);
/// let after = model.trace_cost(&placement, &trace).stats.shifts;
/// assert!(after <= before);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRefiner {
    /// Maximum full passes over all positions.
    pub max_passes: usize,
    /// Maximum distance between swapped positions per probe.
    pub window: usize,
}

impl Default for TraceRefiner {
    fn default() -> Self {
        TraceRefiner {
            max_passes: 6,
            window: 6,
        }
    }
}

impl TraceRefiner {
    /// A refiner with the given pass budget and window.
    pub fn new(max_passes: usize, window: usize) -> Self {
        TraceRefiner {
            max_passes,
            window: window.max(1),
        }
    }

    /// Refines `placement` in place against `model` on `trace`;
    /// returns the cost reduction achieved (in the model's shifts).
    pub fn refine(&self, model: &dyn CostModel, trace: &Trace, placement: &mut Placement) -> u64 {
        let n = placement.num_items();
        if n < 2 || trace.is_empty() {
            return 0;
        }
        let mut current = model.trace_cost(placement, trace).stats.shifts;
        let start = current;
        for _ in 0..self.max_passes {
            let mut improved = false;
            for k in 0..n - 1 {
                for j in (k + 1)..(k + 1 + self.window).min(n) {
                    let (a, b) = (placement.item_at(k), placement.item_at(j));
                    placement.swap_items(a, b);
                    let cost = model.trace_cost(placement, trace).stats.shifts;
                    if cost < current {
                        current = cost;
                        improved = true;
                    } else {
                        placement.swap_items(a, b); // revert
                    }
                }
            }
            if !improved {
                break;
            }
        }
        start - current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Hybrid, PlacementAlgorithm, RandomPlacement};
    use crate::cost::{MultiPortCost, SinglePortCost, TypedPortCost};
    use dwm_device::TypedPortLayout;
    use dwm_graph::AccessGraph;
    use dwm_trace::synth::{TraceGenerator, ZipfGen};

    #[test]
    fn never_increases_cost_under_any_model() {
        let trace = ZipfGen::new(24, 9).generate(800).normalize();
        let graph = AccessGraph::from_trace(&trace);
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(SinglePortCost::new()),
            Box::new(MultiPortCost::evenly_spaced(4, 24)),
            Box::new(TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 1, 24))),
        ];
        for model in &models {
            let mut p = RandomPlacement::new(4).place(&graph);
            let before = model.trace_cost(&p, &trace).stats.shifts;
            let saved = TraceRefiner::default().refine(model.as_ref(), &trace, &mut p);
            let after = model.trace_cost(&p, &trace).stats.shifts;
            assert!(after <= before, "{} got worse", model.name());
            assert_eq!(before - after, saved, "{} saving mismatch", model.name());
        }
    }

    #[test]
    fn repairs_multi_port_mismatch() {
        // A single-port-optimized placement refined for an 8-port tape
        // must match or beat its unrefined self under that tape.
        let trace = ZipfGen::new(32, 5).generate(2000).normalize();
        let graph = AccessGraph::from_trace(&trace);
        let model = MultiPortCost::evenly_spaced(8, 32);
        let base = Hybrid::default().place(&graph);
        let base_cost = model.trace_cost(&base, &trace).stats.shifts;
        let mut refined = base.clone();
        TraceRefiner::default().refine(&model, &trace, &mut refined);
        let refined_cost = model.trace_cost(&refined, &trace).stats.shifts;
        assert!(refined_cost <= base_cost);
    }

    #[test]
    fn result_is_a_permutation() {
        let trace = ZipfGen::new(16, 2).generate(300).normalize();
        let graph = AccessGraph::from_trace(&trace);
        let mut p = Hybrid::default().place(&graph);
        TraceRefiner::new(2, 4).refine(&SinglePortCost::new(), &trace, &mut p);
        let mut seen = [false; 16];
        for off in 0..16 {
            assert!(!seen[p.item_at(off)]);
            seen[p.item_at(off)] = true;
        }
    }

    #[test]
    fn trivial_inputs_are_no_ops() {
        let mut p = Placement::identity(1);
        let saved = TraceRefiner::default().refine(
            &SinglePortCost::new(),
            &dwm_trace::Trace::from_ids([0u32]),
            &mut p,
        );
        assert_eq!(saved, 0);
        let mut p = Placement::identity(4);
        let saved = TraceRefiner::default().refine(
            &SinglePortCost::new(),
            &dwm_trace::Trace::new(),
            &mut p,
        );
        assert_eq!(saved, 0);
    }
}
