use dwm_foundation::json::{field, FromJson, JsonError, Object, ToJson, Value};

/// Victim-selection policy for misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently used way, regardless of where the tape
    /// currently sits (the shift-oblivious baseline).
    Lru,
    /// Evict the least recently used way among the `window + 1` ways
    /// nearest the tape's current position. `window = ways` degenerates
    /// to plain LRU; `window = 0` always evicts the way under the port.
    /// Trades a little recency quality for much shorter victim shifts.
    ShiftAwareLru {
        /// How far from the current position a victim may be.
        window: usize,
    },
}

/// What to do with a block on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionPolicy {
    /// Leave blocks where they are.
    None,
    /// Swap the hit block one way closer to the port (way 0), skewing
    /// hot blocks toward cheap positions over time — the run-time
    /// analogue of organ-pipe placement. Costs
    /// [`promotion_swap_shifts`](crate::CacheConfig::promotion_swap_shifts)
    /// extra shifts per swap.
    SwapTowardPort,
}

dwm_foundation::json_unit_enum!(PromotionPolicy {
    None,
    SwapTowardPort
});

// Externally tagged by hand (a data-carrying variant rules out
// `json_unit_enum!`): `"Lru"` | `{"ShiftAwareLru":{"window":N}}`.
impl ToJson for ReplacementPolicy {
    fn to_json(&self) -> Value {
        match *self {
            ReplacementPolicy::Lru => Value::Str("Lru".to_owned()),
            ReplacementPolicy::ShiftAwareLru { window } => {
                let mut fields = Object::new();
                fields.insert("window", window.to_json());
                let mut tagged = Object::new();
                tagged.insert("ShiftAwareLru", Value::Obj(fields));
                Value::Obj(tagged)
            }
        }
    }
}

impl FromJson for ReplacementPolicy {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some("Lru") = v.as_str() {
            return Ok(ReplacementPolicy::Lru);
        }
        let obj = v
            .as_object()
            .filter(|o| o.len() == 1)
            .ok_or_else(|| JsonError::expected("ReplacementPolicy variant", v))?;
        match obj.iter().next() {
            Some(("ShiftAwareLru", body)) => {
                let fields = body
                    .as_object()
                    .ok_or_else(|| JsonError::expected("ShiftAwareLru fields", body))?;
                Ok(ReplacementPolicy::ShiftAwareLru {
                    window: field(fields, "window")?,
                })
            }
            Some((tag, _)) => Err(JsonError::decode(format!(
                "unknown ReplacementPolicy variant {tag:?}"
            ))),
            None => unreachable!("len-1 object has an entry"),
        }
    }
}

impl ReplacementPolicy {
    /// Chooses the victim way.
    ///
    /// `last_used[w]` is the logical timestamp way `w` was last
    /// touched (`None` = invalid/empty way, preferred unconditionally);
    /// `position` is the way currently under the port.
    pub fn choose_victim(&self, last_used: &[Option<u64>], position: usize) -> usize {
        // Empty way first — filling never needs eviction.
        if let Some(w) = last_used.iter().position(|t| t.is_none()) {
            return w;
        }
        match *self {
            ReplacementPolicy::Lru => last_used
                .iter()
                .enumerate()
                .min_by_key(|&(w, t)| (t.expect("no empty ways here"), w))
                .map(|(w, _)| w)
                .expect("at least one way"),
            ReplacementPolicy::ShiftAwareLru { window } => last_used
                .iter()
                .enumerate()
                .filter(|&(w, _)| w.abs_diff(position) <= window)
                .min_by_key(|&(w, t)| (t.expect("no empty ways here"), w))
                .map(|(w, _)| w)
                .expect("window always contains the current position"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_way_is_always_preferred() {
        let last = [Some(5), None, Some(1)];
        assert_eq!(ReplacementPolicy::Lru.choose_victim(&last, 0), 1);
        assert_eq!(
            ReplacementPolicy::ShiftAwareLru { window: 0 }.choose_victim(&last, 2),
            1
        );
    }

    #[test]
    fn lru_picks_oldest() {
        let last = [Some(5), Some(2), Some(9)];
        assert_eq!(ReplacementPolicy::Lru.choose_victim(&last, 0), 1);
    }

    #[test]
    fn shift_aware_respects_window() {
        let last = [Some(1), Some(5), Some(9), Some(3)];
        // Position 2, window 1 → candidates ways 1..=3; oldest is way 3.
        assert_eq!(
            ReplacementPolicy::ShiftAwareLru { window: 1 }.choose_victim(&last, 2),
            3
        );
        // Window 0 → must evict the way under the port.
        assert_eq!(
            ReplacementPolicy::ShiftAwareLru { window: 0 }.choose_victim(&last, 2),
            2
        );
    }

    #[test]
    fn wide_window_degenerates_to_lru() {
        let last = [Some(7), Some(2), Some(4), Some(6)];
        let lru = ReplacementPolicy::Lru.choose_victim(&last, 3);
        let wide = ReplacementPolicy::ShiftAwareLru { window: 4 }.choose_victim(&last, 3);
        assert_eq!(lru, wide);
    }
}
