//! Experiment A1 (ablation): which parts of the hybrid pipeline earn
//! their keep?
//!
//! Per benchmark, the geometric-mean-normalized shifts of:
//!
//! * each constructive candidate alone;
//! * the portfolio (best candidate, no refinement);
//! * the full pipeline at local-search windows 1 / 4 / 12 (default).
//!
//! Expected: no single candidate wins everywhere (that is why the
//! portfolio exists), and widening the search window buys a few extra
//! points at modest cost.

use dwm_core::algorithms::{
    ChainGrowth, GreedyInsertion, GroupedChainGrowth, Hybrid, LocalSearch, OrganPipe,
    PlacementAlgorithm, Spectral,
};
use dwm_core::Placement;
use dwm_experiments::{workload_suite, Table};
use dwm_foundation::par;
use dwm_graph::AccessGraph;

fn main() {
    println!("Ablation A1: gmean shifts normalized to naive (lower is better)\n");
    let workloads = workload_suite();
    type Column = (String, Box<dyn Fn(&AccessGraph) -> u64 + Sync>);
    let mut columns: Vec<Column> = vec![
        (
            "organ-pipe".into(),
            Box::new(|g: &AccessGraph| g.arrangement_cost(OrganPipe.place(g).offsets())),
        ),
        (
            "chain".into(),
            Box::new(|g: &AccessGraph| g.arrangement_cost(ChainGrowth.place(g).offsets())),
        ),
        (
            "grouped".into(),
            Box::new(|g: &AccessGraph| g.arrangement_cost(GroupedChainGrowth.place(g).offsets())),
        ),
        (
            "insertion".into(),
            Box::new(|g: &AccessGraph| g.arrangement_cost(GreedyInsertion.place(g).offsets())),
        ),
        (
            "spectral".into(),
            Box::new(|g: &AccessGraph| g.arrangement_cost(Spectral::default().place(g).offsets())),
        ),
        (
            "portfolio".into(),
            Box::new(|g: &AccessGraph| {
                // Portfolio only: zero refinement passes.
                let h = Hybrid::with_refiner(LocalSearch::new(0));
                g.arrangement_cost(h.place(g).offsets())
            }),
        ),
    ];
    for window in [1usize, 4, 12] {
        columns.push((
            format!("pipeline w={window}"),
            Box::new(move |g: &AccessGraph| {
                let h = Hybrid::with_refiner(LocalSearch::default().with_window(window));
                g.arrangement_cost(h.place(g).offsets())
            }),
        ));
    }
    columns.push((
        "pipeline+wdp".into(),
        Box::new(|g: &AccessGraph| {
            use dwm_core::WindowedDp;
            let mut p = Hybrid::default().place(g);
            WindowedDp::default().refine(g, &mut p);
            g.arrangement_cost(p.offsets())
        }),
    ));

    let mut header = vec!["variant".to_string()];
    header.push("gmean vs naive".into());
    header.push("wins".into());
    let mut t = Table::new(header);

    // Precompute per-workload graphs and naive costs.
    let graphs: Vec<(AccessGraph, u64)> = workloads
        .iter()
        .map(|(_, trace)| {
            let g = AccessGraph::from_trace(trace);
            let naive = g.arrangement_cost(Placement::identity(g.num_items()).offsets());
            (g, naive)
        })
        .collect();

    // For "wins": per workload, which variant achieves the minimum.
    // The variant×workload cost matrix is embarrassingly parallel; one
    // worker per variant column, results gathered in column order.
    let costs: Vec<Vec<u64>> = par::par_map(&columns, |(_, f)| {
        graphs.iter().map(|(g, _)| f(g)).collect()
    });

    for (ci, (name, _)) in columns.iter().enumerate() {
        let mut log_sum = 0.0f64;
        let mut wins = 0usize;
        for (wi, (_, naive)) in graphs.iter().enumerate() {
            let c = costs[ci][wi];
            log_sum += (c as f64 / (*naive).max(1) as f64).ln();
            let best = costs.iter().map(|col| col[wi]).min().expect("nonempty");
            if c == best {
                wins += 1;
            }
        }
        t.row([
            name.clone(),
            format!("{:.3}", (log_sum / graphs.len() as f64).exp()),
            format!("{wins}/{}", graphs.len()),
        ]);
    }
    t.print();
}
