use dwm_graph::{AccessGraph, ArrangementEval, CsrGraph};

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Local-search refinement: repeated first-improvement passes of
/// *windowed* position swaps until a pass yields no improvement (or
/// the pass budget is exhausted).
///
/// Each pass tries swapping the items at offsets `k` and `k + d` for
/// every `k` and every `d ≤ window`. Adjacent swaps (`window = 1`)
/// converge fast but get trapped in shallow minima on structured
/// graphs (grids, butterflies); a modest window escapes most of them
/// while keeping a pass at `O(n · window · d̄)`. Deltas come from an
/// [`ArrangementEval`] over the frozen [`CsrGraph`], so the inner loop
/// streams flat neighbour arrays instead of walking adjacency trees.
///
/// `LocalSearch` is both a standalone refiner ([`LocalSearch::refine`])
/// and composable: call [`refine`](LocalSearch::refine) on any
/// algorithm's output, which is what the experiment harness's "+LS"
/// variants and the [`Hybrid`](crate::algorithms::Hybrid) pipeline do.
/// Pipelines that already hold a frozen graph use
/// [`refine_frozen`](LocalSearch::refine_frozen) to skip re-freezing.
///
/// Refinement never increases cost (each accepted move strictly
/// decreases it), an invariant the property tests enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearch {
    /// Maximum number of full passes.
    pub max_passes: usize,
    /// Maximum distance between swapped positions.
    pub window: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            max_passes: 50,
            window: 12,
        }
    }
}

impl LocalSearch {
    /// A refiner with the given pass budget and the default window.
    pub fn new(max_passes: usize) -> Self {
        LocalSearch {
            max_passes,
            ..LocalSearch::default()
        }
    }

    /// Sets the swap window (1 = adjacent swaps only).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Refines `placement` in place; returns the total cost reduction
    /// achieved (non-negative).
    pub fn refine(&self, graph: &AccessGraph, placement: &mut Placement) -> u64 {
        if placement.num_items() < 2 {
            return 0;
        }
        let csr = CsrGraph::freeze(graph);
        self.refine_frozen(&csr, placement)
    }

    /// [`refine`](Self::refine) on an already-frozen graph.
    ///
    /// The scan is served from a per-item *profile cache*: item `x`'s
    /// profile `G_x(q) = Σ_{v∈N(x)} w(x,v)·|q − pos[v]|` over the slot
    /// span `[pos[x] − w, pos[x] + w]` is filled by **one** batched
    /// row walk ([`ArrangementEval::window_half_costs`]) and then
    /// serves every pair query touching `x` — as anchor and as any
    /// anchor's candidate — until a swap moves one of `x`'s neighbours
    /// (or `x` itself), which lazily invalidates the entry. A pair's
    /// delta folds four cached values with the shared-edge correction
    /// (see the identity below), so a steady-state pass walks each row
    /// about once instead of twice per candidate pair. Profile values
    /// are exact integer sums, so the swap sequence is byte-identical
    /// to [`refine_frozen_scalar`](Self::refine_frozen_scalar) — the
    /// golden equivalence tests pin that. Scratch memory is
    /// `O(n · window)`.
    pub fn refine_frozen(&self, csr: &CsrGraph, placement: &mut Placement) -> u64 {
        let n = placement.num_items();
        if n < 2 {
            return 0;
        }
        let w = self.window;
        let mut eval = ArrangementEval::new(csr, placement.offsets());
        let mut saved = 0i64;
        // Profile cache: item x's G values live in
        // `vals[x·span..][q − base[x]]`; `base[x] == usize::MAX` marks
        // the entry stale. The span covers every slot a windowed pair
        // can ask of x from either side of the pair.
        let span = 2 * w + 1;
        let mut base = vec![usize::MAX; n];
        let mut vals = vec![0i64; n * span];
        let mut mid: Vec<(i64, i64)> = Vec::new();
        // Metrics accumulate locally and flush after the pass loop.
        let (mut passes, mut swaps) = (0u64, 0u64);
        // Kernel choice per pass: the cache only pays off when most
        // profiles survive long enough to be reused, i.e. when swaps
        // are sparse. A swap-dense pass (early passes from a rough
        // start) churns ~2·deg invalidations per swap and is cheaper
        // on direct per-pair deltas. The previous pass's swap count
        // picks the kernel — both kernels return the exact same
        // integer deltas, so the choice never changes a decision.
        let mut prev_swaps = 0u64;
        let mut cached_prev = false;
        for pass in 0..self.max_passes {
            passes += 1;
            // The first pass has no swap history: start optimistic
            // (cached) only where a fill amortizes over many pair
            // queries — on small instances the window spans a large
            // fraction of the tape and per-pair deltas are already a
            // handful of cache lines, so the cache never recoups its
            // churn there.
            let use_cache = if pass == 0 {
                n >= 16 * span
            } else {
                prev_swaps <= (n as u64) / 4
            };
            if use_cache && !cached_prev {
                // Scalar passes do not maintain invalidations; start
                // the cached regime from a clean slate.
                base.fill(usize::MAX);
            }
            cached_prev = use_cache;
            let mut pass_swaps = 0u64;
            for k in 0..n - 1 {
                let hi = (k + w).min(n - 1);
                let mut a = eval.item_at(k);
                if use_cache {
                    fill_profile(&eval, w, a, &mut base, &mut vals, &mut mid);
                }
                for j in (k + 1)..=hi {
                    let b = eval.item_at(j);
                    // Swapping a (slot k) with b (slot j) changes their
                    // own-edge terms by the profile differences; both
                    // differences double-count the shared edge (a, b),
                    // whose length a swap preserves, hence the
                    // +2·w(a,b)·(j − k) correction. All-integer, so the
                    // value equals `eval.swap_delta(a, b)` exactly (the
                    // apply below re-checks that in debug builds).
                    let delta = if use_cache {
                        fill_profile(&eval, w, b, &mut base, &mut vals, &mut mid);
                        let ga = &vals[a * span..];
                        let gb = &vals[b * span..];
                        (ga[j - base[a]] - ga[k - base[a]])
                            + (gb[k - base[b]] - gb[j - base[b]])
                            + 2 * csr.weight(a, b) as i64 * (j - k) as i64
                    } else {
                        eval.swap_delta(a, b)
                    };
                    if delta < 0 {
                        pass_swaps += 1;
                        eval.apply_swap_with_delta(a, b, delta);
                        saved -= delta;
                        if use_cache {
                            // The swap moved a and b: every profile
                            // that sums a distance to either is stale,
                            // and so are their own spans (centred on
                            // the old slots).
                            for (v, _) in csr.neighbors(a) {
                                base[v] = usize::MAX;
                            }
                            for (v, _) in csr.neighbors(b) {
                                base[v] = usize::MAX;
                            }
                            base[a] = usize::MAX;
                            base[b] = usize::MAX;
                        }
                        a = b; // slot k now holds b
                        if use_cache {
                            fill_profile(&eval, w, a, &mut base, &mut vals, &mut mid);
                        }
                    }
                }
            }
            swaps += pass_swaps;
            prev_swaps = pass_swaps;
            if pass_swaps == 0 {
                break;
            }
        }
        window_passes_counter().add(passes);
        improving_swaps_counter().add(swaps);
        *placement = Placement::from_offsets(eval.positions().to_vec())
            .expect("evaluator maintains a permutation");
        saved as u64
    }

    /// The scalar reference for [`refine_frozen`](Self::refine_frozen):
    /// the same windowed first-improvement scan, but every candidate
    /// pair pays a full two-row [`ArrangementEval::swap_delta`] — no
    /// batched anchor profile, no degree-bound prune. Kept callable so
    /// the golden equivalence tests and the `algo/local_search` bench
    /// pair can pin the batched path against it; both must produce
    /// byte-identical placements and savings.
    pub fn refine_frozen_scalar(&self, csr: &CsrGraph, placement: &mut Placement) -> u64 {
        let n = placement.num_items();
        if n < 2 {
            return 0;
        }
        let w = self.window;
        let mut eval = ArrangementEval::new(csr, placement.offsets());
        let mut saved = 0i64;
        let (mut passes, mut swaps) = (0u64, 0u64);
        for _ in 0..self.max_passes {
            passes += 1;
            let mut improved = false;
            for k in 0..n - 1 {
                let hi = (k + w).min(n - 1);
                let mut a = eval.item_at(k);
                for j in (k + 1)..=hi {
                    let b = eval.item_at(j);
                    let delta = eval.swap_delta(a, b);
                    if delta < 0 {
                        swaps += 1;
                        eval.apply_swap_with_delta(a, b, delta);
                        saved -= delta;
                        improved = true;
                        a = b; // slot k now holds b
                    }
                }
            }
            if !improved {
                break;
            }
        }
        window_passes_counter().add(passes);
        improving_swaps_counter().add(swaps);
        *placement = Placement::from_offsets(eval.positions().to_vec())
            .expect("evaluator maintains a permutation");
        saved as u64
    }

    /// Convenience: place with `base`, then refine.
    pub fn refine_placement_of(
        &self,
        base: &dyn PlacementAlgorithm,
        graph: &AccessGraph,
    ) -> Placement {
        let mut p = base.place(graph);
        self.refine(graph, &mut p);
        p
    }
}

/// Ensures item `x`'s profile-cache entry is fresh: when `base[x]` is
/// the stale sentinel, one batched row walk fills `G_x(q)` for every
/// slot `q` in `[pos[x] − w, pos[x] + w] ∩ [0, n)` and records the
/// span's first slot in `base[x]`. The span covers all slots a
/// windowed scan can query of `x`: as the anchor at slot `p` it is
/// asked about `[p, p + w]`, as a candidate at slot `p` about
/// `[p − w, p]`.
#[inline]
fn fill_profile(
    eval: &ArrangementEval<'_>,
    w: usize,
    x: usize,
    base: &mut [usize],
    vals: &mut [i64],
    mid: &mut Vec<(i64, i64)>,
) {
    if base[x] != usize::MAX {
        return;
    }
    let n = eval.graph().num_items();
    let p = eval.position_of(x);
    let lo = p.saturating_sub(w);
    let hi = (p + w).min(n - 1);
    let span = 2 * w + 1;
    eval.window_half_costs(
        x,
        lo,
        hi,
        &mut vals[x * span..x * span + (hi - lo + 1)],
        mid,
    );
    base[x] = lo;
}

/// Window passes executed across all local-search runs.
pub(crate) fn window_passes_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_local_search_passes_total",
        "Windowed improvement passes executed by local search"
    )
}

/// Improving swaps applied across all local-search runs.
pub(crate) fn improving_swaps_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_local_search_swaps_total",
        "Improving swaps applied by local search"
    )
}

impl PlacementAlgorithm for LocalSearch {
    fn name(&self) -> String {
        "local-search".into()
    }

    /// As a standalone algorithm, refines the identity placement.
    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut p = Placement::identity(graph.num_items());
        self.refine(graph, &mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, two_cluster_graph};
    use crate::algorithms::{ChainGrowth, OrganPipe, RandomPlacement};

    #[test]
    fn refine_never_increases_cost() {
        let g = kernel_graph();
        for base in [
            &RandomPlacement::new(5) as &dyn PlacementAlgorithm,
            &ChainGrowth,
            &OrganPipe,
        ] {
            let mut p = base.place(&g);
            let before = g.arrangement_cost(p.offsets());
            let saved = LocalSearch::default().refine(&g, &mut p);
            let after = g.arrangement_cost(p.offsets());
            assert!(after <= before, "{} got worse", base.name());
            assert_eq!(before - after, saved, "reported saving mismatch");
        }
    }

    #[test]
    fn eval_position_swap_delta_matches_recomputation() {
        let g = two_cluster_graph();
        let csr = CsrGraph::freeze(&g);
        let mut p = RandomPlacement::new(11).place(&g);
        let n = p.num_items();
        for k in 0..n {
            for j in (k + 1)..n {
                let before = g.arrangement_cost(p.offsets()) as i64;
                let eval = ArrangementEval::new(&csr, p.offsets());
                let (a, b) = (p.item_at(k), p.item_at(j));
                let delta = eval.swap_delta(a, b);
                p.swap_items(a, b);
                let after = g.arrangement_cost(p.offsets()) as i64;
                assert_eq!(after - before, delta);
                p.swap_items(a, b);
            }
        }
    }

    #[test]
    fn converges_to_local_optimum() {
        let g = kernel_graph();
        let csr = CsrGraph::freeze(&g);
        let mut p = RandomPlacement::new(3).place(&g);
        LocalSearch::default().refine(&g, &mut p);
        // No in-window swap may improve further.
        let eval = ArrangementEval::new(&csr, p.offsets());
        let n = p.num_items();
        for k in 0..n - 1 {
            for j in (k + 1)..(k + 1 + LocalSearch::default().window).min(n) {
                assert!(eval.swap_delta(eval.item_at(k), eval.item_at(j)) >= 0);
            }
        }
    }

    #[test]
    fn batched_path_matches_the_scalar_reference() {
        for (g, seeds) in [
            (kernel_graph(), [3u64, 7, 11]),
            (two_cluster_graph(), [1, 5, 9]),
        ] {
            let csr = CsrGraph::freeze(&g);
            for seed in seeds {
                let mut batched = RandomPlacement::new(seed).place(&g);
                let mut scalar = batched.clone();
                let ls = LocalSearch::default();
                let saved_batched = ls.refine_frozen(&csr, &mut batched);
                let saved_scalar = ls.refine_frozen_scalar(&csr, &mut scalar);
                assert_eq!(batched, scalar, "placements diverged (seed {seed})");
                assert_eq!(
                    saved_batched, saved_scalar,
                    "savings diverged (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn frozen_entry_point_matches_refine() {
        let g = two_cluster_graph();
        let csr = CsrGraph::freeze(&g);
        let mut a = RandomPlacement::new(7).place(&g);
        let mut b = a.clone();
        let saved_a = LocalSearch::default().refine(&g, &mut a);
        let saved_b = LocalSearch::default().refine_frozen(&csr, &mut b);
        assert_eq!(a, b);
        assert_eq!(saved_a, saved_b);
    }

    #[test]
    fn refine_placement_of_composes() {
        let g = kernel_graph();
        let base = ChainGrowth;
        let refined = LocalSearch::default().refine_placement_of(&base, &g);
        assert!(
            g.arrangement_cost(refined.offsets()) <= g.arrangement_cost(base.place(&g).offsets())
        );
    }

    #[test]
    fn handles_trivial_graphs() {
        for n in 0..2 {
            let g = AccessGraph::with_items(n);
            let mut p = Placement::identity(n);
            assert_eq!(LocalSearch::default().refine(&g, &mut p), 0);
        }
    }
}
