//! Shift-fault (position-error) modelling.
//!
//! Racetrack shifting is imperfect: with some per-domain-step
//! probability the domain train over- or under-shoots by one position
//! ("slip"), leaving the tape misaligned until detected. Reducing the
//! shift count therefore reduces fault *exposure* — a second,
//! reliability-flavoured argument for shift-minimizing placement that
//! the F9 experiment quantifies.
//!
//! [`ShiftFaultModel`] provides the analytic expectations;
//! [`FaultInjector`] draws concrete slip events for the functional
//! simulator using a small self-contained SplitMix64 generator (the
//! device crate takes no RNG dependency).

/// Per-shift-step position-error model.
///
/// `slip_probability` is the chance that one single-domain shift step
/// mis-positions the train by one domain (direction uniform). Typical
/// figures explored in the DWM reliability literature run from 1e-5
/// (conservative) to 1e-2 (aggressive overdrive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftFaultModel {
    /// Probability that one shift step slips by one domain.
    pub slip_probability: f64,
}

dwm_foundation::json_struct!(ShiftFaultModel { slip_probability });

impl ShiftFaultModel {
    /// A model with the given per-step slip probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ slip_probability ≤ 1`.
    pub fn new(slip_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&slip_probability),
            "slip probability must be in [0, 1]"
        );
        ShiftFaultModel { slip_probability }
    }

    /// Expected number of slip events over `shifts` single-domain
    /// steps.
    pub fn expected_slips(&self, shifts: u64) -> f64 {
        shifts as f64 * self.slip_probability
    }

    /// Probability that an access moving `distance` steps completes
    /// without any slip.
    pub fn access_success_probability(&self, distance: u64) -> f64 {
        (1.0 - self.slip_probability).powi(distance.min(i32::MAX as u64) as i32)
    }
}

/// Deterministic slip-event source for fault-injection runs.
///
/// Uses SplitMix64 so the device crate needs no external RNG; the same
/// seed always produces the same fault pattern, which keeps
/// fault-injection experiments reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    model: ShiftFaultModel,
    state: u64,
}

dwm_foundation::json_struct!(FaultInjector { model, state });

impl FaultInjector {
    /// An injector drawing from `model` with the given seed.
    pub fn new(model: ShiftFaultModel, seed: u64) -> Self {
        FaultInjector { model, state: seed }
    }

    /// The underlying fault model.
    pub fn model(&self) -> &ShiftFaultModel {
        &self.model
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain, Steele et al.).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform bits in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws the net position slip for an access that shifts
    /// `distance` steps: each step slips independently with the model's
    /// probability, direction ±1 uniform. Returns the signed net
    /// displacement error and the number of slip events.
    pub fn draw_slip(&mut self, distance: u64) -> (i64, u64) {
        let mut net = 0i64;
        let mut events = 0u64;
        for _ in 0..distance {
            if self.next_f64() < self.model.slip_probability {
                events += 1;
                net += if self.next_u64() & 1 == 0 { 1 } else { -1 };
            }
        }
        (net, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectations_scale_linearly() {
        let m = ShiftFaultModel::new(1e-3);
        assert!((m.expected_slips(1000) - 1.0).abs() < 1e-12);
        assert!((m.expected_slips(0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn success_probability_decays_with_distance() {
        let m = ShiftFaultModel::new(0.01);
        assert!(m.access_success_probability(1) > m.access_success_probability(10));
        assert_eq!(m.access_success_probability(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "slip probability")]
    fn invalid_probability_rejected() {
        let _ = ShiftFaultModel::new(1.5);
    }

    #[test]
    fn injector_is_deterministic() {
        let mut a = FaultInjector::new(ShiftFaultModel::new(0.1), 42);
        let mut b = FaultInjector::new(ShiftFaultModel::new(0.1), 42);
        for _ in 0..100 {
            assert_eq!(a.draw_slip(20), b.draw_slip(20));
        }
    }

    #[test]
    fn zero_probability_never_slips() {
        let mut inj = FaultInjector::new(ShiftFaultModel::new(0.0), 7);
        for _ in 0..100 {
            assert_eq!(inj.draw_slip(50), (0, 0));
        }
    }

    #[test]
    fn certain_probability_slips_every_step() {
        let mut inj = FaultInjector::new(ShiftFaultModel::new(1.0), 7);
        let (_, events) = inj.draw_slip(25);
        assert_eq!(events, 25);
    }

    #[test]
    fn empirical_rate_approaches_expectation() {
        let p = 0.05;
        let mut inj = FaultInjector::new(ShiftFaultModel::new(p), 99);
        let trials = 2000u64;
        let distance = 40u64;
        let mut events = 0u64;
        for _ in 0..trials {
            events += inj.draw_slip(distance).1;
        }
        let expected = p * (trials * distance) as f64;
        let observed = events as f64;
        // Within 10% of the mean over 80k Bernoulli draws.
        assert!(
            (observed - expected).abs() < 0.1 * expected,
            "observed {observed}, expected {expected}"
        );
    }
}
