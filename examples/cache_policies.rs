//! Shift-aware policies in a DWM cache.
//!
//! Builds an 8-set × 8-way racetrack cache and replays a Zipf workload
//! under increasingly shift-aware policy stacks, printing the
//! hit-ratio / shifts-per-access tradeoff.
//!
//! ```text
//! cargo run --release --example cache_policies
//! ```

use dwm_placement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ZipfGen::new(512, 42).generate(50_000);
    println!("workload: {}\n", trace.stats());

    println!(
        "{:<28} {:>8} {:>12} {:>11}",
        "policy", "hit%", "shifts/acc", "promotions"
    );
    let stacks: Vec<(&str, CacheConfig)> = vec![
        ("lru", CacheConfig::new(8, 8)?),
        (
            "shift-aware lru (w=2)",
            CacheConfig::new(8, 8)?
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 }),
        ),
        (
            "shift-aware lru (w=0)",
            CacheConfig::new(8, 8)?
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 0 }),
        ),
        (
            "sa-lru (w=2) + promotion",
            CacheConfig::new(8, 8)?
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 })
                .with_promotion(PromotionPolicy::SwapTowardPort),
        ),
    ];
    for (name, config) in stacks {
        let mut cache = DwmCache::new(config);
        let stats = cache.run_trace(&trace);
        println!(
            "{:<28} {:>7.1}% {:>12.2} {:>11}",
            name,
            stats.hit_ratio() * 100.0,
            stats.shifts_per_access(),
            stats.promotions
        );
    }
    println!(
        "\nw=0 always evicts under the port: cheapest shifts, worst hit \
         ratio — the window parameter walks the tradeoff."
    );
    Ok(())
}
