//! Experiment F9 (extension): shift-fault exposure.
//!
//! With a per-shift slip probability of 1e-3, fewer shifts means fewer
//! position errors. For each kernel we report the analytic expected
//! slip count of the naive and hybrid placements, and the slips the
//! fault-injecting simulator actually observed (seeded, p scaled to
//! 2e-2 so counts are non-trivial at these trace lengths).

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{Hybrid, OrderOfAppearance, PlacementAlgorithm};
use dwm_device::fault::ShiftFaultModel;
use dwm_device::DeviceConfig;
use dwm_experiments::{workload_suite, Table, EXPERIMENT_SEED};
use dwm_graph::AccessGraph;
use dwm_sim::SpmSimulator;

fn main() {
    println!("Figure 9: shift-slip exposure, naive vs. hybrid placement\n");
    let analytic_model = ShiftFaultModel::new(1e-3);
    let injected_model = ShiftFaultModel::new(2e-2);
    let mut t = Table::new([
        "benchmark",
        "naive E[slips] (p=1e-3)",
        "hybrid E[slips]",
        "naive slips (sim, p=2e-2)",
        "hybrid slips (sim)",
    ]);
    let cost = SinglePortCost::new();
    for (name, trace) in workload_suite() {
        let graph = AccessGraph::from_trace(&trace);
        let naive_p = OrderOfAppearance.place(&graph);
        let hybrid_p = Hybrid::default().place(&graph);
        let naive_shifts = cost.trace_cost(&naive_p, &trace).stats.shifts;
        let hybrid_shifts = cost.trace_cost(&hybrid_p, &trace).stats.shifts;

        let config = DeviceConfig::builder()
            .domains_per_track(graph.num_items().max(1))
            .tracks_per_dbc(32)
            .build()
            .expect("valid");
        let simulate = |placement| {
            SpmSimulator::new(&config, placement)
                .expect("fits")
                .with_fault_injection(injected_model, EXPERIMENT_SEED)
                .run(&trace)
                .expect("replay")
        };
        let naive_sim = simulate(&naive_p);
        let hybrid_sim = simulate(&hybrid_p);
        assert_eq!(naive_sim.integrity_errors, 0);
        assert_eq!(hybrid_sim.integrity_errors, 0);
        t.row([
            name,
            format!("{:.2}", analytic_model.expected_slips(naive_shifts)),
            format!("{:.2}", analytic_model.expected_slips(hybrid_shifts)),
            naive_sim.slip_events.to_string(),
            hybrid_sim.slip_events.to_string(),
        ]);
    }
    t.print();
}
