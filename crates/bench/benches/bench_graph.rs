//! Frozen-graph (CSR) microbenchmarks and the solver entries the CSR
//! rewire accelerates.
//!
//! `graph/*` times the representation itself — freezing an access
//! graph and streaming swap deltas through an [`ArrangementEval`] —
//! while `algo/*` times the three inner-loop consumers whose medians
//! the regression gate tracks: greedy insertion (the former worst
//! offender), simulated annealing, and windowed local search.

use dwm_bench::{markov_fixture, BENCH_SEED};
use dwm_core::SimulatedAnnealing;
use dwm_core::{ChainGrowth, GreedyInsertion, LocalSearch, PlacementAlgorithm, RandomPlacement};
use dwm_foundation::bench::{black_box, Harness};
use dwm_foundation::par;
use dwm_graph::{ArrangementEval, CsrGraph};

fn main() {
    let mut h = Harness::from_env("graph");
    for n in [64usize, 256, 1024] {
        let (_, graph) = markov_fixture(n);

        // A batch of independent freezes, fanned over the workers, so
        // the t1/t4 medians show both the single-freeze cost and that
        // freezing parallelizes trivially.
        let batch = [&graph, &graph, &graph, &graph];
        h.bench_threads(&format!("graph/csr_build/{n}"), || {
            par::par_map(&batch, |g| CsrGraph::freeze(black_box(g)).num_edges())
        });

        let csr = CsrGraph::freeze(&graph);
        let start: Vec<usize> = (0..n).collect();
        let eval = ArrangementEval::new(&csr, &start);
        // Every in-window swap delta of a local-search pass, split into
        // per-worker chunks of query pairs.
        let pairs: Vec<(usize, usize)> = (0..n - 1)
            .flat_map(|k| ((k + 1)..(k + 13).min(n)).map(move |j| (k, j)))
            .collect();
        let chunks: Vec<&[(usize, usize)]> = pairs.chunks(pairs.len().div_ceil(4)).collect();
        h.bench_threads(&format!("graph/swap_delta/{n}"), || {
            par::par_map(&chunks, |chunk| {
                chunk
                    .iter()
                    .map(|&(k, j)| eval.swap_delta(eval.item_at(k), eval.item_at(j)))
                    .sum::<i64>()
            })
        });

        let csrs = [&csr, &csr, &csr, &csr];
        h.bench_threads(&format!("algo/insertion/{n}"), || {
            par::par_map(&csrs, |c| GreedyInsertion.place_frozen(black_box(c)))
        });

        let annealer = SimulatedAnnealing::new(BENCH_SEED).with_iterations(5_000);
        h.bench(&format!("algo/annealing/{n}"), || {
            annealer.place(black_box(&graph))
        });

        let rough = RandomPlacement::new(BENCH_SEED).place(&graph);
        h.bench(&format!("algo/local_search/{n}"), || {
            let mut p = rough.clone();
            LocalSearch::default().refine_frozen(black_box(&csr), &mut p);
            p
        });
    }

    // The 10⁸-scale profile-driven workloads land on graphs this
    // size. The fixture is the realistic refinement call — polish a
    // ChainGrowth placement to convergence, exactly what the Hybrid
    // pipeline does — and the profile-cached path is benched against
    // its scalar reference (same scan order and byte-identical
    // output, but a full two-row delta per candidate pair) so
    // `bench_gate.sh` can enforce the ≥2x speedup as a same-run pair,
    // immune to machine drift.
    {
        let n = 4096usize;
        let (_, graph) = markov_fixture(n);
        let csr = CsrGraph::freeze(&graph);
        let start = ChainGrowth.place(&graph);
        let ls = LocalSearch::default();
        h.bench(&format!("algo/local_search/{n}"), || {
            let mut p = start.clone();
            ls.refine_frozen(black_box(&csr), &mut p);
            p
        });
        h.bench(&format!("algo/local_search_scalar/{n}"), || {
            let mut p = start.clone();
            ls.refine_frozen_scalar(black_box(&csr), &mut p);
            p
        });
    }
    h.finish();
}
