//! Loopback load generator for a running `dwm serve` daemon.
//!
//! ```text
//! serve_load [--addr HOST:PORT] [--requests N] [--clients N]
//!            [--workloads N] [--items N] [--len N] [--seed N]
//!            [--algorithm NAME] [--quality NAME] [--deadline-us N]
//!            [--min-rps N] [--sessions N] [--wait-ready SECS]
//!            [--idle-conns N]
//! ```
//!
//! Exits 0 iff every request got a 2xx with a body consistent with
//! every other response for the same workload AND the measured
//! throughput met `--min-rps` (default 0, i.e. no floor). The CI smoke
//! job runs this with `--requests 200 --min-rps 1000` against a
//! release-mode daemon.
//!
//! `--wait-ready SECS` polls `GET /health` until the daemon answers
//! (or the window lapses, exit 2) before generating any load — the
//! scripted replacement for a fixed-iteration spin-wait after starting
//! a daemon in the background.
//!
//! `--quality` / `--deadline-us` switch the solve bodies to the tiered
//! form (mutually exclusive with `--algorithm`). With `--deadline-us`
//! the run additionally *enforces the deadline contract*: it fails
//! (exit 1) unless every response's server-side time stayed within the
//! budget — i.e. p99 under budget and zero deadline misses. The CI
//! deadline-contract step runs `--quality fast --deadline-us …` to pin
//! the tier-0 latency envelope.
//!
//! `--idle-conns N` parks `N` extra keep-alive connections (each
//! verified live with a `/health` round-trip) for the whole run and
//! re-verifies them afterwards — the C10k proof. The run fails unless
//! every parked connection survived; the process raises its own file-
//! descriptor limit as far as the hard cap allows first. The CI C10k
//! smoke step runs `--idle-conns 10000` against a release daemon.
//!
//! With `--sessions N` the harness switches to session mode: it opens
//! `N` streaming sessions, streams each workload to them closed-loop
//! in fixed chunks via `POST /session/{id}/accesses`, reports ingest
//! latency percentiles, and cross-checks that sessions fed the same
//! stream end with byte-identical placements (`--requests` is ignored;
//! the stream length is `--len`). Tier knobs are forwarded to session
//! creation (`quality` / `replace_deadline_us`) so re-placement runs
//! through the anytime portfolio; the deadline contract applies to
//! stateless solves only.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use dwm_serve::load::{run, run_sessions, wait_ready, LoadConfig};

fn fail(msg: &str) -> ExitCode {
    eprintln!("serve_load: {msg}");
    ExitCode::from(2)
}

const QUALITY_NAMES: [&str; 3] = ["fast", "balanced", "best"];

fn main() -> ExitCode {
    let mut addr = std::env::var("DWM_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7077".to_owned());
    let mut requests = 200usize;
    let mut clients = 4usize;
    let mut workloads = 8usize;
    let mut items = 48usize;
    let mut len = 2400usize;
    let mut seed = 7u64;
    let mut algorithm: Option<String> = None;
    let mut quality: Option<String> = None;
    let mut deadline_us: Option<u64> = None;
    let mut min_rps = 0f64;
    let mut sessions = 0usize;
    let mut wait_ready_secs = 0f64;
    let mut idle_conns = 0usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            println!(
                "usage: serve_load [--addr HOST:PORT] [--requests N] [--clients N] \
                 [--workloads N] [--items N] [--len N] [--seed N] [--algorithm NAME] \
                 [--quality NAME] [--deadline-us N] [--min-rps N] [--sessions N] \
                 [--wait-ready SECS] [--idle-conns N]"
            );
            return ExitCode::SUCCESS;
        }
        let Some(value) = args.get(i + 1) else {
            return fail(&format!("flag {flag} needs a value"));
        };
        let parsed_usize = || value.parse::<usize>();
        match flag {
            "--addr" => addr = value.clone(),
            "--requests" => match parsed_usize() {
                Ok(v) if v > 0 => requests = v,
                _ => return fail("--requests must be a positive integer"),
            },
            "--clients" => match parsed_usize() {
                Ok(v) if v > 0 => clients = v,
                _ => return fail("--clients must be a positive integer"),
            },
            "--workloads" => match parsed_usize() {
                Ok(v) if v > 0 => workloads = v,
                _ => return fail("--workloads must be a positive integer"),
            },
            "--items" => match parsed_usize() {
                Ok(v) if v > 1 => items = v,
                _ => return fail("--items must be at least 2"),
            },
            "--len" => match parsed_usize() {
                Ok(v) if v > 0 => len = v,
                _ => return fail("--len must be a positive integer"),
            },
            "--seed" => match value.parse::<u64>() {
                Ok(v) => seed = v,
                Err(_) => return fail("--seed must be an unsigned integer"),
            },
            "--algorithm" => algorithm = Some(value.clone()),
            "--quality" => {
                if !QUALITY_NAMES.contains(&value.as_str()) {
                    return fail(&format!(
                        "--quality must be one of {QUALITY_NAMES:?}, got {value:?}"
                    ));
                }
                quality = Some(value.clone());
            }
            "--deadline-us" => match value.parse::<u64>() {
                Ok(v) => deadline_us = Some(v),
                Err(_) => return fail("--deadline-us must be an unsigned integer"),
            },
            "--min-rps" => match value.parse::<f64>() {
                Ok(v) if v >= 0.0 => min_rps = v,
                _ => return fail("--min-rps must be a nonnegative number"),
            },
            "--sessions" => match parsed_usize() {
                Ok(v) if v > 0 => sessions = v,
                _ => return fail("--sessions must be a positive integer"),
            },
            "--wait-ready" => match value.parse::<f64>() {
                Ok(v) if v >= 0.0 => wait_ready_secs = v,
                _ => return fail("--wait-ready must be a nonnegative number of seconds"),
            },
            "--idle-conns" => match parsed_usize() {
                Ok(v) => idle_conns = v,
                Err(_) => return fail("--idle-conns must be an unsigned integer"),
            },
            other => return fail(&format!("unknown flag {other}")),
        }
        i += 2;
    }

    if algorithm.is_some() && (quality.is_some() || deadline_us.is_some()) {
        return fail("--algorithm cannot be combined with --quality/--deadline-us");
    }

    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(_) => return fail(&format!("invalid address {addr:?}")),
    };

    if wait_ready_secs > 0.0 {
        match wait_ready(addr, Duration::from_secs_f64(wait_ready_secs)) {
            Ok(took) => println!(
                "serve_load: daemon at {addr} ready after {:.2}s",
                took.as_secs_f64()
            ),
            Err(e) => return fail(&e.to_string()),
        }
    }

    let config = LoadConfig {
        addr,
        requests,
        clients,
        workloads,
        items,
        len,
        seed,
        algorithm: algorithm.unwrap_or_else(|| "hybrid".to_owned()),
        quality,
        deadline_us,
        idle_conns,
    };
    let outcome = if sessions > 0 {
        run_sessions(&config, sessions)
    } else {
        run(&config)
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => return fail(&format!("load run against {addr} failed: {e}")),
    };
    println!("{}", report.summary());

    if !report.all_ok() {
        eprintln!(
            "serve_load: FAILED ({} errors, {} mismatches)",
            report.errors, report.mismatches
        );
        return ExitCode::FAILURE;
    }
    if min_rps > 0.0 && report.rps() < min_rps {
        eprintln!(
            "serve_load: FAILED (throughput {:.0} req/s below the {min_rps:.0} req/s floor)",
            report.rps()
        );
        return ExitCode::FAILURE;
    }
    if sessions == 0 {
        if let Some(budget) = config.deadline_us {
            let p99 = report.server_elapsed.percentile(0.99).unwrap_or(u64::MAX);
            if report.deadline_misses > 0 || p99 > budget {
                eprintln!(
                    "serve_load: FAILED (deadline contract: p99 {p99}us vs {budget}us budget, \
                     {} misses)",
                    report.deadline_misses
                );
                return ExitCode::FAILURE;
            }
            println!(
                "serve_load: deadline contract held (server p99 {p99}us within {budget}us, \
                 0 misses)"
            );
        }
    }
    ExitCode::SUCCESS
}
