//! Experiment T4: optimality gap on small instances.
//!
//! On graphs small enough for the exact subset-DP optimum (n ≤ 14
//! here), measure how far each heuristic is from optimal — the study
//! the paper runs against an ILP solver.

use dwm_core::algorithms::{
    ChainGrowth, GroupedChainGrowth, LocalSearch, OrganPipe, PlacementAlgorithm, Spectral,
};
use dwm_core::exact::optimal_placement;
use dwm_experiments::{Table, EXPERIMENT_SEED};
use dwm_graph::generators::{clustered_graph, random_graph};
use dwm_graph::AccessGraph;

fn gap(cost: u64, opt: u64) -> String {
    if opt == 0 {
        return if cost == 0 {
            "0.0%".into()
        } else {
            "inf".into()
        };
    }
    format!("{:.1}%", 100.0 * (cost as f64 - opt as f64) / opt as f64)
}

fn main() {
    println!("Table 4: optimality gap vs. exact DP optimum (mean over 10 seeds)\n");
    let mut t = Table::new([
        "instance",
        "n",
        "optimal",
        "organ-pipe",
        "chain",
        "grouped",
        "grouped+ls",
        "spectral",
    ]);
    type Alg<'a> = (&'a str, Box<dyn Fn(&AccessGraph) -> u64>);
    let algs: Vec<Alg> = vec![
        (
            "organ-pipe",
            Box::new(|g: &AccessGraph| g.arrangement_cost(OrganPipe.place(g).offsets())),
        ),
        (
            "chain",
            Box::new(|g: &AccessGraph| g.arrangement_cost(ChainGrowth.place(g).offsets())),
        ),
        (
            "grouped",
            Box::new(|g: &AccessGraph| g.arrangement_cost(GroupedChainGrowth.place(g).offsets())),
        ),
        (
            "grouped+ls",
            Box::new(|g: &AccessGraph| {
                let p = LocalSearch::default().refine_placement_of(&GroupedChainGrowth, g);
                g.arrangement_cost(p.offsets())
            }),
        ),
        (
            "spectral",
            Box::new(|g: &AccessGraph| g.arrangement_cost(Spectral::default().place(g).offsets())),
        ),
    ];

    for n in [6usize, 8, 10, 12, 14] {
        for (label, gen) in [("random", false), ("clustered", true)] {
            let mut opt_sum = 0u64;
            let mut sums = vec![0u64; algs.len()];
            let seeds = 10u64;
            for s in 0..seeds {
                let g = if gen {
                    clustered_graph(n, (n / 4).max(2), 0.8, 0.15, 6, EXPERIMENT_SEED + s)
                } else {
                    random_graph(n, 0.5, 8, EXPERIMENT_SEED + s)
                };
                let (_, opt) = optimal_placement(&g).expect("n within exact limit");
                opt_sum += opt;
                for (i, (_, f)) in algs.iter().enumerate() {
                    sums[i] += f(&g);
                }
            }
            let mut cells = vec![
                label.to_string(),
                n.to_string(),
                (opt_sum / seeds).to_string(),
            ];
            for (i, _) in algs.iter().enumerate() {
                cells.push(gap(sums[i], opt_sum));
            }
            t.row(cells);
        }
    }
    t.print();
}
