//! Recursive-descent JSON parser with line/column error reporting.

use std::error::Error;
use std::fmt;

use super::value::{Number, Object, Value};

/// Maximum nesting depth accepted by the parser (guards against stack
/// overflow on adversarial input).
const MAX_DEPTH: usize = 256;

/// A JSON parse or decode error.
///
/// Parse errors carry the 1-based line and column of the offending
/// input; decode errors (a well-formed value of the wrong shape) carry
/// `line == 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the error, or 0 for decode errors.
    pub line: usize,
    /// 1-based column of the error, or 0 for decode errors.
    pub column: usize,
}

impl JsonError {
    /// A decode (shape) error with no input position.
    pub fn decode(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            line: 0,
            column: 0,
        }
    }

    /// A decode error of the form "expected X, got `<type>`".
    pub fn expected(what: &str, got: &Value) -> Self {
        JsonError::decode(format!("expected {what}, got {}", got.type_name()))
    }

    /// Prefixes the message with a field/element context, preserving
    /// any input position.
    pub fn context(mut self, ctx: &str) -> Self {
        self.message = format!("{ctx}: {}", self.message);
        self
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "JSON error at line {}, column {}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "JSON error: {}", self.message)
        }
    }
}

impl Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing
/// whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] with line/column information on malformed
/// input.
///
/// # Example
///
/// ```
/// use dwm_foundation::json::parse;
///
/// let v = parse(r#"{"shifts": 42}"#)?;
/// assert_eq!(v.as_object().unwrap().get("shifts").unwrap().to_string(), "42");
/// let err = parse("{\"a\": }").unwrap_err();
/// assert_eq!((err.line, err.column), (1, 7));
/// # Ok::<(), dwm_foundation::json::JsonError>(())
/// ```
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{}', got {}",
                b as char,
                self.describe_here()
            )))
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("'{}'", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".into(),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error(format!(
                "expected a JSON value, got {}",
                self.describe_here()
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(obj));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error(format!(
                    "expected object key string, got {}",
                    self.describe_here()
                )));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            obj.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(obj));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected ',' or '}}' in object, got {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected ',' or ']' in array, got {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape advanced pos itself
                        }
                        other => {
                            return Err(self.error(format!(
                                "invalid escape sequence \\{}",
                                other.map(|b| b as char).unwrap_or('?')
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair handling for characters outside the BMP.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate in \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("expected four hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1
            && self.bytes[if self.bytes[start] == b'-' {
                start + 1
            } else {
                start
            }] == b'0'
        {
            return Err(self.error("leading zeros are not allowed"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let num = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|e| self.error(format!("bad number {text:?}: {e}")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            match stripped.parse::<u64>() {
                Ok(0) => Number::U(0),
                _ => Number::I(
                    text.parse::<i64>()
                        .map_err(|_| self.error(format!("integer out of range: {text}")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::U(v),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|e| self.error(format!("bad number {text:?}: {e}")))?,
                ),
            }
        };
        Ok(Value::Num(num))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error(format!("expected a digit, got {}", self.describe_here())));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(Number::U(42)));
        assert_eq!(parse("-7").unwrap(), Value::Num(Number::I(-7)));
        assert_eq!(parse("2.5e3").unwrap(), Value::Num(Number::F(2500.0)));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Value::Num(Number::U(1)));
        assert_eq!(arr[1].as_object().unwrap().get("b").unwrap(), &Value::Null);
        assert_eq!(obj.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn round_trips_own_output() {
        let v = parse(r#"{"s":"a\"b\\c\nd","n":[0.5,-3,18446744073709551615]}"#).unwrap();
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": ]\n}").unwrap_err();
        assert_eq!((err.line, err.column), (2, 8));
        assert!(err.to_string().contains("line 2"));
        let err = parse("[1, 2").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected ',' or ']'"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "[1,]",
            "01",
            "1.2.3",
            "tru",
            "nul",
            "+1",
            "\"\\x\"",
            "[1] [2]",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Value::Str("A".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("😀".into()));
        assert!(parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn big_u64_survives_exactly() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_number().unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(parse(&deep).is_err());
    }
}
