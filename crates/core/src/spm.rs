//! Multi-DBC scratchpad allocation: partition, then place per tape.
//!
//! Extends the single-tape placement of the paper to a scratchpad of
//! `k` independent DBCs (experiment T5): items are partitioned across
//! DBCs by [`Partitioner`], each part is ordered on its tape by any
//! [`PlacementAlgorithm`], and the resulting [`SpmLayout`] is evaluated
//! by replaying the trace with one displacement state per DBC.

use dwm_device::{PortLayout, ShiftStats, Topology, TopologyReplayer};
use dwm_graph::AccessGraph;
use dwm_trace::Trace;

use crate::algorithms::PlacementAlgorithm;
use crate::error::PlacementError;
use crate::partition::{Objective, Partitioner};

/// Where each item lives in a multi-DBC scratchpad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmLayout {
    /// `dbc_of[item] = DBC index`.
    dbc_of: Vec<usize>,
    /// `offset_of[item] = word offset within its DBC`.
    offset_of: Vec<usize>,
    /// Number of DBCs.
    dbcs: usize,
    /// Words per DBC.
    words_per_dbc: usize,
}

dwm_foundation::json_struct!(SpmLayout {
    dbc_of,
    offset_of,
    dbcs,
    words_per_dbc
});

impl SpmLayout {
    /// DBC index of `item`.
    pub fn dbc_of(&self, item: usize) -> usize {
        self.dbc_of[item]
    }

    /// Word offset of `item` within its DBC.
    pub fn offset_of(&self, item: usize) -> usize {
        self.offset_of[item]
    }

    /// Number of DBCs in the layout.
    pub fn dbcs(&self) -> usize {
        self.dbcs
    }

    /// Words per DBC.
    pub fn words_per_dbc(&self) -> usize {
        self.words_per_dbc
    }

    /// Number of items placed.
    pub fn num_items(&self) -> usize {
        self.dbc_of.len()
    }

    /// Replays `trace` against this layout: each DBC keeps its own
    /// displacement state and ports; an access shifts only its item's
    /// DBC. Returns aggregate counters and the per-DBC breakdown.
    ///
    /// # Panics
    ///
    /// Panics if the trace references an item not in the layout.
    pub fn trace_cost(&self, trace: &Trace, ports: &PortLayout) -> (ShiftStats, Vec<ShiftStats>) {
        self.trace_cost_with(trace, ports, &Topology::linear())
    }

    /// Like [`trace_cost`](Self::trace_cost) but replaying each DBC's
    /// tape under an arbitrary [`Topology`] (the track length seen by
    /// the topology is [`words_per_dbc`](Self::words_per_dbc)). With
    /// [`Topology::linear`] this is byte-identical to `trace_cost`.
    ///
    /// # Panics
    ///
    /// Panics if the trace references an item not in the layout.
    pub fn trace_cost_with(
        &self,
        trace: &Trace,
        ports: &PortLayout,
        topology: &Topology,
    ) -> (ShiftStats, Vec<ShiftStats>) {
        let mut tapes: Vec<TopologyReplayer<'_>> = (0..self.dbcs)
            .map(|_| TopologyReplayer::new(topology, ports, self.words_per_dbc))
            .collect();
        let mut per_dbc = vec![ShiftStats::new(); self.dbcs];
        let mut total = ShiftStats::new();
        for a in trace.iter() {
            let item = a.item.index();
            let dbc = self.dbc_of[item];
            let distance = tapes[dbc].access(self.offset_of[item]);
            per_dbc[dbc].record(distance, a.kind.is_write());
            total.record(distance, a.kind.is_write());
        }
        (total, per_dbc)
    }
}

/// Allocator: partitions the access graph across DBCs and orders each
/// part with an intra-tape placement algorithm.
///
/// # Example
///
/// ```
/// use dwm_trace::kernels::Kernel;
/// use dwm_graph::AccessGraph;
/// use dwm_device::PortLayout;
/// use dwm_core::prelude::*;
///
/// let trace = Kernel::MatMul { n: 8, block: 2 }.trace();
/// let alloc = SpmAllocator::new(4, 16); // 4 DBCs × 16 words
/// let layout = alloc.allocate(&trace, &GroupedChainGrowth::default())?;
/// let (stats, _) = layout.trace_cost(&trace, &PortLayout::single());
/// assert!(stats.shifts > 0);
/// # Ok::<(), dwm_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmAllocator {
    /// Number of DBCs.
    pub dbcs: usize,
    /// Words per DBC.
    pub words_per_dbc: usize,
}

impl SpmAllocator {
    /// An allocator for a `dbcs × words_per_dbc` scratchpad.
    pub fn new(dbcs: usize, words_per_dbc: usize) -> Self {
        SpmAllocator {
            dbcs,
            words_per_dbc,
        }
    }

    /// Round-robin baseline: item `i` goes to DBC `i % k` at the next
    /// free offset — what an interleaved address mapping produces.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::CapacityExceeded`] if the items do not
    /// fit.
    pub fn allocate_round_robin(&self, num_items: usize) -> Result<SpmLayout, PlacementError> {
        if num_items > self.dbcs * self.words_per_dbc {
            return Err(PlacementError::CapacityExceeded {
                items: num_items,
                capacity: self.dbcs * self.words_per_dbc,
            });
        }
        let mut dbc_of = vec![0usize; num_items];
        let mut offset_of = vec![0usize; num_items];
        for i in 0..num_items {
            dbc_of[i] = i % self.dbcs;
            offset_of[i] = i / self.dbcs;
        }
        Ok(SpmLayout {
            dbc_of,
            offset_of,
            dbcs: self.dbcs,
            words_per_dbc: self.words_per_dbc,
        })
    }

    /// Full allocation: partition with the anti-affinity objective
    /// ([`Objective::MinimizeInternal`]) — since independently shifting
    /// tapes make cross-DBC transitions free, temporally adjacent items
    /// are spread across DBCs — then order each DBC by the access graph
    /// of its *projected* trace.
    ///
    /// The projection step is the crucial subtlety: once accesses are
    /// split across tapes, the consecutive pairs a tape actually sees
    /// are pairs of *its own* accesses, which may be far apart in the
    /// global trace. Ordering on the projected access graph optimizes
    /// exactly the cost the tape pays.
    ///
    /// # Errors
    ///
    /// Propagates partitioning errors (zero parts, capacity overflow).
    pub fn allocate(
        &self,
        trace: &Trace,
        intra: &dyn PlacementAlgorithm,
    ) -> Result<SpmLayout, PlacementError> {
        self.allocate_with_objective(trace, intra, Objective::MinimizeInternal)
    }

    /// Like [`allocate`](Self::allocate) but with an explicit
    /// partitioning objective (the SPM ablation experiment compares
    /// both).
    ///
    /// # Errors
    ///
    /// Propagates partitioning errors (zero parts, capacity overflow).
    pub fn allocate_with_objective(
        &self,
        trace: &Trace,
        intra: &dyn PlacementAlgorithm,
        objective: Objective,
    ) -> Result<SpmLayout, PlacementError> {
        let graph = AccessGraph::from_trace(trace);
        let partition = Partitioner::new(self.dbcs, self.words_per_dbc)
            .with_objective(objective)
            .partition(&graph)?;
        let n = graph.num_items();
        let mut dbc_of = vec![0usize; n];
        let mut offset_of = vec![0usize; n];

        // Project the trace onto each DBC: the subsequence of accesses
        // whose items live there, with items renumbered locally.
        let mut local_id = vec![usize::MAX; n];
        let mut projected: Vec<Vec<u32>> = vec![Vec::new(); partition.num_parts()];
        for p in 0..partition.num_parts() {
            for (li, &item) in partition.part(p).iter().enumerate() {
                local_id[item] = li;
                dbc_of[item] = p;
            }
        }
        for a in trace.iter() {
            let item = a.item.index();
            projected[dbc_of[item]].push(local_id[item] as u32);
        }

        // `p` indexes the partition and `projected` in lockstep.
        #[allow(clippy::needless_range_loop)]
        for p in 0..partition.num_parts() {
            let items = partition.part(p);
            if items.is_empty() {
                continue;
            }
            // Access graph of the projected subsequence. Local ids may
            // exceed the subsequence's own alphabet, so size the graph
            // by the part's item count.
            let mut sub = AccessGraph::with_items(items.len());
            for (li, &item) in items.iter().enumerate() {
                sub.set_frequency(li, graph.frequency(item));
            }
            for pair in projected[p].windows(2) {
                let (u, v) = (pair[0] as usize, pair[1] as usize);
                if u != v {
                    sub.add_weight(u, v, 1);
                }
            }
            let placement = intra.place(&sub);
            for (li, &item) in items.iter().enumerate() {
                offset_of[item] = placement.offset_of(li);
            }
        }
        Ok(SpmLayout {
            dbc_of,
            offset_of,
            dbcs: self.dbcs,
            words_per_dbc: self.words_per_dbc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GroupedChainGrowth, OrderOfAppearance};
    use dwm_trace::kernels::Kernel;

    fn setup() -> (Trace, AccessGraph) {
        let t = Kernel::MatMul { n: 8, block: 2 }.trace();
        let g = AccessGraph::from_trace(&t);
        (t, g)
    }

    #[test]
    fn round_robin_interleaves() {
        let l = SpmAllocator::new(4, 8).allocate_round_robin(16).unwrap();
        assert_eq!(l.dbc_of(0), 0);
        assert_eq!(l.dbc_of(5), 1);
        assert_eq!(l.offset_of(5), 1);
        assert_eq!(l.dbcs(), 4);
        assert_eq!(l.num_items(), 16);
    }

    #[test]
    fn round_robin_rejects_overflow() {
        assert!(matches!(
            SpmAllocator::new(2, 4).allocate_round_robin(9),
            Err(PlacementError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn allocate_respects_geometry() {
        let (t, _g) = setup();
        let layout = SpmAllocator::new(4, 16)
            .allocate(&t, &GroupedChainGrowth)
            .unwrap();
        let mut used = std::collections::HashSet::new();
        for item in 0..layout.num_items() {
            assert!(layout.dbc_of(item) < 4);
            assert!(layout.offset_of(item) < 16);
            assert!(
                used.insert((layout.dbc_of(item), layout.offset_of(item))),
                "slot collision"
            );
        }
    }

    #[test]
    fn affinity_allocation_beats_round_robin() {
        let (t, g) = setup();
        let alloc = SpmAllocator::new(4, 16);
        let smart = alloc.allocate(&t, &GroupedChainGrowth).unwrap();
        let rr = alloc.allocate_round_robin(g.num_items()).unwrap();
        let ports = PortLayout::single();
        let (smart_stats, _) = smart.trace_cost(&t, &ports);
        let (rr_stats, _) = rr.trace_cost(&t, &ports);
        assert!(
            smart_stats.shifts < rr_stats.shifts,
            "smart {} vs rr {}",
            smart_stats.shifts,
            rr_stats.shifts
        );
    }

    #[test]
    fn per_dbc_stats_sum_to_total() {
        let (t, _g) = setup();
        let layout = SpmAllocator::new(4, 16)
            .allocate(&t, &OrderOfAppearance)
            .unwrap();
        let (total, per_dbc) = layout.trace_cost(&t, &PortLayout::single());
        let sum: u64 = per_dbc.iter().map(|s| s.shifts).sum();
        assert_eq!(total.shifts, sum);
        let accesses: u64 = per_dbc.iter().map(|s| s.accesses()).sum();
        assert_eq!(total.accesses(), accesses);
    }

    #[test]
    fn trace_cost_with_linear_matches_legacy_and_ring_differs() {
        let (t, _g) = setup();
        let layout = SpmAllocator::new(4, 16)
            .allocate(&t, &GroupedChainGrowth)
            .unwrap();
        let ports = PortLayout::single();
        let (legacy, legacy_per) = layout.trace_cost(&t, &ports);
        let (linear, linear_per) = layout.trace_cost_with(&t, &ports, &Topology::linear());
        assert_eq!(legacy, linear);
        assert_eq!(legacy_per, linear_per);
        let ring = Topology::parse("ring").unwrap();
        let (ring_stats, _) = layout.trace_cost_with(&t, &ports, &ring);
        assert!(ring_stats.shifts <= legacy.shifts);
        assert_eq!(ring_stats.accesses(), legacy.accesses());
    }

    #[test]
    fn single_dbc_spm_matches_single_tape_model() {
        let (t, g) = setup();
        let layout = SpmAllocator::new(1, 64)
            .allocate(&t, &OrderOfAppearance)
            .unwrap();
        let (stats, _) = layout.trace_cost(&t, &PortLayout::single());
        use crate::cost::CostModel;
        let single = crate::cost::SinglePortCost::new()
            .trace_cost(&crate::Placement::identity(g.num_items()), &t)
            .stats;
        assert_eq!(stats.shifts, single.shifts);
    }
}
