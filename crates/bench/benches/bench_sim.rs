//! F6/V1: bit-level simulator replay throughput vs. the analytic model.

use dwm_bench::matmul_fixture;
use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_device::DeviceConfig;
use dwm_foundation::bench::{black_box, Harness};
use dwm_sim::SpmSimulator;

fn main() {
    let (trace, graph) = matmul_fixture();
    let placement = Hybrid::default().place(&graph);
    let config = DeviceConfig::builder()
        .domains_per_track(graph.num_items())
        .tracks_per_dbc(32)
        .build()
        .expect("valid");

    let mut h = Harness::from_env("sim");
    let model = SinglePortCost::new();
    h.bench("replay/analytic", || {
        model.trace_cost(black_box(&placement), &trace)
    });
    h.bench("replay/bit_level_sim", || {
        let mut sim = SpmSimulator::new(&config, &placement).expect("fits");
        sim.run(black_box(&trace)).expect("replay")
    });
    h.finish();
}
