//! Analytic topology replay: a [`SimReport`] without the bit-level
//! device.
//!
//! The bit-level [`SpmSimulator`](crate::SpmSimulator) physically moves
//! domains and is inherently *linear* — a [`Dbc`](dwm_device::Dbc)'s
//! shift register models a finite 1D tape. Non-linear track geometries
//! (ring, 2D grid, PIRM) are replayed analytically instead: one
//! [`TopologyReplayer`] per DBC walks the trace and counts weighted
//! shift steps, and the report is projected through
//! [`CostProjection::with_topology`] so energy carries the topology's
//! per-step weight.
//!
//! For [`Topology::linear`] this replay reproduces the bit-level
//! simulator's counters and projections exactly (pinned by tests) — the
//! same cross-validation contract the analytic cost models in
//! `dwm-core` honour.

use dwm_core::spm::SpmLayout;
use dwm_core::Placement;
use dwm_device::{CostProjection, DeviceConfig, ShiftStats, Topology, TopologyReplayer};
use dwm_trace::Trace;

use crate::report::SimReport;
use crate::simulator::SimError;

/// Analytically replays `trace` on a single-DBC device under
/// `topology`, returning the same report shape as a bit-level run
/// (integrity checking does not apply: no data is moved, so
/// `integrity_errors` and `slip_events` are zero).
///
/// # Errors
///
/// Returns [`SimError::GeometryMismatch`] if the config has more than
/// one DBC or the placement does not fit, and [`SimError::UnknownItem`]
/// if the trace references an item outside the placement.
pub fn topology_report(
    config: &DeviceConfig,
    topology: &Topology,
    placement: &Placement,
    trace: &Trace,
) -> Result<SimReport, SimError> {
    if config.dbcs() != 1 {
        return Err(SimError::GeometryMismatch {
            reason: format!(
                "config has {} DBCs; single-tape replay needs exactly 1",
                config.dbcs()
            ),
        });
    }
    if placement.num_items() > config.words_per_dbc() {
        return Err(SimError::GeometryMismatch {
            reason: format!(
                "{} items exceed the {}-word DBC",
                placement.num_items(),
                config.words_per_dbc()
            ),
        });
    }
    let slot_of: Vec<(usize, usize)> = (0..placement.num_items())
        .map(|i| (0usize, placement.offset_of(i)))
        .collect();
    replay(config, topology, &slot_of, trace)
}

/// Analytically replays `trace` on a multi-DBC layout under `topology`;
/// each DBC keeps its own tape state.
///
/// # Errors
///
/// Returns [`SimError::GeometryMismatch`] if the layout's geometry
/// disagrees with the device configuration, and
/// [`SimError::UnknownItem`] if the trace references an item outside
/// the layout.
pub fn topology_layout_report(
    config: &DeviceConfig,
    topology: &Topology,
    layout: &SpmLayout,
    trace: &Trace,
) -> Result<SimReport, SimError> {
    if layout.dbcs() != config.dbcs() || layout.words_per_dbc() != config.words_per_dbc() {
        return Err(SimError::GeometryMismatch {
            reason: format!(
                "layout is {}×{} but device is {}×{}",
                layout.dbcs(),
                layout.words_per_dbc(),
                config.dbcs(),
                config.words_per_dbc()
            ),
        });
    }
    let slot_of: Vec<(usize, usize)> = (0..layout.num_items())
        .map(|i| (layout.dbc_of(i), layout.offset_of(i)))
        .collect();
    replay(config, topology, &slot_of, trace)
}

fn replay(
    config: &DeviceConfig,
    topology: &Topology,
    slot_of: &[(usize, usize)],
    trace: &Trace,
) -> Result<SimReport, SimError> {
    let ports = config.port_layout();
    let len = config.words_per_dbc();
    let mut tapes: Vec<TopologyReplayer<'_>> = (0..config.dbcs())
        .map(|_| TopologyReplayer::new(topology, ports, len))
        .collect();
    let mut per_dbc = vec![ShiftStats::new(); config.dbcs()];
    let mut total = ShiftStats::new();
    for a in trace.iter() {
        let item = a.item.index();
        let &(dbc, offset) = slot_of.get(item).ok_or(SimError::UnknownItem {
            item,
            items: slot_of.len(),
        })?;
        let distance = tapes[dbc].access(offset);
        per_dbc[dbc].record(distance, a.kind.is_write());
        total.record(distance, a.kind.is_write());
    }
    let projection = CostProjection::with_topology(config, topology);
    Ok(SimReport {
        stats: total,
        per_dbc,
        latency: projection.latency(&total),
        energy: projection.energy(&total),
        integrity_errors: 0,
        slip_events: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpmSimulator;
    use dwm_core::spm::SpmAllocator;
    use dwm_core::{GroupedChainGrowth, PlacementAlgorithm};
    use dwm_graph::AccessGraph;
    use dwm_trace::kernels::Kernel;

    fn config(l: usize) -> DeviceConfig {
        DeviceConfig::builder()
            .domains_per_track(l)
            .tracks_per_dbc(32)
            .build()
            .unwrap()
    }

    #[test]
    fn linear_analytic_replay_equals_bit_level_sim_report() {
        for kernel in Kernel::suite() {
            let trace = kernel.trace();
            let n = trace.num_items().max(1);
            let graph = AccessGraph::from_trace(&trace);
            let placement = GroupedChainGrowth.place(&graph);
            let cfg = config(n);
            let bit_level = SpmSimulator::new(&cfg, &placement)
                .unwrap()
                .run(&trace)
                .unwrap();
            let analytic = topology_report(&cfg, &Topology::linear(), &placement, &trace).unwrap();
            assert_eq!(analytic, bit_level, "diverged on {}", kernel.name());
        }
    }

    #[test]
    fn linear_layout_replay_equals_bit_level_sim_report() {
        let trace = Kernel::MatMul { n: 8, block: 2 }.trace();
        let layout = SpmAllocator::new(4, 16)
            .allocate(&trace, &GroupedChainGrowth)
            .unwrap();
        let cfg = DeviceConfig::builder()
            .dbcs(4)
            .domains_per_track(16)
            .tracks_per_dbc(32)
            .build()
            .unwrap();
        let bit_level = SpmSimulator::with_layout(&cfg, &layout)
            .unwrap()
            .run(&trace)
            .unwrap();
        let analytic = topology_layout_report(&cfg, &Topology::linear(), &layout, &trace).unwrap();
        assert_eq!(analytic, bit_level);
    }

    #[test]
    fn ring_replay_shifts_less_and_pirm_costs_more_energy() {
        let ids: Vec<u32> = (0..64).flat_map(|_| [0u32, 31]).collect();
        let trace = Trace::from_ids(ids);
        let placement = Placement::identity(32);
        let cfg = config(32);
        let linear = topology_report(&cfg, &Topology::linear(), &placement, &trace).unwrap();
        let ring =
            topology_report(&cfg, &Topology::parse("ring").unwrap(), &placement, &trace).unwrap();
        assert!(ring.stats.shifts < linear.stats.shifts);
        let pirm = topology_report(
            &cfg,
            &Topology::parse("pirm:4").unwrap(),
            &placement,
            &trace,
        )
        .unwrap();
        // PIRM quantizes to windows (fewer counted steps) but each step
        // carries a 1.5× energy premium relative to its own shift count.
        let base = CostProjection::new(&cfg).energy(&pirm.stats).shift_pj;
        assert!((pirm.energy.shift_pj - base * 1.5).abs() < 1e-9);
    }

    #[test]
    fn geometry_and_item_errors_match_simulator_contract() {
        let cfg = config(8);
        let p = Placement::identity(4);
        assert!(matches!(
            topology_report(
                &cfg,
                &Topology::linear(),
                &Placement::identity(100),
                &Trace::new()
            ),
            Err(SimError::GeometryMismatch { .. })
        ));
        assert!(matches!(
            topology_report(&cfg, &Topology::linear(), &p, &Trace::from_ids([9u32])),
            Err(SimError::UnknownItem { item: 9, items: 4 })
        ));
        let multi = DeviceConfig::builder().dbcs(2).build().unwrap();
        assert!(matches!(
            topology_report(&multi, &Topology::linear(), &p, &Trace::new()),
            Err(SimError::GeometryMismatch { .. })
        ));
    }
}
