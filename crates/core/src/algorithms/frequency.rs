use dwm_graph::AccessGraph;

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Classic organ-pipe frequency placement.
///
/// Items are sorted by access frequency; the hottest item takes the
/// centre offset and subsequent items alternate left/right, producing
/// the "organ pipe" profile that is provably optimal for *independent*
/// (memoryless) accesses on a linear-seek store. It ignores adjacency
/// structure entirely, which is exactly the gap the paper's
/// adjacency-driven algorithms close — organ pipe is the strongest
/// *prior-work* baseline in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrganPipe;

impl OrganPipe {
    /// Arranges item indices sorted by descending weight into the
    /// organ-pipe order (hottest centre, alternating outward). Exposed
    /// for reuse by [`GroupedChainGrowth`](crate::GroupedChainGrowth),
    /// which applies the same profile at chain granularity.
    pub(crate) fn pipe_order<T>(sorted_desc: Vec<T>) -> Vec<T> {
        // Place elements hottest-first into a deque: alternately front
        // and back, then read off left-to-right. The hottest lands in
        // the middle, weights decay toward both ends.
        let mut left: Vec<T> = Vec::new();
        let mut right: Vec<T> = Vec::new();
        for (i, x) in sorted_desc.into_iter().enumerate() {
            if i % 2 == 0 {
                right.push(x);
            } else {
                left.push(x);
            }
        }
        left.reverse();
        left.extend(right);
        left
    }
}

impl PlacementAlgorithm for OrganPipe {
    fn name(&self) -> String {
        "organ-pipe".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut items: Vec<usize> = (0..graph.num_items()).collect();
        // Descending frequency, ties by index for determinism.
        items.sort_by_key(|&i| (std::cmp::Reverse(graph.frequency(i)), i));
        Placement::from_order(Self::pipe_order(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_trace::Trace;

    #[test]
    fn pipe_order_centres_the_heaviest() {
        let order = OrganPipe::pipe_order(vec![5, 4, 3, 2, 1]); // weights desc
                                                                // Middle element must be the heaviest (value 5).
        assert_eq!(order[order.len() / 2], 5);
        // Weights increase toward the centre from both ends.
        let mid = order.len() / 2;
        assert!(order[..=mid].windows(2).all(|w| w[0] <= w[1]));
        assert!(order[mid..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn hottest_item_sits_centre_of_tape() {
        let t = Trace::from_ids([0u32, 1, 0, 2, 0, 3, 0, 4, 0]);
        let g = AccessGraph::from_trace(&t);
        let p = OrganPipe.place(&g);
        let centre = p.num_items() / 2;
        assert_eq!(p.item_at(centre), 0);
    }

    #[test]
    fn organ_pipe_beats_naive_on_skewed_independent_accesses() {
        // Hot item 4 accessed between every other access; naive puts it
        // at offset 4, organ pipe in the middle.
        let ids = [4u32, 0, 4, 1, 4, 2, 4, 3, 4, 0, 4, 1, 4, 2, 4, 3, 4];
        let t = Trace::from_ids(ids).normalize();
        let g = AccessGraph::from_trace(&t);
        let naive = g.arrangement_cost(Placement::identity(5).offsets());
        let pipe = g.arrangement_cost(OrganPipe.place(&g).offsets());
        assert!(pipe <= naive);
    }

    #[test]
    fn empty_and_single_item_graphs() {
        assert_eq!(OrganPipe.place(&AccessGraph::with_items(0)).num_items(), 0);
        let p = OrganPipe.place(&AccessGraph::with_items(1));
        assert_eq!(p.item_at(0), 0);
    }
}
