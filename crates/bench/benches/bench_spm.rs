//! T5: multi-DBC scratchpad allocation throughput.

use dwm_bench::matmul_fixture;
use dwm_core::partition::Objective;
use dwm_core::spm::SpmAllocator;
use dwm_core::GroupedChainGrowth;
use dwm_foundation::bench::{black_box, Harness};

fn main() {
    let (trace, _) = matmul_fixture();
    let alloc = SpmAllocator::new(4, 16);
    let mut h = Harness::from_env("spm_allocation");
    h.bench("spm_allocation/round_robin", || {
        alloc
            .allocate_round_robin(black_box(&trace).num_items())
            .expect("fits")
    });
    h.bench("spm_allocation/affinity", || {
        alloc
            .allocate_with_objective(
                black_box(&trace),
                &GroupedChainGrowth,
                Objective::MinimizeExternal,
            )
            .expect("fits")
    });
    h.bench("spm_allocation/anti_affinity", || {
        alloc
            .allocate(black_box(&trace), &GroupedChainGrowth)
            .expect("fits")
    });
    h.finish();
}
