//! The benchmark regression gate: compares a fresh benchmark run
//! against the checked-in baseline (`results/bench_baseline.json`) and
//! reports any benchmark whose median slowed down beyond a threshold.
//!
//! The comparison logic lives here (rather than in the
//! [`bench_compare`](../../src/bin/bench_compare.rs) binary) so the
//! threshold semantics are unit-testable against fixture JSON —
//! `scripts/bench_gate.sh` is then a thin wrapper.
//!
//! Baseline format: `{"entries": [{"id": "...", "median_ns": ...}]}`
//! with ids of the form `<suite>/<bench id>`. Re-baseline with
//! `scripts/bench_gate.sh --rebaseline` after intentional performance
//! changes (and commit the result).

use dwm_foundation::json::{parse, Number, Object, Value};

/// One benchmark median, keyed by `<suite>/<bench id>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Suite-qualified benchmark id.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

/// A baseline/current pair for one benchmark id.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Suite-qualified benchmark id.
    pub id: String,
    /// Median in the baseline.
    pub baseline_ns: f64,
    /// Median in the current run.
    pub current_ns: f64,
}

impl Comparison {
    /// `current / baseline` — 1.0 is unchanged, 2.0 is twice as slow.
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns <= 0.0 {
            1.0
        } else {
            self.current_ns / self.baseline_ns
        }
    }

    /// Whether the current median exceeds the baseline by more than
    /// `threshold` (0.25 = fail when >25% slower).
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() > 1.0 + threshold
    }
}

/// Outcome of matching a current run against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateReport {
    /// Ids present in both, with their medians.
    pub comparisons: Vec<Comparison>,
    /// Baseline ids absent from the current run (renamed or filtered
    /// benchmarks — re-baseline to silence).
    pub missing: Vec<String>,
    /// Current ids absent from the baseline (new benchmarks —
    /// re-baseline to start tracking them).
    pub added: Vec<String>,
}

impl GateReport {
    /// The comparisons that regressed beyond `threshold`.
    pub fn regressions(&self, threshold: f64) -> Vec<&Comparison> {
        self.comparisons
            .iter()
            .filter(|c| c.regressed(threshold))
            .collect()
    }
}

fn entry_list(value: &Value, key: &str, id_prefix: &str) -> Result<Vec<Entry>, String> {
    let obj = value
        .as_object()
        .ok_or_else(|| format!("expected a JSON object with '{key}'"))?;
    let items = obj
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing '{key}' array"))?;
    items
        .iter()
        .map(|item| {
            let o = item.as_object().ok_or("entry is not an object")?;
            let id = o
                .get("id")
                .and_then(Value::as_str)
                .ok_or("entry without string 'id'")?;
            let median_ns = o
                .get("median_ns")
                .and_then(Value::as_number)
                .ok_or("entry without numeric 'median_ns'")?
                .as_f64();
            Ok(Entry {
                id: format!("{id_prefix}{id}"),
                median_ns,
            })
        })
        .collect::<Result<Vec<_>, &str>>()
        .map_err(str::to_owned)
}

/// Parses one suite report as written by
/// [`Harness::finish`](dwm_foundation::bench::Harness::finish),
/// qualifying each id with the suite name.
///
/// # Errors
///
/// Returns a description of the first structural problem (not JSON, no
/// `suite`/`results`, malformed result entries).
pub fn parse_suite_report(text: &str) -> Result<Vec<Entry>, String> {
    let value = parse(text).map_err(|e| e.to_string())?;
    let suite = value
        .as_object()
        .and_then(|o| o.get("suite"))
        .and_then(Value::as_str)
        .ok_or("report without string 'suite'")?
        .to_owned();
    entry_list(&value, "results", &format!("{suite}/"))
}

/// Parses a baseline file (`{"entries": [...]}`).
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_baseline(text: &str) -> Result<Vec<Entry>, String> {
    let value = parse(text).map_err(|e| e.to_string())?;
    entry_list(&value, "entries", "")
}

/// Serializes entries as a baseline file (pretty JSON, trailing
/// newline, ids sorted so diffs are stable).
pub fn baseline_json(entries: &[Entry]) -> String {
    let mut sorted: Vec<&Entry> = entries.iter().collect();
    sorted.sort_by(|a, b| a.id.cmp(&b.id));
    let items: Vec<Value> = sorted
        .into_iter()
        .map(|e| {
            let mut o = Object::new();
            o.insert("id", Value::Str(e.id.clone()));
            o.insert("median_ns", Value::Num(Number::F(e.median_ns)));
            Value::Obj(o)
        })
        .collect();
    let mut root = Object::new();
    root.insert("entries", Value::Arr(items));
    let mut text = Value::Obj(root).to_pretty();
    text.push('\n');
    text
}

/// Matches `current` against `baseline` by id.
pub fn compare(baseline: &[Entry], current: &[Entry]) -> GateReport {
    let mut report = GateReport::default();
    for b in baseline {
        match current.iter().find(|c| c.id == b.id) {
            Some(c) => report.comparisons.push(Comparison {
                id: b.id.clone(),
                baseline_ns: b.median_ns,
                current_ns: c.median_ns,
            }),
            None => report.missing.push(b.id.clone()),
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            report.added.push(c.id.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pairs: &[(&str, f64)]) -> Vec<Entry> {
        pairs
            .iter()
            .map(|&(id, median_ns)| Entry {
                id: id.into(),
                median_ns,
            })
            .collect()
    }

    #[test]
    fn suite_report_is_parsed_with_qualified_ids() {
        // Shape produced by Harness::to_json (extra fields ignored).
        let text = r#"{
            "suite": "sweep",
            "results": [
                {"id": "replay/16", "iters_per_sample": 4, "samples": 3,
                 "min_ns": 9.0, "median_ns": 10.0, "p95_ns": 12.0, "mean_ns": 10.5},
                {"id": "replay/64", "median_ns": 40.0}
            ]
        }"#;
        let entries = parse_suite_report(text).unwrap();
        assert_eq!(
            entries,
            vec![
                Entry {
                    id: "sweep/replay/16".into(),
                    median_ns: 10.0
                },
                Entry {
                    id: "sweep/replay/64".into(),
                    median_ns: 40.0
                },
            ]
        );
    }

    #[test]
    fn malformed_reports_are_rejected_with_reasons() {
        assert!(parse_suite_report("nonsense").is_err());
        assert!(parse_suite_report(r#"{"results": []}"#)
            .unwrap_err()
            .contains("suite"));
        assert!(parse_suite_report(r#"{"suite": "s"}"#)
            .unwrap_err()
            .contains("results"));
        assert!(
            parse_suite_report(r#"{"suite": "s", "results": [{"id": "x"}]}"#)
                .unwrap_err()
                .contains("median_ns")
        );
    }

    #[test]
    fn baseline_round_trips_sorted() {
        let text = baseline_json(&entries(&[("b/2", 2.0), ("a/1", 1.5)]));
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back, entries(&[("a/1", 1.5), ("b/2", 2.0)]));
    }

    #[test]
    fn threshold_is_strictly_greater_than() {
        let c = Comparison {
            id: "x".into(),
            baseline_ns: 100.0,
            current_ns: 125.0,
        };
        // Exactly 25% slower is NOT a regression at threshold 0.25 —
        // the gate fails only strictly beyond it.
        assert!(!c.regressed(0.25));
        let c = Comparison {
            current_ns: 125.1,
            ..c
        };
        assert!(c.regressed(0.25));
        // Speedups never trip the gate.
        let c = Comparison {
            current_ns: 10.0,
            ..c
        };
        assert!(!c.regressed(0.0));
    }

    #[test]
    fn compare_classifies_matched_missing_and_added() {
        let baseline = entries(&[("s/a", 100.0), ("s/gone", 50.0)]);
        let current = entries(&[("s/a", 90.0), ("s/new", 5.0)]);
        let report = compare(&baseline, &current);
        assert_eq!(
            report.comparisons,
            vec![Comparison {
                id: "s/a".into(),
                baseline_ns: 100.0,
                current_ns: 90.0
            }]
        );
        assert_eq!(report.missing, vec!["s/gone".to_string()]);
        assert_eq!(report.added, vec!["s/new".to_string()]);
        assert!(report.regressions(0.25).is_empty());
    }

    #[test]
    fn regressions_filter_by_threshold_from_fixture_json() {
        let baseline = parse_baseline(
            r#"{"entries": [
                {"id": "s/fast", "median_ns": 100.0},
                {"id": "s/slow", "median_ns": 100.0},
                {"id": "s/awful", "median_ns": 100.0}
            ]}"#,
        )
        .unwrap();
        let current = entries(&[("s/fast", 80.0), ("s/slow", 130.0), ("s/awful", 300.0)]);
        let report = compare(&baseline, &current);
        let ids = |th: f64| -> Vec<&str> {
            report
                .regressions(th)
                .iter()
                .map(|c| c.id.as_str())
                .collect()
        };
        assert_eq!(ids(0.25), vec!["s/slow", "s/awful"]);
        assert_eq!(ids(0.5), vec!["s/awful"]);
        assert_eq!(ids(3.0), Vec::<&str>::new());
    }

    #[test]
    fn zero_baseline_never_divides() {
        let c = Comparison {
            id: "z".into(),
            baseline_ns: 0.0,
            current_ns: 50.0,
        };
        assert_eq!(c.ratio(), 1.0);
        assert!(!c.regressed(0.25));
    }
}
