//! Graceful-shutdown signal latch (SIGINT / SIGTERM).
//!
//! The daemon must drain in-flight requests when the operator stops it
//! — `kill -TERM` from the CI smoke job, ctrl-c at a terminal — so the
//! handler does the only async-signal-safe thing possible: set an
//! atomic flag. The serve loop polls [`triggered`] and runs the normal
//! graceful shutdown path from regular (non-signal) context.
//!
//! This is the workspace's single `unsafe` FFI binding outside
//! `foundation`; non-Unix builds get a no-op latch so the crate stays
//! portable (shutdown then requires in-process
//! [`crate::ServeHandle::shutdown`]).

use std::sync::atomic::{AtomicBool, Ordering};

static FLAG: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been received since [`install`].
pub fn triggered() -> bool {
    FLAG.load(Ordering::SeqCst)
}

/// Resets the latch (tests re-use the process).
pub fn reset() {
    FLAG.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::FLAG;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        // POSIX `signal(2)`. Using `Option<SigHandler>` keeps the
        // binding a plain function-pointer type (no integer casts), and
        // `None` is the NULL previous-handler case.
        fn signal(signum: i32, handler: SigHandler) -> Option<SigHandler>;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: store to an atomic.
        FLAG.store(true, Ordering::SeqCst);
    }

    /// Hooks SIGINT and SIGTERM to set the latch.
    pub fn install() {
        // SAFETY: `signal` is the POSIX C function; `on_signal` is an
        // `extern "C" fn(i32)` whose body performs a single atomic
        // store, which is async-signal-safe. Replacing the process
        // disposition for SIGINT/SIGTERM is the binary's prerogative
        // (the daemon owns the process).
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal hooks on non-Unix targets; the latch stays false.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    // One test only: the latch is process-global state, so parallel
    // test threads poking it would race each other.
    #[test]
    fn latch_clears_resets_and_catches_sigterm() {
        install();
        reset();
        assert!(!triggered());
        #[cfg(unix)]
        {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            // SAFETY: `raise` delivers SIGTERM to this process; our
            // handler (installed above) turns it into an atomic store
            // instead of the default termination disposition.
            unsafe {
                raise(15);
            }
            assert!(triggered());
            reset();
        }
    }
}
