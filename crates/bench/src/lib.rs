//! Shared fixtures for the benchmark suites, which run on the
//! in-tree `dwm_foundation::bench` timing harness.
//!
//! One bench target per experiment family (see `DESIGN.md` §4):
//!
//! | Bench target | Experiments | What it measures |
//! |--------------|-------------|------------------|
//! | `bench_placement` | T3/F3 | placement construction per algorithm per kernel |
//! | `bench_exact` | T4 | exact subset-DP optimum vs. instance size |
//! | `bench_sweep` | F4/F5 | cost-model replay across tape lengths and port counts |
//! | `bench_sim` | F6/V1 | bit-level simulator replay throughput |
//! | `bench_runtime` | F7 | algorithm scaling with item count |
//! | `bench_spm` | T5 | multi-DBC allocation |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use dwm_graph::AccessGraph;
use dwm_trace::kernels::Kernel;
use dwm_trace::synth::{MarkovGen, TraceGenerator};
use dwm_trace::Trace;

/// Seed used by all benchmark fixtures.
pub const BENCH_SEED: u64 = 0xBE_EC;

/// A small representative kernel workload (matmul).
pub fn matmul_fixture() -> (Trace, AccessGraph) {
    let t = Kernel::MatMul { n: 8, block: 2 }.trace();
    let g = AccessGraph::from_trace(&t);
    (t, g)
}

/// The full kernel suite with prebuilt graphs.
pub fn suite_fixture() -> Vec<(String, Trace, AccessGraph)> {
    Kernel::suite()
        .into_iter()
        .map(|k| {
            let t = k.trace();
            let g = AccessGraph::from_trace(&t);
            (k.name().to_string(), t, g)
        })
        .collect()
}

/// A Markov-clustered workload over `n` items with `20 n` accesses.
pub fn markov_fixture(n: usize) -> (Trace, AccessGraph) {
    let t = MarkovGen::new(n, (n / 8).max(2), BENCH_SEED)
        .generate(20 * n)
        .normalize();
    let g = AccessGraph::from_trace(&t);
    (t, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        let (t, g) = matmul_fixture();
        assert_eq!(t.num_items(), g.num_items());
        assert_eq!(suite_fixture().len(), 8);
        let (t, g) = markov_fixture(64);
        assert_eq!(t.num_items(), g.num_items());
        assert_eq!(t.len(), 20 * 64);
    }
}
