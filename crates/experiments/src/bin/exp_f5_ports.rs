//! Experiment F5: sensitivity to the number of access ports.
//!
//! More ports shrink shift distances for *any* placement (at an area
//! and padding cost, see T1b); the question is whether placement still
//! matters. We replay the kernel suite under 1/2/4/8 evenly spaced
//! ports and report aggregate shifts of naive vs. the hybrid pipeline and
//! the surviving reduction.

use dwm_core::cost::{CostModel, MultiPortCost};
use dwm_core::{Hybrid, OrderOfAppearance, PlacementAlgorithm, TraceRefiner};
use dwm_experiments::{percent_reduction, workload_suite, Table};
use dwm_foundation::par;
use dwm_graph::AccessGraph;

fn main() {
    println!("Figure 5: total shifts (kernel suite) vs. port count, L = 64\n");
    let mut t = Table::new(["ports", "naive", "hybrid", "hybrid+tr", "reduction (tr)"]);
    let workloads = workload_suite();
    // port-count × workload cells are all independent; fan the port
    // rows out and let the inner placement portfolio parallelize too.
    let port_counts = [1usize, 2, 4, 8];
    let rows = par::par_map(&port_counts, |&ports| {
        let model = MultiPortCost::evenly_spaced(ports, 64);
        let mut naive_total = 0u64;
        let mut hybrid_total = 0u64;
        let mut refined_total = 0u64;
        for (_, trace) in &workloads {
            let graph = AccessGraph::from_trace(trace);
            naive_total += model
                .trace_cost(&OrderOfAppearance.place(&graph), trace)
                .stats
                .shifts;
            let hybrid = Hybrid::default().place(&graph);
            hybrid_total += model.trace_cost(&hybrid, trace).stats.shifts;
            // Model-aware retuning: repair the single-port bias for
            // this port geometry (see core::algorithms::TraceRefiner).
            let mut refined = hybrid;
            TraceRefiner::default().refine(&model, trace, &mut refined);
            refined_total += model.trace_cost(&refined, trace).stats.shifts;
        }
        [
            ports.to_string(),
            naive_total.to_string(),
            hybrid_total.to_string(),
            refined_total.to_string(),
            percent_reduction(naive_total, refined_total),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print();
}
