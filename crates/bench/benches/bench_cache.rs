//! T6: DWM cache replay throughput per policy stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dwm_bench::BENCH_SEED;
use dwm_cache::{CacheConfig, DwmCache, PromotionPolicy, ReplacementPolicy};
use dwm_trace::synth::{TraceGenerator, ZipfGen};

fn cache_policies(c: &mut Criterion) {
    let trace = ZipfGen::new(512, BENCH_SEED).generate(20_000);
    let stacks: Vec<(&str, CacheConfig)> = vec![
        ("lru", CacheConfig::new(8, 8).expect("valid")),
        (
            "sa_lru",
            CacheConfig::new(8, 8)
                .expect("valid")
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 }),
        ),
        (
            "sa_lru_promo",
            CacheConfig::new(8, 8)
                .expect("valid")
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 })
                .with_promotion(PromotionPolicy::SwapTowardPort),
        ),
    ];
    let mut group = c.benchmark_group("cache_replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, config) in stacks {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| {
                let mut cache = DwmCache::new(*cfg);
                cache.run_trace(std::hint::black_box(&trace))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cache_policies);
criterion_main!(benches);
