//! A set-associative cache whose data array is built from DWM tapes.
//!
//! Racetrack caches (the "TapeCache" design point) store the `A` ways
//! of a set along one tape: hitting way `w` requires shifting the set's
//! tape until `w` is under the port, so *which way a block occupies* —
//! and how the replacement policy assigns ways — determines the cache's
//! shift bill. This crate reproduces that design space as a substrate
//! for the placement study:
//!
//! * [`DwmCache`] — the functional cache model with per-set tape state
//!   and full hit/miss/shift accounting;
//! * [`ReplacementPolicy`] — `Lru` (shift-oblivious baseline) vs.
//!   `ShiftAwareLru` (victims biased toward the tape's current
//!   position, trading a little recency for a lot of shifting);
//! * [`PromotionPolicy`] — optionally migrate hit blocks one way
//!   closer to the port (organ-pipe-style skew at run time, paying an
//!   explicit swap cost).
//!
//! Experiment T6 sweeps these policies over the workload suite.
//!
//! # Example
//!
//! ```
//! use dwm_cache::{CacheConfig, DwmCache};
//!
//! let mut cache = DwmCache::new(CacheConfig::new(4, 4)?);
//! cache.access(0x100);            // cold miss
//! let hit = cache.access(0x100);  // hit, no shift needed
//! assert!(hit.hit);
//! assert_eq!(hit.shifts, 0);
//! # Ok::<(), dwm_cache::CacheConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod policy;

pub use cache::{AccessOutcome, CacheStats, DwmCache};
pub use config::{CacheConfig, CacheConfigError};
pub use policy::{PromotionPolicy, ReplacementPolicy};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        AccessOutcome, CacheConfig, CacheConfigError, CacheStats, DwmCache, PromotionPolicy,
        ReplacementPolicy,
    };
}
