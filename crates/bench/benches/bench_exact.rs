//! T4: exact subset-DP optimum vs. instance size, plus the parallel
//! branch-and-bound solver (root-level fan-out over the
//! `dwm_foundation::par` workers).

use dwm_bench::BENCH_SEED;
use dwm_core::exact::optimal_placement;
use dwm_core::exact_bb::branch_and_bound_placement;
use dwm_foundation::bench::{black_box, Harness};
use dwm_graph::generators::random_graph;

fn main() {
    let mut h = Harness::from_env("exact_dp").with_samples(10);
    for n in [8usize, 12, 16] {
        let graph = random_graph(n, 0.5, 8, BENCH_SEED);
        h.bench(&format!("exact_dp/{n}"), || {
            optimal_placement(black_box(&graph)).expect("solvable")
        });
    }
    // Branch-and-bound explores one subtree per root item in parallel;
    // the 1-vs-4-thread medians here are the exact-solver speedup the
    // CI gate tracks. n = 12 keeps one gate iteration under a second;
    // larger instances belong in manual runs, not the CI gate.
    for n in [10usize, 12] {
        let graph = random_graph(n, 0.5, 8, BENCH_SEED);
        h.bench_threads(&format!("branch_and_bound/{n}"), || {
            branch_and_bound_placement(black_box(&graph)).expect("solvable")
        });
    }
    h.finish();
}
