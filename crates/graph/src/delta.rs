//! Incremental graph maintenance: a mutable edge-delta overlay on a
//! frozen [`CsrGraph`].
//!
//! Streaming consumers (the `dwm-serve` session subsystem) see accesses
//! arrive over time and need the current access graph after every
//! chunk. Rebuilding an [`AccessGraph`] from the full history is
//! `O(history)` per chunk; mutating a CSR in place would wreck the
//! cache-friendly layout every solver depends on. [`DeltaGraph`] splits
//! the difference: the bulk of the graph stays frozen in CSR form, new
//! edge weight accumulates in a small per-vertex overlay, and when the
//! overlay crosses a threshold the two are merged back into a fresh
//! CSR ([`refreeze`](DeltaGraph::refreeze)) in one `O(n + E)` pass.
//!
//! The defining invariant — pinned by the property suite — is that a
//! delta graph fed a stream incrementally is *indistinguishable* from
//! an [`AccessGraph`] rebuilt from scratch over the whole stream:
//! every query agrees, [`to_access_graph`](DeltaGraph::to_access_graph)
//! is structurally equal (`==`, hence byte-identical JSON), and a
//! refrozen base equals [`CsrGraph::freeze`] of the rebuilt graph
//! field for field, regardless of how the stream was chunked or when
//! refreezes happened.

use std::collections::BTreeMap;

use crate::csr::CsrGraph;
use crate::fingerprint::{fingerprint_csr, Fingerprint};
use crate::graph::AccessGraph;

/// A mutable overlay of edge-weight deltas and item frequencies on top
/// of a frozen [`CsrGraph`] base. See the module docs.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    /// The frozen bulk of the graph. May cover fewer items than the
    /// overlay when items appeared after the last refreeze.
    base: CsrGraph,
    /// Per-vertex weight added since the last refreeze, symmetric like
    /// [`AccessGraph`] adjacency. Length is the authoritative item
    /// count.
    overlay: Vec<BTreeMap<u32, u64>>,
    /// Per-item access counts (the CSR carries none).
    frequency: Vec<u64>,
    /// Distinct undirected edges present in the overlay.
    overlay_edges: usize,
    /// Total weight accumulated in the overlay.
    overlay_weight: u64,
    /// Overlay edges absent from the base (so `num_edges` stays `O(1)`).
    new_edges: usize,
    /// Refreezes performed over this graph's lifetime.
    refreezes: u64,
}

impl DeltaGraph {
    /// An edgeless delta graph over `n` items.
    pub fn new(n: usize) -> Self {
        DeltaGraph::from_graph(&AccessGraph::with_items(n))
    }

    /// Starts from an existing graph: `graph` becomes the frozen base
    /// and the overlay starts empty.
    pub fn from_graph(graph: &AccessGraph) -> Self {
        DeltaGraph {
            base: CsrGraph::freeze(graph),
            overlay: vec![BTreeMap::new(); graph.num_items()],
            frequency: graph.frequencies().to_vec(),
            overlay_edges: 0,
            overlay_weight: 0,
            new_edges: 0,
            refreezes: 0,
        }
    }

    /// Number of items (vertices), including any added since the last
    /// refreeze.
    pub fn num_items(&self) -> usize {
        self.overlay.len()
    }

    /// Number of distinct edges across base and overlay.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.new_edges
    }

    /// Grows the item space to at least `n` vertices (new vertices are
    /// isolated with zero frequency). The frozen base is untouched —
    /// new items live purely in the overlay until the next refreeze.
    pub fn ensure_items(&mut self, n: usize) {
        if n > self.overlay.len() {
            self.overlay.resize(n, BTreeMap::new());
            self.frequency.resize(n, 0);
        }
    }

    /// Adds `w` to the weight of edge `{u, v}` in the overlay.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range (grow
    /// first with [`ensure_items`](Self::ensure_items)), mirroring
    /// [`AccessGraph::add_weight`].
    pub fn add_weight(&mut self, u: usize, v: usize, w: u64) {
        assert_ne!(u, v, "self-loops are not representable");
        assert!(
            u < self.overlay.len() && v < self.overlay.len(),
            "vertex out of range"
        );
        let (ku, kv) = (u as u32, v as u32);
        let absent_in_base = self.base_weight(u, v) == 0;
        let entry = self.overlay[u].entry(kv).or_insert(0);
        if *entry == 0 {
            self.overlay_edges += 1;
            if absent_in_base {
                self.new_edges += 1;
            }
        }
        *entry += w;
        *self.overlay[v].entry(ku).or_insert(0) += w;
        self.overlay_weight += w;
    }

    /// Increments item `i`'s access count.
    pub fn record_access(&mut self, i: usize) {
        self.frequency[i] += 1;
    }

    /// Weight of edge `{u, v}` across base and overlay (0 if absent).
    pub fn weight(&self, u: usize, v: usize) -> u64 {
        self.base_weight(u, v)
            + self
                .overlay
                .get(u)
                .and_then(|m| m.get(&(v as u32)))
                .copied()
                .unwrap_or(0)
    }

    fn base_weight(&self, u: usize, v: usize) -> u64 {
        if u < self.base.num_items() && v < self.base.num_items() {
            self.base.weight(u, v)
        } else {
            0
        }
    }

    /// Weighted degree of vertex `u` across base and overlay.
    pub fn degree(&self, u: usize) -> u64 {
        let base = if u < self.base.num_items() {
            self.base.degree(u)
        } else {
            0
        };
        base + self.overlay[u].values().sum::<u64>()
    }

    /// Access count of item `i`.
    pub fn frequency(&self, i: usize) -> u64 {
        self.frequency.get(i).copied().unwrap_or(0)
    }

    /// All per-item access counts.
    pub fn frequencies(&self) -> &[u64] {
        &self.frequency
    }

    /// Sum of all edge weights across base and overlay.
    pub fn total_weight(&self) -> u64 {
        self.base.total_weight() + self.overlay_weight
    }

    /// Distinct edges currently in the overlay — the refreeze trigger.
    pub fn overlay_edges(&self) -> usize {
        self.overlay_edges
    }

    /// Refreezes performed so far.
    pub fn refreezes(&self) -> u64 {
        self.refreezes
    }

    /// The frozen base (excludes any pending overlay weight).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Linear arrangement cost `Σ w(u,v)·|position[u] − position[v]|`
    /// over base plus overlay; identical to
    /// [`AccessGraph::arrangement_cost`] on the rebuilt graph.
    ///
    /// # Panics
    ///
    /// Panics if `position.len() < num_items()`.
    pub fn arrangement_cost(&self, position: &[usize]) -> u64 {
        assert!(
            position.len() >= self.num_items(),
            "position vector shorter than item count"
        );
        let mut cost = self.base.arrangement_cost(position);
        for (u, row) in self.overlay.iter().enumerate() {
            for (&v, &w) in row.iter() {
                let v = v as usize;
                if u < v {
                    cost += w * position[u].abs_diff(position[v]) as u64;
                }
            }
        }
        cost
    }

    /// `u`'s merged neighbour row (base + overlay), ascending by
    /// vertex — the same order [`AccessGraph::neighbors`] yields.
    fn merged_row(&self, u: usize) -> Vec<(u32, u64)> {
        let (bvs, bws): (&[u32], &[u64]) = if u < self.base.num_items() {
            self.base.neighbor_slices(u)
        } else {
            (&[], &[])
        };
        let mut row = Vec::with_capacity(bvs.len() + self.overlay[u].len());
        let mut overlay = self.overlay[u].iter().peekable();
        for (&v, &w) in bvs.iter().zip(bws) {
            while let Some((&ov, &ow)) = overlay.peek() {
                if ov < v {
                    row.push((ov, ow));
                    overlay.next();
                } else {
                    break;
                }
            }
            let extra = match overlay.peek() {
                Some((&ov, &ow)) if ov == v => {
                    overlay.next();
                    ow
                }
                _ => 0,
            };
            row.push((v, w + extra));
        }
        row.extend(overlay.map(|(&v, &w)| (v, w)));
        row
    }

    /// Merges the overlay into the base in one `O(n + E)` pass, leaving
    /// the overlay empty. The resulting base is equal (`==`) to
    /// [`CsrGraph::freeze`] of the rebuilt-from-scratch graph.
    pub fn refreeze(&mut self) {
        let n = self.overlay.len();
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        let mut weights = Vec::new();
        row_offsets.push(0);
        for u in 0..n {
            for (v, w) in self.merged_row(u) {
                neighbors.push(v);
                weights.push(w);
            }
            row_offsets.push(u32::try_from(neighbors.len()).expect("edge count exceeds u32"));
        }
        self.base = CsrGraph::from_parts(row_offsets, neighbors, weights);
        self.overlay = vec![BTreeMap::new(); n];
        self.overlay_edges = 0;
        self.overlay_weight = 0;
        self.new_edges = 0;
        self.refreezes += 1;
    }

    /// Refreezes when the overlay holds at least `threshold` distinct
    /// edges (a threshold of 0 never refreezes). Returns whether a
    /// refreeze happened.
    pub fn maybe_refreeze(&mut self, threshold: usize) -> bool {
        if threshold > 0 && self.overlay_edges >= threshold {
            self.refreeze();
            true
        } else {
            false
        }
    }

    /// Exports the full current graph (base + overlay + frequencies) as
    /// an [`AccessGraph`] — structurally equal to one rebuilt from
    /// scratch over the same stream.
    pub fn to_access_graph(&self) -> AccessGraph {
        let n = self.num_items();
        let mut g = AccessGraph::with_items(n);
        for u in 0..n {
            for (v, w) in self.merged_row(u) {
                let v = v as usize;
                if u < v {
                    g.add_weight(u, v, w);
                }
            }
        }
        for (i, &f) in self.frequency.iter().enumerate() {
            g.set_frequency(i, f);
        }
        g
    }

    /// Canonical fingerprint of the current graph — equal to
    /// [`fn@crate::fingerprint`] of the rebuilt [`AccessGraph`]. Free
    /// when the overlay is empty; otherwise pays one merge pass.
    pub fn fingerprint(&self) -> Fingerprint {
        if self.overlay_edges == 0 && self.base.num_items() == self.num_items() {
            fingerprint_csr(&self.base, &self.frequency)
        } else {
            crate::fingerprint::fingerprint(&self.to_access_graph())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_foundation::Rng;

    /// Feeds `stream` as adjacent-transition edges (the access-graph
    /// construction rule) into both a DeltaGraph — chunked, with
    /// refreezes sprinkled in — and a scratch AccessGraph.
    fn feed(stream: &[u32], refreeze_every: usize) -> (DeltaGraph, AccessGraph) {
        let n = stream.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
        let mut delta = DeltaGraph::new(0);
        let mut scratch = AccessGraph::with_items(n);
        for (k, pair) in stream.windows(2).enumerate() {
            let (u, v) = (pair[0] as usize, pair[1] as usize);
            delta.ensure_items(u.max(v) + 1);
            if u != v {
                delta.add_weight(u, v, 1);
                scratch.add_weight(u, v, 1);
            }
            if refreeze_every > 0 && (k + 1) % refreeze_every == 0 {
                delta.refreeze();
            }
        }
        for &i in stream {
            delta.ensure_items(i as usize + 1);
            delta.record_access(i as usize);
            scratch.set_frequency(i as usize, scratch.frequency(i as usize) + 1);
        }
        delta.ensure_items(n);
        (delta, scratch)
    }

    fn random_stream(len: usize, items: u32, seed: u64) -> Vec<u32> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..items)).collect()
    }

    #[test]
    fn incremental_equals_rebuilt_at_every_refreeze_cadence() {
        let stream = random_stream(600, 23, 42);
        for cadence in [0usize, 1, 7, 100] {
            let (delta, scratch) = feed(&stream, cadence);
            assert_eq!(delta.num_items(), scratch.num_items());
            assert_eq!(delta.num_edges(), scratch.num_edges(), "cadence {cadence}");
            assert_eq!(delta.total_weight(), scratch.total_weight());
            for u in 0..scratch.num_items() {
                assert_eq!(delta.degree(u), scratch.degree(u), "degree {u}");
                assert_eq!(delta.frequency(u), scratch.frequency(u));
                for v in 0..scratch.num_items() {
                    assert_eq!(delta.weight(u, v), scratch.weight(u, v));
                }
            }
            assert_eq!(delta.to_access_graph(), scratch, "cadence {cadence}");
            assert_eq!(
                delta.fingerprint(),
                crate::fingerprint::fingerprint(&scratch)
            );
        }
    }

    #[test]
    fn refrozen_base_equals_freeze_of_rebuilt_graph() {
        let stream = random_stream(400, 17, 7);
        let (mut delta, scratch) = feed(&stream, 13);
        delta.refreeze();
        assert_eq!(delta.base(), &CsrGraph::freeze(&scratch));
        assert_eq!(delta.overlay_edges(), 0);
        assert!(delta.refreezes() > 0);
    }

    #[test]
    fn arrangement_cost_matches_rebuilt_graph() {
        let stream = random_stream(500, 19, 11);
        let (delta, scratch) = feed(&stream, 29);
        let n = scratch.num_items();
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..5 {
            let mut pos: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                pos.swap(i, rng.gen_range(0..i + 1));
            }
            assert_eq!(delta.arrangement_cost(&pos), scratch.arrangement_cost(&pos));
        }
    }

    #[test]
    fn maybe_refreeze_honours_the_threshold() {
        let mut delta = DeltaGraph::new(8);
        delta.add_weight(0, 1, 1);
        delta.add_weight(2, 3, 1);
        assert!(!delta.maybe_refreeze(3), "2 overlay edges < 3");
        assert!(!delta.maybe_refreeze(0), "0 disables refreeze");
        assert!(delta.maybe_refreeze(2));
        assert_eq!(delta.overlay_edges(), 0);
        assert_eq!(delta.refreezes(), 1);
        assert_eq!(delta.weight(0, 1), 1, "weight survives the refreeze");
    }

    #[test]
    fn growth_keeps_new_items_isolated_until_touched() {
        let mut delta = DeltaGraph::new(2);
        delta.add_weight(0, 1, 4);
        delta.refreeze();
        delta.ensure_items(5);
        assert_eq!(delta.num_items(), 5);
        assert_eq!(delta.degree(4), 0);
        delta.add_weight(1, 4, 2);
        assert_eq!(delta.weight(4, 1), 2);
        assert_eq!(delta.weight(0, 1), 4);
        // A refreeze folds the grown item space into the base.
        delta.refreeze();
        assert_eq!(delta.base().num_items(), 5);
        assert_eq!(delta.total_weight(), 6);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        DeltaGraph::new(3).add_weight(1, 1, 1);
    }
}
