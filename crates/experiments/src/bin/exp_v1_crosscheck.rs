//! Experiment V1 (sanity, not in the paper): cross-validation of the
//! analytic cost model against the bit-level simulator.
//!
//! For every kernel, the single-port analytic shift count and the
//! functional simulator's shift count must agree exactly, and the
//! simulator's data-integrity check must report zero errors. The
//! binary exits nonzero on any mismatch so it can gate CI.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{GroupedChainGrowth, PlacementAlgorithm};
use dwm_device::DeviceConfig;
use dwm_experiments::{workload_suite, Table};
use dwm_graph::AccessGraph;
use dwm_sim::SpmSimulator;

fn main() {
    println!("V1: analytic model vs. bit-level simulator (grouped-chain placement)\n");
    let mut t = Table::new(["benchmark", "analytic", "simulated", "integrity", "match"]);
    let mut ok = true;
    for (name, trace) in workload_suite() {
        let graph = AccessGraph::from_trace(&trace);
        let placement = GroupedChainGrowth.place(&graph);
        let analytic = SinglePortCost::new()
            .trace_cost(&placement, &trace)
            .stats
            .shifts;
        let config = DeviceConfig::builder()
            .domains_per_track(trace.num_items().max(1))
            .tracks_per_dbc(32)
            .build()
            .expect("valid config");
        let mut sim = SpmSimulator::new(&config, &placement).expect("geometry fits");
        let report = sim.run(&trace).expect("replay succeeds");
        let matched = report.stats.shifts == analytic && report.integrity_errors == 0;
        ok &= matched;
        t.row([
            name,
            analytic.to_string(),
            report.stats.shifts.to_string(),
            report.integrity_errors.to_string(),
            if matched { "OK" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t.print();
    if !ok {
        eprintln!("cross-validation FAILED");
        std::process::exit(1);
    }
    println!("\nall benchmarks cross-validate");
}
