use dwm_device::shift::single_port_distance;
use dwm_trace::Trace;

use crate::config::CacheConfig;
use crate::policy::PromotionPolicy;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was found.
    pub hit: bool,
    /// Tape shift steps this access cost (alignment + promotion).
    pub shifts: u64,
    /// The set index touched.
    pub set: usize,
    /// The way the block ended up in.
    pub way: usize,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that found their block.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Total tape shift steps (alignment + promotion swaps).
    pub shifts: u64,
    /// Promotion swaps performed.
    pub promotions: u64,
    /// Evictions of valid blocks.
    pub evictions: u64,
}

dwm_foundation::json_struct!(CacheStats {
    hits,
    misses,
    shifts,
    promotions,
    evictions
});

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 for no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Mean shifts per access; 0 for no accesses.
    pub fn shifts_per_access(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.shifts as f64 / n as f64
        }
    }
}

/// One cache set: tag array, recency, and tape position.
#[derive(Debug, Clone)]
struct Set {
    /// `tags[w]` = tag stored in way `w` (`None` = invalid).
    tags: Vec<Option<u64>>,
    /// Last-use timestamp per way (`None` = invalid).
    last_used: Vec<Option<u64>>,
    /// Way currently under the port.
    position: usize,
}

dwm_foundation::json_struct!(Set {
    tags,
    last_used,
    position
});

impl Set {
    fn new(ways: usize) -> Self {
        Set {
            tags: vec![None; ways],
            last_used: vec![None; ways],
            position: 0,
        }
    }
}

/// Functional model of a set-associative DWM cache.
///
/// Addresses are block ids: `set = id % sets`, `tag = id / sets`. Each
/// set's tape state is the way under its port; aligning way `w` from
/// way `v` costs `|w − v|` shifts (single-port tape, the same model the
/// placement crates use).
///
/// # Example
///
/// ```
/// use dwm_cache::{CacheConfig, DwmCache, ReplacementPolicy};
///
/// let config = CacheConfig::new(8, 4)?
///     .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 1 });
/// let mut cache = DwmCache::new(config);
/// for id in [0u64, 8, 16, 0, 8] {
///     cache.access(id);
/// }
/// assert!(cache.stats().hits >= 2);
/// # Ok::<(), dwm_cache::CacheConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DwmCache {
    config: CacheConfig,
    sets: Vec<Set>,
    clock: u64,
    stats: CacheStats,
}

dwm_foundation::json_struct!(DwmCache {
    config,
    sets,
    clock,
    stats
});

impl DwmCache {
    /// An empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        DwmCache {
            sets: (0..config.sets())
                .map(|_| Set::new(config.ways()))
                .collect(),
            config,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses block `id`, shifting the set's tape as needed and
    /// applying the replacement/promotion policies.
    pub fn access(&mut self, id: u64) -> AccessOutcome {
        self.clock += 1;
        let set_index = (id % self.config.sets() as u64) as usize;
        let tag = id / self.config.sets() as u64;
        let promotion = self.config.promotion;
        let swap_cost = self.config.promotion_swap_shifts;
        let replacement = self.config.replacement;
        let clock = self.clock;
        let set = &mut self.sets[set_index];

        let found = set.tags.iter().position(|&t| t == Some(tag));
        let (hit, mut way) = match found {
            Some(w) => (true, w),
            None => {
                let victim = replacement.choose_victim(&set.last_used, set.position);
                if set.tags[victim].is_some() {
                    self.stats.evictions += 1;
                }
                set.tags[victim] = Some(tag);
                set.last_used[victim] = None; // freshly filled; stamped below
                (false, victim)
            }
        };

        // Align the way with the port (same single-port tape metric
        // as the placement cost models).
        let mut shifts = single_port_distance(set.position, way);
        set.position = way;

        // Promotion: swap one way toward the port.
        if hit && promotion == PromotionPolicy::SwapTowardPort && way > 0 {
            let neighbour = way - 1;
            set.tags.swap(way, neighbour);
            set.last_used.swap(way, neighbour);
            shifts += swap_cost;
            way = neighbour;
            set.position = neighbour;
            self.stats.promotions += 1;
        }

        set.last_used[way] = Some(clock);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.stats.shifts += shifts;
        AccessOutcome {
            hit,
            shifts,
            set: set_index,
            way,
        }
    }

    /// Replays a whole trace (item ids as block ids) and returns the
    /// statistics delta for it.
    pub fn run_trace(&mut self, trace: &Trace) -> CacheStats {
        let before = self.stats;
        for a in trace.iter() {
            self.access(a.item.0 as u64);
        }
        CacheStats {
            hits: self.stats.hits - before.hits,
            misses: self.stats.misses - before.misses,
            shifts: self.stats.shifts - before.shifts,
            promotions: self.stats.promotions - before.promotions,
            evictions: self.stats.evictions - before.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;
    use dwm_trace::synth::{TraceGenerator, ZipfGen};

    fn cache(sets: usize, ways: usize) -> DwmCache {
        DwmCache::new(CacheConfig::new(sets, ways).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(4, 2);
        let first = c.access(12);
        assert!(!first.hit);
        let second = c.access(12);
        assert!(second.hit);
        assert_eq!(second.shifts, 0, "block is already under the port");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn set_indexing_separates_conflicts() {
        let mut c = cache(4, 1);
        c.access(0); // set 0
        c.access(1); // set 1
        assert!(c.access(0).hit, "different sets must not conflict");
        // Same set (0), different tag: evicts.
        assert!(!c.access(4).hit);
        assert!(!c.access(0).hit, "way was reused");
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = cache(1, 2);
        c.access(0);
        c.access(1);
        c.access(0); // refresh 0
        c.access(2); // evicts 1 (LRU)
        assert!(c.access(0).hit);
        assert!(!c.access(1).hit);
    }

    #[test]
    fn shifts_track_way_distance() {
        let mut c = cache(1, 4);
        c.access(0); // way 0, pos 0→0
        c.access(1); // way 1: 1 shift
        c.access(2); // way 2: 1 shift
        c.access(0); // hit way 0: 2 shifts
        assert_eq!(c.stats().shifts, 1 + 1 + 2);
    }

    #[test]
    fn promotion_moves_hot_block_toward_port() {
        let config = CacheConfig::new(1, 4)
            .unwrap()
            .with_promotion(PromotionPolicy::SwapTowardPort);
        let mut c = DwmCache::new(config);
        for id in 0..4 {
            c.access(id);
        }
        // Block 3 sits at way 3; repeated hits walk it to way 0.
        let mut last_way = 3;
        for _ in 0..3 {
            let out = c.access(3);
            assert!(out.hit);
            assert_eq!(out.way, last_way - 1);
            last_way = out.way;
        }
        assert_eq!(c.stats().promotions, 3);
        assert_eq!(c.access(3).way, 0, "hot block pinned at the port");
    }

    #[test]
    fn shift_aware_lru_cuts_shifts_on_skewed_workloads() {
        let trace = ZipfGen::new(256, 11).generate(20_000);
        let mut plain = cache(8, 8);
        let plain_stats = plain.run_trace(&trace);
        let mut aware = DwmCache::new(
            CacheConfig::new(8, 8)
                .unwrap()
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 })
                .with_promotion(PromotionPolicy::SwapTowardPort),
        );
        let aware_stats = aware.run_trace(&trace);
        assert!(
            aware_stats.shifts < plain_stats.shifts,
            "aware {} vs plain {}",
            aware_stats.shifts,
            plain_stats.shifts
        );
        // The hit-rate sacrifice must be modest (< 10 points).
        assert!(aware_stats.hit_ratio() > plain_stats.hit_ratio() - 0.10);
    }

    #[test]
    fn run_trace_returns_delta() {
        let trace = ZipfGen::new(64, 3).generate(500);
        let mut c = cache(4, 4);
        let first = c.run_trace(&trace);
        let second = c.run_trace(&trace);
        assert_eq!(first.accesses(), 500);
        assert_eq!(second.accesses(), 500);
        // Warm cache: second pass hits at least as often.
        assert!(second.hits >= first.hits);
    }

    #[test]
    fn stats_ratios_are_sane() {
        let mut c = cache(2, 2);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        assert_eq!(c.stats().shifts_per_access(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }
}
