//! Experiment T9 (extension): basic-block layout on racetrack
//! instruction memory.
//!
//! On an instruction tape, sequential fetch is free (the tape advances
//! anyway) and only taken control transfers pay shifts proportional to
//! jump distance. We lay out random and structured CFGs with program
//! order, hottest-edge chaining (Pettis–Hansen adapted to tape
//! distance), and the full pipeline (portfolio + refinement), and
//! report the fetch-shift bill of each.

use dwm_experiments::{percent_reduction, Table, EXPERIMENT_SEED};
use dwm_isa::{best_layout, chain_layout, BlockOrder, Cfg};

fn main() {
    println!("Table 9: fetch shifts of basic-block layouts on instruction tape\n");
    let mut t = Table::new([
        "cfg",
        "blocks",
        "instrs",
        "program-order",
        "chained",
        "best+refine",
        "reduction",
    ]);
    let mut cfgs: Vec<(String, Cfg)> = (0..4)
        .map(|i| {
            (
                format!("random-{}", 16 * (i + 1)),
                Cfg::random(16 * (i + 1), 3, EXPERIMENT_SEED + i as u64),
            )
        })
        .collect();
    cfgs.push(("loops-4x6".into(), Cfg::structured(4, 6, 1000)));
    cfgs.push(("loops-8x3".into(), Cfg::structured(8, 3, 1000)));

    for (name, cfg) in cfgs {
        let program = BlockOrder::program_order(&cfg).cost(&cfg);
        let chained = chain_layout(&cfg).cost(&cfg);
        let best = best_layout(&cfg).cost(&cfg);
        t.row([
            name,
            cfg.num_blocks().to_string(),
            cfg.total_len().to_string(),
            program.to_string(),
            chained.to_string(),
            best.to_string(),
            percent_reduction(program, best),
        ]);
    }
    t.print();
}
