//! A seeded property-test harness — the in-tree proptest replacement.
//!
//! A property is a closure over inputs produced by a generator
//! closure; the harness runs it for a configurable number of cases,
//! each with an independent, deterministically derived sub-seed. On
//! failure it panics with the failing case's seed and a `Debug` dump
//! of the input, and that seed can be replayed in isolation with the
//! `DWM_CHECK_SEED` environment variable:
//!
//! ```text
//! DWM_CHECK_SEED=123456789 cargo test -q failing_test_name
//! ```
//!
//! Environment knobs:
//!
//! * `DWM_CHECK_CASES` — cases per property (overrides the in-code
//!   count; crank it up for soak runs)
//! * `DWM_CHECK_SEED`  — run only the given case seed (replay mode)
//!
//! Properties report failure by returning `Err(String)`; the
//! [`require!`](crate::require), [`require_eq!`](crate::require_eq),
//! and [`require_ne!`](crate::require_ne) macros are the
//! `prop_assert!` equivalents.

use crate::rng::{splitmix64, Rng};

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 48;

/// Runs seeded property tests. See the [module docs](self).
///
/// # Example
///
/// ```
/// use dwm_foundation::{require, Checker};
///
/// Checker::new("addition_commutes").run(
///     |rng| (rng.gen::<u32>() as u64, rng.gen::<u32>() as u64),
///     |&(a, b)| {
///         require!(a + b == b + a, "{a} + {b} not commutative");
///         Ok(())
///     },
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Checker {
    name: String,
    cases: usize,
    seed: u64,
}

impl Checker {
    /// A checker for the property `name` with the default case count
    /// and a seed derived from the name (stable across runs, distinct
    /// across properties).
    pub fn new(name: &str) -> Self {
        let mut seed = 0x5EED_0000_0000_0000u64;
        for b in name.bytes() {
            seed = splitmix64(&mut seed) ^ b as u64;
        }
        Checker {
            name: name.to_owned(),
            cases: DEFAULT_CASES,
            seed,
        }
    }

    /// Sets the case count (the `DWM_CHECK_CASES` environment variable
    /// still takes precedence).
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases.max(1);
        self
    }

    /// Sets the master seed explicitly.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates inputs with `generate` and checks `property` against
    /// each.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, with its replay seed and the
    /// `Debug` rendering of the input.
    pub fn run<T, G, P>(&self, mut generate: G, mut property: P)
    where
        T: std::fmt::Debug,
        G: FnMut(&mut Rng) -> T,
        P: FnMut(&T) -> Result<(), String>,
    {
        if let Some(replay) = env_u64("DWM_CHECK_SEED") {
            self.run_case(replay, usize::MAX, &mut generate, &mut property);
            return;
        }
        let cases = env_u64("DWM_CHECK_CASES")
            .map(|c| c.max(1) as usize)
            .unwrap_or(self.cases);
        let mut master = self.seed;
        for case in 0..cases {
            let case_seed = splitmix64(&mut master);
            self.run_case(case_seed, case, &mut generate, &mut property);
        }
    }

    fn run_case<T, G, P>(&self, case_seed: u64, case: usize, generate: &mut G, property: &mut P)
    where
        T: std::fmt::Debug,
        G: FnMut(&mut Rng) -> T,
        P: FnMut(&T) -> Result<(), String>,
    {
        let mut rng = Rng::seed_from_u64(case_seed);
        let input = generate(&mut rng);
        if let Err(message) = property(&input) {
            let which = if case == usize::MAX {
                "replayed case".to_owned()
            } else {
                format!("case {case}")
            };
            panic!(
                "property '{}' failed on {which}\n  cause: {message}\n  input: {input:?}\n  \
                 replay: DWM_CHECK_SEED={case_seed} cargo test -q",
                self.name
            );
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// `prop_assert!` equivalent: early-returns `Err` from the property
/// when the condition is false.
#[macro_export]
macro_rules! require {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("requirement failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!` equivalent.
#[macro_export]
macro_rules! require_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} ({l:?} vs {r:?})",
                format!($($fmt)+)
            ));
        }
    }};
}

/// `prop_assert_ne!` equivalent.
#[macro_export]
macro_rules! require_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "{} == {} (both {l:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0usize;
        Checker::new("counts_cases").cases(17).run(
            |rng| rng.gen::<u64>(),
            |_| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, 17);
    }

    #[test]
    fn generation_is_deterministic_per_property() {
        let collect = || {
            let mut inputs = Vec::new();
            Checker::new("stable_inputs").cases(10).run(
                |rng| rng.gen::<u64>(),
                |&x| {
                    inputs.push(x);
                    Ok(())
                },
            );
            inputs
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_properties_get_different_seeds() {
        let first_input = |name: &str| {
            let mut first = None;
            Checker::new(name).cases(1).run(
                |rng| rng.gen::<u64>(),
                |&x| {
                    first = Some(x);
                    Ok(())
                },
            );
            first.unwrap()
        };
        assert_ne!(first_input("prop_a"), first_input("prop_b"));
    }

    #[test]
    fn failure_panics_with_replay_seed() {
        let result = std::panic::catch_unwind(|| {
            Checker::new("always_fails").cases(3).run(
                |rng| rng.gen_range(0..100u64),
                |_| Err("intentional".to_owned()),
            );
        });
        let panic = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(panic.contains("always_fails"), "{panic}");
        assert!(panic.contains("intentional"), "{panic}");
        assert!(panic.contains("DWM_CHECK_SEED="), "{panic}");
    }

    #[test]
    fn require_macros_produce_messages() {
        fn prop(x: u64) -> Result<(), String> {
            require!(x < 10, "x too big: {x}");
            require_eq!(x % 2, 0);
            require_ne!(x, 7);
            Ok(())
        }
        assert!(prop(2).is_ok());
        assert_eq!(prop(12).unwrap_err(), "x too big: 12");
        assert!(prop(3).unwrap_err().contains("!="));
    }
}
