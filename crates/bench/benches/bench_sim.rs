//! F6/V1: bit-level simulator replay throughput vs. the analytic model.

use dwm_bench::matmul_fixture;
use dwm_core::cost::{CostModel, SinglePortCost, TopologyCost};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_device::{DeviceConfig, Topology};
use dwm_foundation::bench::{black_box, Harness};
use dwm_sim::SpmSimulator;

fn main() {
    let (trace, graph) = matmul_fixture();
    let n = graph.num_items();
    let placement = Hybrid::default().place(&graph);
    let config = DeviceConfig::builder()
        .domains_per_track(n)
        .tracks_per_dbc(32)
        .build()
        .expect("valid");

    let mut h = Harness::from_env("sim");
    let model = SinglePortCost::new();
    h.bench("replay/analytic", || {
        model.trace_cost(black_box(&placement), &trace)
    });
    h.bench("replay/bit_level_sim", || {
        let mut sim = SpmSimulator::new(&config, &placement).expect("fits");
        sim.run(black_box(&trace)).expect("replay")
    });

    // Non-linear topology replay: the min-of-two-directions ring and
    // the two-axis grid exercise the per-access TopologyPlan path that
    // the linear fast path never takes.
    let ring = TopologyCost::single_port(Topology::parse("ring").expect("valid"), n);
    h.bench("shift_ring", || {
        ring.trace_cost(black_box(&placement), &trace)
    });
    let cols = n.div_ceil(8).max(1);
    let grid = TopologyCost::single_port(
        Topology::parse(&format!("grid2d:8x{cols}")).expect("valid"),
        n,
    );
    h.bench("shift_grid2d", || {
        grid.trace_cost(black_box(&placement), &trace)
    });
    h.finish();
}
