//! Experiment T2: benchmark characteristics table.
//!
//! One row per kernel of the workload suite: item count, trace length,
//! read/write mix, and the locality indicators that predict how much
//! placement can help (mean stride of the naive layout, hot-20% share).

use dwm_experiments::{workload_suite, Table};

fn main() {
    println!("Table 2: benchmark characteristics\n");
    let mut t = Table::new([
        "benchmark",
        "items",
        "accesses",
        "reads",
        "writes",
        "mean stride",
        "hot-20% share",
    ]);
    for (name, trace) in workload_suite() {
        let s = trace.stats();
        t.row([
            name,
            s.distinct_items.to_string(),
            s.length.to_string(),
            s.reads.to_string(),
            s.writes.to_string(),
            format!("{:.2}", s.mean_stride),
            format!("{:.0}%", s.hot20_share * 100.0),
        ]);
    }
    t.print();
}
