//! Program execution: run a loop nest and record its access trace.

use std::error::Error;
use std::fmt;

use dwm_trace::{Access, AccessKind, ItemId, Trace};

use crate::ir::{Node, Program};

/// Errors surfaced while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// An index expression referenced a loop variable with no value
    /// (used outside its loop).
    UnboundVariable {
        /// The variable's index.
        var: usize,
    },
    /// An access evaluated to an index outside its array.
    IndexOutOfBounds {
        /// Array name.
        array: String,
        /// The evaluated index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// The trace grew beyond the safety cap (runaway loop bounds).
    TraceTooLong {
        /// The cap that was hit.
        limit: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundVariable { var } => {
                write!(f, "loop variable #{var} used outside its loop")
            }
            ExecError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for array {array} of {len}")
            }
            ExecError::TraceTooLong { limit } => {
                write!(f, "execution exceeded the {limit}-access safety cap")
            }
        }
    }
}

impl Error for ExecError {}

/// Safety cap on emitted accesses (runaway-bound protection).
pub const MAX_TRACE_LEN: usize = 10_000_000;

struct Interp<'p> {
    program: &'p Program,
    env: Vec<i64>,
    bound: Vec<bool>,
    trace: Vec<Access>,
}

impl Interp<'_> {
    fn run(&mut self, nodes: &[Node]) -> Result<(), ExecError> {
        for node in nodes {
            match node {
                Node::Access {
                    array,
                    index,
                    write,
                } => {
                    let idx = self.eval(index)?;
                    let decl = &self.program.arrays()[array.0];
                    if idx < 0 || idx as usize >= decl.len {
                        return Err(ExecError::IndexOutOfBounds {
                            array: decl.name.clone(),
                            index: idx,
                            len: decl.len,
                        });
                    }
                    let item = self.program.array_base(*array) + idx as usize / decl.block;
                    if self.trace.len() >= MAX_TRACE_LEN {
                        return Err(ExecError::TraceTooLong {
                            limit: MAX_TRACE_LEN,
                        });
                    }
                    self.trace.push(Access {
                        item: ItemId(item as u32),
                        kind: if *write {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                    });
                }
                Node::Loop { var, lo, hi, body } => {
                    let lo = self.eval(lo)?;
                    let hi = self.eval(hi)?;
                    let was_bound = self.bound[var.0];
                    let old = self.env[var.0];
                    self.bound[var.0] = true;
                    for v in lo..hi {
                        self.env[var.0] = v;
                        self.run(body)?;
                    }
                    self.env[var.0] = old;
                    self.bound[var.0] = was_bound;
                }
            }
        }
        Ok(())
    }

    fn eval(&self, expr: &crate::ir::AffineExpr) -> Result<i64, ExecError> {
        // Reject reads of unbound variables even though env holds a
        // stale 0 — silent zeros hide nest bugs.
        for &(v, _) in expr_terms(expr) {
            if !self.bound[v.0] {
                return Err(ExecError::UnboundVariable { var: v.0 });
            }
        }
        expr.evaluate(&self.env)
            .ok_or(ExecError::UnboundVariable { var: usize::MAX })
    }
}

// AffineExpr keeps its terms private; a crate-internal accessor keeps
// the IR encapsulated for downstream users while letting the
// interpreter check boundness.
fn expr_terms(expr: &crate::ir::AffineExpr) -> &[(crate::ir::LoopVar, i64)] {
    expr.terms_for_exec()
}

/// Executes `program` and returns its access trace (dense item ids in
/// array-declaration order — already suitable for the placement
/// crates, no normalization needed).
///
/// # Errors
///
/// Returns [`ExecError`] for unbound variables, out-of-bounds indices,
/// or runaway traces.
pub fn execute(program: &Program) -> Result<Trace, ExecError> {
    let mut interp = Interp {
        program,
        env: vec![0; program.num_vars()],
        bound: vec![false; program.num_vars()],
        trace: Vec::new(),
    };
    interp.run(program.root())?;
    Ok(Trace::from_accesses(interp.trace).with_label("program"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AffineExpr;

    #[test]
    fn simple_loop_emits_in_order() {
        let mut p = Program::new();
        let a = p.array("a", 8, 1);
        let i = p.loop_var("i");
        p.for_loop(i, 0, 8, |b| {
            b.read(a, AffineExpr::var(i));
        });
        let t = execute(&p).unwrap();
        let ids: Vec<u32> = t.iter().map(|x| x.item.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn blocking_groups_elements() {
        let mut p = Program::new();
        let a = p.array("a", 8, 4);
        let i = p.loop_var("i");
        p.for_loop(i, 0, 8, |b| {
            b.read(a, AffineExpr::var(i));
        });
        let t = execute(&p).unwrap();
        let ids: Vec<u32> = t.iter().map(|x| x.item.0).collect();
        assert_eq!(ids, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn arrays_get_disjoint_item_ranges() {
        let mut p = Program::new();
        let a = p.array("a", 4, 1);
        let b = p.array("b", 4, 1);
        let i = p.loop_var("i");
        p.for_loop(i, 0, 4, |body| {
            body.read(a, AffineExpr::var(i));
            body.write(b, AffineExpr::var(i));
        });
        let t = execute(&p).unwrap();
        assert_eq!(t.num_items(), 8);
        assert!(t
            .iter()
            .filter(|x| x.kind.is_write())
            .all(|x| x.item.0 >= 4));
    }

    #[test]
    fn triangular_bounds_work() {
        // for i in 0..4 { for j in 0..i { a[j] } } → 0+1+2+3 accesses.
        let mut p = Program::new();
        let a = p.array("a", 4, 1);
        let i = p.loop_var("i");
        let j = p.loop_var("j");
        p.for_loop(i, 0, 4, |outer| {
            outer.for_loop_expr(j, AffineExpr::constant(0), AffineExpr::var(i), |inner| {
                inner.read(a, AffineExpr::var(j));
            });
        });
        assert_eq!(execute(&p).unwrap().len(), 6);
    }

    #[test]
    fn out_of_bounds_is_reported_with_context() {
        let mut p = Program::new();
        let a = p.array("small", 4, 1);
        let i = p.loop_var("i");
        p.for_loop(i, 0, 5, |b| {
            b.read(a, AffineExpr::var(i));
        });
        match execute(&p) {
            Err(ExecError::IndexOutOfBounds { array, index, len }) => {
                assert_eq!(array, "small");
                assert_eq!(index, 4);
                assert_eq!(len, 4);
            }
            other => panic!("expected out-of-bounds, got {other:?}"),
        }
    }

    #[test]
    fn unbound_variable_is_reported() {
        let mut p = Program::new();
        let a = p.array("a", 4, 1);
        let i = p.loop_var("i");
        let _ = i;
        let j = p.loop_var("j");
        p.access(a, AffineExpr::var(j), false);
        assert!(matches!(
            execute(&p),
            Err(ExecError::UnboundVariable { var: 1 })
        ));
    }

    #[test]
    fn empty_program_empty_trace() {
        assert!(execute(&Program::new()).unwrap().is_empty());
    }

    #[test]
    fn matmul_nest_matches_expected_volume() {
        // C[i·n+j] += A[i·n+k] · B[k·n+j], n = 4, element granularity.
        let n = 4i64;
        let mut p = Program::new();
        let a = p.array("A", 16, 1);
        let b = p.array("B", 16, 1);
        let c = p.array("C", 16, 1);
        let i = p.loop_var("i");
        let j = p.loop_var("j");
        let k = p.loop_var("k");
        p.for_loop(i, 0, n, |bi| {
            bi.for_loop(j, 0, n, |bj| {
                bj.for_loop(k, 0, n, |bk| {
                    bk.read(a, AffineExpr::var(i).scale(n).plus_var(k, 1));
                    bk.read(b, AffineExpr::var(k).scale(n).plus_var(j, 1));
                    bk.write(c, AffineExpr::var(i).scale(n).plus_var(j, 1));
                });
            });
        });
        let t = execute(&p).unwrap();
        assert_eq!(t.len(), (n * n * n * 3) as usize);
        assert_eq!(t.num_items(), 48);
        assert_eq!(t.stats().writes, (n * n * n) as usize);
    }
}
