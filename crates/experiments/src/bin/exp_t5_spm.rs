//! Experiment T5 (extension): multi-DBC scratchpad allocation.
//!
//! Kernels run on a 4-DBC × 16-word SPM (single port per DBC). Three
//! allocation strategies are compared: interleaved round-robin (the
//! hardware default), clustering by affinity (classic min-cut
//! partitioning + intra ordering), and the anti-affinity allocation
//! with projected-trace intra ordering that this crate proposes for
//! independently shifting tapes.

use dwm_core::partition::Objective;
use dwm_core::spm::SpmAllocator;
use dwm_core::GroupedChainGrowth;
use dwm_device::PortLayout;
use dwm_experiments::{percent_reduction, workload_suite, Table};

fn main() {
    println!("Table 5: total shifts on a 4x16 SPM (per-DBC single port)\n");
    let mut t = Table::new([
        "benchmark",
        "round-robin",
        "affinity",
        "anti-affinity",
        "reduction vs rr",
    ]);
    let alloc = SpmAllocator::new(4, 16);
    let ports = PortLayout::single();
    for (name, trace) in workload_suite() {
        let items = trace.num_items();
        let rr = alloc
            .allocate_round_robin(items)
            .expect("suite fits the SPM");
        let affinity = alloc
            .allocate_with_objective(&trace, &GroupedChainGrowth, Objective::MinimizeExternal)
            .expect("suite fits the SPM");
        let anti = alloc
            .allocate(&trace, &GroupedChainGrowth)
            .expect("suite fits the SPM");
        let (rr_stats, _) = rr.trace_cost(&trace, &ports);
        let (aff_stats, _) = affinity.trace_cost(&trace, &ports);
        let (anti_stats, _) = anti.trace_cost(&trace, &ports);
        t.row([
            name,
            rr_stats.shifts.to_string(),
            aff_stats.shifts.to_string(),
            anti_stats.shifts.to_string(),
            percent_reduction(rr_stats.shifts, anti_stats.shifts),
        ]);
    }
    t.print();
}
