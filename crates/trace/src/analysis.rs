//! Trace analysis: reuse distance, working sets, and phase detection.
//!
//! These analyses characterize *why* a placement helps on a given
//! workload (locality structure) and drive the online/adaptive
//! placement in `dwm-core`: phase boundaries are where re-placing data
//! pays for its migration cost.

use std::collections::HashMap;

use crate::access::Trace;

/// Reuse-distance histogram: for each access, the number of *distinct*
/// items touched since the previous access to the same item
/// (∞/cold for first touches).
///
/// Computed with the classic stack algorithm over a Vec "LRU stack" —
/// `O(T · D)` where `D` is the mean stack depth, plenty for the trace
/// sizes this workspace handles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with reuse distance `d`.
    pub histogram: Vec<u64>,
    /// Number of cold (first-touch) accesses.
    pub cold_accesses: u64,
}

impl ReuseProfile {
    /// Computes the reuse-distance profile of `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut stack: Vec<u32> = Vec::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for a in trace.iter() {
            match stack.iter().rposition(|&x| x == a.item.0) {
                Some(pos) => {
                    let distance = stack.len() - 1 - pos;
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    stack.remove(pos);
                    stack.push(a.item.0);
                }
                None => {
                    cold += 1;
                    stack.push(a.item.0);
                }
            }
        }
        ReuseProfile {
            histogram,
            cold_accesses: cold,
        }
    }

    /// Total accesses with a finite reuse distance.
    pub fn reuses(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Mean finite reuse distance (0 when there are no reuses).
    pub fn mean_distance(&self) -> f64 {
        let total = self.reuses();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Fraction of reuses with distance < `d` — the hit ratio of a
    /// fully associative LRU buffer of `d` items.
    pub fn hit_ratio(&self, d: usize) -> f64 {
        let total = self.reuses() + self.cold_accesses;
        if total == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(d).sum();
        hits as f64 / total as f64
    }
}

/// Sizes of the working set (distinct items) over fixed-length windows.
pub fn working_set_curve(trace: &Trace, window: usize) -> Vec<usize> {
    assert!(window > 0, "window must be nonzero");
    trace
        .accesses()
        .chunks(window)
        .map(|chunk| {
            let mut items: Vec<u32> = chunk.iter().map(|a| a.item.0).collect();
            items.sort_unstable();
            items.dedup();
            items.len()
        })
        .collect()
}

/// Detects phase boundaries: indices (in accesses) where the item-
/// frequency distribution of consecutive windows diverges by more than
/// `threshold` (total-variation distance in `[0, 1]`).
///
/// # Example
///
/// ```
/// use dwm_trace::{Trace, analysis::detect_phases};
///
/// // 100 accesses to items 0..4, then 100 accesses to items 10..14.
/// let mut ids: Vec<u32> = (0..100).map(|i| i % 4).collect();
/// ids.extend((0..100).map(|i| 10 + i % 4));
/// let trace = Trace::from_ids(ids);
/// let phases = detect_phases(&trace, 50, 0.5);
/// assert_eq!(phases, vec![100]);
/// ```
pub fn detect_phases(trace: &Trace, window: usize, threshold: f64) -> Vec<usize> {
    assert!(window > 0, "window must be nonzero");
    let chunks: Vec<&[crate::access::Access]> = trace.accesses().chunks(window).collect();
    let mut boundaries = Vec::new();
    for (i, pair) in chunks.windows(2).enumerate() {
        if total_variation(pair[0], pair[1]) > threshold {
            boundaries.push((i + 1) * window);
        }
    }
    boundaries
}

fn total_variation(a: &[crate::access::Access], b: &[crate::access::Access]) -> f64 {
    let freq = |chunk: &[crate::access::Access]| -> HashMap<u32, f64> {
        let mut m = HashMap::new();
        for acc in chunk {
            *m.entry(acc.item.0).or_insert(0.0) += 1.0 / chunk.len() as f64;
        }
        m
    };
    let (fa, fb) = (freq(a), freq(b));
    let keys: std::collections::HashSet<u32> = fa.keys().chain(fb.keys()).copied().collect();
    0.5 * keys
        .into_iter()
        .map(|k| (fa.get(&k).unwrap_or(&0.0) - fb.get(&k).unwrap_or(&0.0)).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SequentialGen, TraceGenerator, UniformGen, ZipfGen};

    #[test]
    fn sequential_reuse_distance_is_items_minus_one() {
        let t = SequentialGen::new(8).generate(80);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold_accesses, 8);
        // Every reuse of a sequential sweep has distance n−1 = 7.
        assert_eq!(p.histogram.len(), 8);
        assert_eq!(p.histogram[7], 72);
        assert!((p.mean_distance() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_item_has_zero_distance() {
        let t = Trace::from_ids([1u32, 1, 1, 1]);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold_accesses, 1);
        assert_eq!(p.histogram[0], 3);
    }

    #[test]
    fn hit_ratio_is_monotone_in_buffer_size() {
        let t = ZipfGen::new(32, 5).generate(2000);
        let p = ReuseProfile::compute(&t);
        let mut last = 0.0;
        for d in [1usize, 2, 4, 8, 16, 32] {
            let h = p.hit_ratio(d);
            assert!(h >= last);
            last = h;
        }
        assert!(p.hit_ratio(32) > 0.9);
    }

    #[test]
    fn zipf_has_shorter_mean_reuse_than_uniform() {
        let z = ReuseProfile::compute(&ZipfGen::new(32, 5).generate(4000));
        let u = ReuseProfile::compute(&UniformGen::new(32, 5).generate(4000));
        assert!(z.mean_distance() < u.mean_distance());
    }

    #[test]
    fn working_set_curve_reflects_footprint() {
        let t = SequentialGen::new(4).generate(40);
        assert_eq!(working_set_curve(&t, 8), vec![4; 5]);
        let tight = Trace::from_ids([0u32; 16]);
        assert_eq!(working_set_curve(&tight, 8), vec![1, 1]);
    }

    #[test]
    fn stable_workload_has_no_phases() {
        let t = UniformGen::new(16, 9).generate(1000);
        assert!(detect_phases(&t, 100, 0.6).is_empty());
    }

    #[test]
    fn phase_change_is_detected_at_boundary() {
        let mut ids: Vec<u32> = (0..300).map(|i| i % 8).collect();
        ids.extend((0..300).map(|i| 20 + i % 8));
        let t = Trace::from_ids(ids);
        let phases = detect_phases(&t, 100, 0.5);
        assert_eq!(phases, vec![300]);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_rejected() {
        let _ = working_set_curve(&Trace::from_ids([0u32]), 0);
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = ReuseProfile::compute(&Trace::new());
        assert_eq!(p.cold_accesses, 0);
        assert_eq!(p.reuses(), 0);
        assert_eq!(p.mean_distance(), 0.0);
        assert_eq!(p.hit_ratio(8), 0.0);
    }
}
