#!/usr/bin/env bash
# The full CI gate, runnable locally. Entirely offline: the workspace
# has no registry dependencies (tests/hermetic.rs enforces this), so
# CARGO_NET_OFFLINE=1 must never cause a failure.
#
# Usage:
#   bash scripts/ci.sh               # full gate
#   bash scripts/ci.sh --tests-only  # build + test only
#
# --tests-only exists for the DWM_THREADS matrix legs: lints, docs and
# the bench gate are thread-count-independent, so only the build+test
# portion repeats per thread count (the bench gate in particular must
# run at the default count the checked-in baseline was recorded with).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

MODE="${1:-full}"
case "$MODE" in
full | --tests-only) ;;
*)
  echo "usage: $0 [--tests-only]" >&2
  exit 2
  ;;
esac

if [[ "$MODE" == full ]]; then
  echo "== cargo fmt --check"
  cargo fmt --all --check

  echo "== cargo clippy"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "== cargo doc"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
fi

echo "== cargo build --release (DWM_THREADS=${DWM_THREADS:-default})"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

if [[ "$MODE" == "--tests-only" ]]; then
  echo "CI test gate passed (DWM_THREADS=${DWM_THREADS:-default})"
  exit 0
fi

echo "== README quickstart smoke"
bash scripts/doc_smoke.sh

echo "== topology sweep smoke (small corpus)"
cargo run --release -q -p dwm-experiments --bin exp_topology -- --small >/dev/null

echo "== bench regression gate"
bash scripts/bench_gate.sh

echo "CI gate passed"
