#!/usr/bin/env bash
# Benchmark regression gate: runs the gated bench suites with JSON
# output and compares medians against the checked-in baseline
# (results/bench_baseline.json). Fails when any benchmark's median is
# more than DWM_BENCH_GATE_THRESHOLD (default 0.25 = 25%) slower.
#
# After an intentional performance change (or on a new reference
# machine), re-baseline and commit the result:
#
#   bash scripts/bench_gate.sh --rebaseline
#
# The comparison logic lives in crates/bench/src/gate.rs (unit-tested);
# this script only runs the suites and invokes the bench_compare CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

BASELINE=results/bench_baseline.json
THRESHOLD="${DWM_BENCH_GATE_THRESHOLD:-0.25}"
# Few samples: the gate wants medians that are stable to tens of
# percent, not publication-grade statistics. Override via env.
export DWM_BENCH_SAMPLES="${DWM_BENCH_SAMPLES:-10}"
export DWM_BENCH_WARMUP_MS="${DWM_BENCH_WARMUP_MS:-50}"

reports="$(mktemp -d)"
trap 'rm -rf "$reports"' EXIT

# Only the suites with parallel (bench_threads) coverage are gated,
# plus the serve request-latency suite — fast enough to run on every
# CI push.
for suite in bench_sweep bench_exact bench_graph bench_serve; do
  echo "== $suite"
  DWM_BENCH_JSON="$reports" cargo bench -q -p dwm-bench --bench "$suite"
done

mkdir -p results
if [[ "${1:-}" == "--rebaseline" ]]; then
  cargo run --release -q -p dwm-bench --bin bench_compare -- \
    --write-baseline "$BASELINE" "$reports"
else
  cargo run --release -q -p dwm-bench --bin bench_compare -- \
    --threshold "$THRESHOLD" "$BASELINE" "$reports"
fi
