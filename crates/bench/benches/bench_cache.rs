//! T6: DWM cache replay throughput per policy stack.

use dwm_bench::BENCH_SEED;
use dwm_cache::{CacheConfig, DwmCache, PromotionPolicy, ReplacementPolicy};
use dwm_foundation::bench::{black_box, Harness};
use dwm_trace::synth::{TraceGenerator, ZipfGen};

fn main() {
    let trace = ZipfGen::new(512, BENCH_SEED).generate(20_000);
    let stacks: Vec<(&str, CacheConfig)> = vec![
        ("lru", CacheConfig::new(8, 8).expect("valid")),
        (
            "sa_lru",
            CacheConfig::new(8, 8)
                .expect("valid")
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 }),
        ),
        (
            "sa_lru_promo",
            CacheConfig::new(8, 8)
                .expect("valid")
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 })
                .with_promotion(PromotionPolicy::SwapTowardPort),
        ),
    ];
    let mut h = Harness::from_env("cache_replay");
    for (name, config) in stacks {
        h.bench(&format!("cache_replay/{name}"), || {
            let mut cache = DwmCache::new(config);
            cache.run_trace(black_box(&trace))
        });
    }
    h.finish();
}
