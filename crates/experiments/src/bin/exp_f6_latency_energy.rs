//! Experiment F6: latency and energy improvement.
//!
//! Projects the T3 shift reductions through the device timing/energy
//! model (experiment T1's parameters): per benchmark, total access
//! latency and energy of the naive vs. hybrid placements.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{Hybrid, OrderOfAppearance, PlacementAlgorithm};
use dwm_device::{CostProjection, DeviceConfig};
use dwm_experiments::{workload_suite, Table};
use dwm_graph::AccessGraph;

fn main() {
    println!("Figure 6: latency / energy of naive vs. hybrid (single-port DBC)\n");
    let mut t = Table::new([
        "benchmark",
        "naive cycles",
        "hybrid cycles",
        "latency gain",
        "naive nJ",
        "hybrid nJ",
        "energy gain",
    ]);
    let config = DeviceConfig::default();
    let projection = CostProjection::new(&config);
    let model = SinglePortCost::new();
    for (name, trace) in workload_suite() {
        let graph = AccessGraph::from_trace(&trace);
        let naive = model
            .trace_cost(&OrderOfAppearance.place(&graph), &trace)
            .stats;
        let grouped = model
            .trace_cost(&Hybrid::default().place(&graph), &trace)
            .stats;
        let (nl, gl) = (
            projection.latency(&naive).total_cycles(),
            projection.latency(&grouped).total_cycles(),
        );
        let (ne, ge) = (
            projection.energy(&naive).total_nj(),
            projection.energy(&grouped).total_nj(),
        );
        t.row([
            name,
            nl.to_string(),
            gl.to_string(),
            format!("{:.2}x", nl as f64 / gl.max(1) as f64),
            format!("{ne:.2}"),
            format!("{ge:.2}"),
            format!("{:.2}x", ne / ge.max(1e-12)),
        ]);
    }
    t.print();
}
