#!/usr/bin/env bash
# Regenerates every experiment table/figure into results/.
#
# Runs every experiment binary even when one fails, then exits nonzero
# listing the failures, so CI reports the full picture instead of
# stopping at the first broken experiment.
#
# With --csv, each binary additionally runs in CSV mode and the output
# lands in results/<bin>.csv (the plain-text tables are still written).
set -euo pipefail
cd "$(dirname "$0")/.."
csv=0
if [[ "${1:-}" == "--csv" ]]; then
  csv=1
fi
mkdir -p results
bins=(
  exp_t1_device_config exp_t2_benchmarks exp_t3_shift_reduction
  exp_t4_optimality exp_t5_spm exp_t6_cache exp_t7_extended
  exp_t8_layout_pass exp_t9_instruction exp_f3_normalized
  exp_f4_tape_length exp_f5_ports exp_f6_latency_energy
  exp_f7_runtime exp_f8_typed_ports exp_f9_reliability
  exp_f10_online exp_f11_wear exp_f11_session_drift
  exp_tier_tradeoff exp_a1_ablation exp_profile_fidelity
  exp_v1_crosscheck exp_topology
)
failed=()
for b in "${bins[@]}"; do
  echo "== $b"
  if ! cargo run --release -q -p dwm-experiments --bin "$b" | tee "results/$b.txt"; then
    failed+=("$b")
  fi
  if ((csv)); then
    if ! cargo run --release -q -p dwm-experiments --bin "$b" -- --csv \
      >"results/$b.csv"; then
      failed+=("$b (csv)")
    fi
  fi
done
if ((${#failed[@]} > 0)); then
  echo "FAILED: ${failed[*]}" >&2
  exit 1
fi
