use dwm_foundation::Rng;

use dwm_graph::{AccessGraph, ArrangementEval, CsrGraph};

use crate::algorithms::chain::ChainGrowth;
use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Simulated annealing over item-swap moves.
///
/// A strong stochastic comparator: starts from the [`ChainGrowth`]
/// solution and explores swaps of two items' offsets with the classic
/// Metropolis acceptance rule and geometric cooling. The graph is
/// frozen to a [`CsrGraph`] at entry and all cost deltas come from an
/// [`ArrangementEval`], so each move is `O(deg(a) + deg(b))` over flat
/// arrays rather than `O(E)` tree walks. The best placement is not
/// cloned on improvement; it is recorded as a depth into the
/// evaluator's move log and recovered by unwinding at the end.
///
/// Deterministic for a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature (in cost units).
    pub initial_temperature: f64,
    /// Geometric cooling factor applied every `iterations / 100` moves.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimulatedAnnealing {
    /// Default-tuned annealer with the given seed.
    pub fn new(seed: u64) -> Self {
        SimulatedAnnealing {
            iterations: 20_000,
            initial_temperature: 50.0,
            cooling: 0.95,
            seed,
        }
    }

    /// Sets the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Anneals from `start` on an already-frozen graph. This is the
    /// whole algorithm; [`place`](PlacementAlgorithm::place) just
    /// freezes and delegates. Callers that run many anneals on one
    /// graph (e.g. [`MultiStart`](crate::MultiStart)) freeze once and
    /// call this directly.
    pub fn place_frozen(&self, csr: &CsrGraph, start: Placement) -> Placement {
        let n = csr.num_items();
        if n < 2 {
            return start;
        }
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut eval = ArrangementEval::new(csr, start.offsets());
        let mut current_cost = eval.total() as i64;
        let mut best_cost = current_cost;
        // Depth into the move log at which the best placement lives;
        // unwound at the end instead of cloning on every improvement.
        let mut best_depth = 0usize;

        let mut temperature = self.initial_temperature.max(f64::MIN_POSITIVE);
        let cool_every = (self.iterations / 100).max(1);
        // Metrics accumulate locally and flush once after the loop, so
        // the hot path never touches an atomic.
        let (mut proposed, mut accepted_moves) = (0u64, 0u64);

        for step in 0..self.iterations {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            proposed += 1;
            let delta = eval.swap_delta(a, b);
            // Metropolis acceptance, `u < exp(−delta/temperature)`
            // with `u = next_f64()`. The uniform draw comes first so
            // the comparison can usually skip the transcendental:
            // `u` is a multiple of 2⁻⁵³, and for exponents ≤ −37,
            // exp() is below e⁻³⁷ < 2⁻⁵³ — smaller than every nonzero
            // `u` — so the draw decides by itself unless it is exactly
            // 0.0 (probability 2⁻⁵³). Identical accept decisions and
            // RNG stream as computing exp() every time.
            let accept = delta <= 0 || {
                let x = -(delta as f64) / temperature;
                let u = rng.next_f64();
                if x <= -37.0 {
                    u == 0.0 && x.exp() > 0.0
                } else {
                    u < x.exp()
                }
            };
            if accept {
                accepted_moves += 1;
                eval.apply_swap_with_delta(a, b, delta);
                current_cost += delta;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best_depth = eval.log_len();
                }
            }
            if step % cool_every == cool_every - 1 {
                temperature = (temperature * self.cooling).max(1e-9);
            }
        }
        while eval.log_len() > best_depth {
            eval.undo();
        }
        debug_assert_eq!(eval.total() as i64, best_cost);
        moves_proposed_counter().add(proposed);
        moves_accepted_counter().add(accepted_moves);
        Placement::from_offsets(eval.positions().to_vec())
            .expect("evaluator maintains a permutation")
    }
}

/// Moves proposed across all annealing runs in this process.
pub(crate) fn moves_proposed_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_annealing_moves_proposed_total",
        "Swap moves proposed by simulated annealing (distinct-slot proposals)"
    )
}

/// Moves accepted across all annealing runs in this process.
pub(crate) fn moves_accepted_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_annealing_moves_accepted_total",
        "Swap moves accepted by the Metropolis criterion in simulated annealing"
    )
}

impl PlacementAlgorithm for SimulatedAnnealing {
    fn name(&self) -> String {
        "annealing".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let n = graph.num_items();
        if n < 2 {
            return Placement::identity(n);
        }
        let start = ChainGrowth.place(graph);
        let csr = CsrGraph::freeze(graph);
        self.place_frozen(&csr, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, two_cluster_graph};

    #[test]
    fn eval_swap_delta_matches_graph_recomputation() {
        let g = kernel_graph();
        let csr = CsrGraph::freeze(&g);
        let mut p = ChainGrowth.place(&g);
        let before = g.arrangement_cost(p.offsets()) as i64;
        let eval = ArrangementEval::new(&csr, p.offsets());
        for (a, b) in [(0usize, 3usize), (1, 5), (2, 4)] {
            let delta = eval.swap_delta(a, b);
            p.swap_items(a, b);
            let after = g.arrangement_cost(p.offsets()) as i64;
            assert_eq!(after - before, delta, "delta mismatch for swap {a},{b}");
            p.swap_items(a, b); // restore
        }
    }

    #[test]
    fn never_worse_than_its_chain_growth_start() {
        let g = two_cluster_graph();
        let start = g.arrangement_cost(ChainGrowth.place(&g).offsets());
        let annealed = g.arrangement_cost(SimulatedAnnealing::new(7).place(&g).offsets());
        assert!(annealed <= start);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = kernel_graph();
        let a = SimulatedAnnealing::new(3).with_iterations(2000).place(&g);
        let b = SimulatedAnnealing::new(3).with_iterations(2000).place(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graphs_short_circuit() {
        for n in 0..2 {
            let g = AccessGraph::with_items(n);
            assert_eq!(SimulatedAnnealing::new(1).place(&g), Placement::identity(n));
        }
    }

    #[test]
    fn zero_iterations_returns_start() {
        let g = kernel_graph();
        let p = SimulatedAnnealing::new(1).with_iterations(0).place(&g);
        assert_eq!(p, ChainGrowth.place(&g));
    }

    #[test]
    fn frozen_entry_point_matches_place() {
        let g = two_cluster_graph();
        let via_place = SimulatedAnnealing::new(5).with_iterations(3000).place(&g);
        let csr = CsrGraph::freeze(&g);
        let via_frozen = SimulatedAnnealing::new(5)
            .with_iterations(3000)
            .place_frozen(&csr, ChainGrowth.place(&g));
        assert_eq!(via_place, via_frozen);
    }
}
