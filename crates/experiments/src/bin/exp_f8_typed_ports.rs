//! Experiment F8 (ablation): read-only vs. read-write port mix.
//!
//! Real DWM macros pair many cheap read heads with few expensive write
//! heads. Fixing 4 ports on a 64-word tape, we sweep how many are
//! read-write and replay the kernel suite with the hybrid placement.
//! Write-heavy kernels (fft, histogram, merge-sort) pay the most for
//! losing writers; read-dominated ones (bfs, stencil) barely notice.

use dwm_core::cost::{CostModel, TypedPortCost};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_device::TypedPortLayout;
use dwm_experiments::{workload_suite, Table};
use dwm_graph::AccessGraph;

fn main() {
    println!("Figure 8: total shifts vs. read-write port count (4 ports total, L = 64)\n");
    let mut header = vec!["benchmark".to_string(), "write share".into()];
    for rw in [4usize, 2, 1] {
        header.push(format!("{rw}rw"));
    }
    header.push("penalty 4rw->1rw".into());
    let mut t = Table::new(header);

    for (name, trace) in workload_suite() {
        let graph = AccessGraph::from_trace(&trace);
        let placement = Hybrid::default().place(&graph);
        let stats = trace.stats();
        let mut shifts = Vec::new();
        for rw in [4usize, 2, 1] {
            let model = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, rw, 64));
            shifts.push(model.trace_cost(&placement, &trace).stats.shifts);
        }
        let mut cells = vec![
            name,
            format!("{:.0}%", 100.0 * stats.writes as f64 / stats.length as f64),
        ];
        for &s in &shifts {
            cells.push(s.to_string());
        }
        cells.push(format!(
            "{:.2}x",
            shifts[2] as f64 / shifts[0].max(1) as f64
        ));
        t.row(cells);
    }
    t.print();
}
