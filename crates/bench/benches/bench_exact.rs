//! T4: exact subset-DP optimum vs. instance size.

use dwm_bench::BENCH_SEED;
use dwm_core::exact::optimal_placement;
use dwm_foundation::bench::{black_box, Harness};
use dwm_graph::generators::random_graph;

fn main() {
    let mut h = Harness::from_env("exact_dp").with_samples(10);
    for n in [8usize, 12, 16] {
        let graph = random_graph(n, 0.5, 8, BENCH_SEED);
        h.bench(&format!("exact_dp/{n}"), || {
            optimal_placement(black_box(&graph)).expect("solvable")
        });
    }
    h.finish();
}
