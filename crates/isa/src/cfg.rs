use dwm_foundation::Rng;
/// Identifier of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub usize);

dwm_foundation::json_newtype!(BlockId);

/// A weighted, directed control-flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfgEdge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// Execution frequency (profile count).
    pub frequency: u64,
}

dwm_foundation::json_struct!(CfgEdge {
    from,
    to,
    frequency
});

/// A control-flow graph with block sizes and profiled edge
/// frequencies.
///
/// # Example
///
/// ```
/// use dwm_isa::{Cfg, BlockId};
///
/// let mut cfg = Cfg::new();
/// let a = cfg.block(4);
/// let b = cfg.block(6);
/// cfg.edge(a, b, 100);
/// assert_eq!(cfg.num_blocks(), 2);
/// assert_eq!(cfg.block_len(b), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cfg {
    lens: Vec<usize>,
    edges: Vec<CfgEdge>,
}

dwm_foundation::json_struct!(Cfg { lens, edges });

impl Cfg {
    /// An empty CFG.
    pub fn new() -> Self {
        Cfg::default()
    }

    /// Adds a block of `len` instructions (words on the tape).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn block(&mut self, len: usize) -> BlockId {
        assert!(len > 0, "blocks must hold at least one instruction");
        self.lens.push(len);
        BlockId(self.lens.len() - 1)
    }

    /// Adds (or accumulates onto) a control-flow edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is undeclared.
    pub fn edge(&mut self, from: BlockId, to: BlockId, frequency: u64) {
        assert!(from.0 < self.lens.len() && to.0 < self.lens.len());
        if let Some(e) = self.edges.iter_mut().find(|e| e.from == from && e.to == to) {
            e.frequency += frequency;
            return;
        }
        self.edges.push(CfgEdge {
            from,
            to,
            frequency,
        });
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.lens.len()
    }

    /// Instruction count of `b`.
    pub fn block_len(&self, b: BlockId) -> usize {
        self.lens[b.0]
    }

    /// Total instruction footprint.
    pub fn total_len(&self) -> usize {
        self.lens.iter().sum()
    }

    /// The edges with their frequencies.
    pub fn edges(&self) -> &[CfgEdge] {
        &self.edges
    }

    /// A random reducible-ish CFG: a block chain with forward
    /// branches, backward loop edges, and skewed frequencies. Block
    /// sizes are 1–8 instructions.
    pub fn random(blocks: usize, fanout: usize, seed: u64) -> Cfg {
        assert!(blocks >= 2);
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = Cfg::new();
        for _ in 0..blocks {
            let len = rng.gen_range(1..=8usize);
            cfg.block(len);
        }
        // Chain edges (program order fallthrough candidates).
        for b in 0..blocks - 1 {
            cfg.edge(BlockId(b), BlockId(b + 1), 10 + rng.gen_range(0..90u64));
        }
        // Random extra edges: mostly forward, some back edges (loops)
        // with hot frequencies.
        for b in 0..blocks {
            for _ in 0..fanout.saturating_sub(1) {
                let target = rng.gen_range(0..blocks);
                if target == b {
                    continue;
                }
                let hot = target < b; // back edge: loop, hotter
                let freq = if hot {
                    100 + rng.gen_range(0..400u64)
                } else {
                    1 + rng.gen_range(0..50u64)
                };
                cfg.edge(BlockId(b), BlockId(target), freq);
            }
        }
        cfg
    }

    /// A structured CFG: `loops` hot inner loops of `body` blocks each,
    /// joined by cold glue blocks — the shape compilers actually emit.
    pub fn structured(loops: usize, body: usize, iterations: u64) -> Cfg {
        assert!(loops > 0 && body > 0);
        let mut cfg = Cfg::new();
        let mut prev_exit: Option<BlockId> = None;
        for _ in 0..loops {
            let header = cfg.block(2);
            if let Some(exit) = prev_exit {
                cfg.edge(exit, header, 1);
            }
            let mut prev = header;
            for _ in 0..body {
                let blk = cfg.block(4);
                cfg.edge(prev, blk, iterations);
                prev = blk;
            }
            // Back edge to the header (hot) and loop exit (cold).
            cfg.edge(prev, header, iterations);
            let exit = cfg.block(1);
            cfg.edge(header, exit, 1);
            prev_exit = Some(exit);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_edge_accounting() {
        let mut cfg = Cfg::new();
        let a = cfg.block(3);
        let b = cfg.block(5);
        cfg.edge(a, b, 7);
        cfg.edge(a, b, 3); // accumulates
        assert_eq!(cfg.num_blocks(), 2);
        assert_eq!(cfg.total_len(), 8);
        assert_eq!(cfg.edges().len(), 1);
        assert_eq!(cfg.edges()[0].frequency, 10);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_length_block_rejected() {
        Cfg::new().block(0);
    }

    #[test]
    fn random_cfg_is_deterministic_and_connected_chain() {
        let a = Cfg::random(16, 3, 9);
        let b = Cfg::random(16, 3, 9);
        assert_eq!(a, b);
        // The chain edges guarantee every consecutive pair is linked.
        for i in 0..15 {
            assert!(a
                .edges()
                .iter()
                .any(|e| e.from == BlockId(i) && e.to == BlockId(i + 1)));
        }
    }

    #[test]
    fn structured_cfg_has_hot_back_edges() {
        let cfg = Cfg::structured(2, 3, 500);
        let hot: Vec<&CfgEdge> = cfg.edges().iter().filter(|e| e.frequency >= 500).collect();
        // body edges + back edge per loop.
        assert_eq!(hot.len(), 2 * (3 + 1));
        // Back edges go backwards.
        assert!(hot.iter().any(|e| e.to.0 < e.from.0));
    }
}
