//! Experiment F11 (extension): wear leveling vs. shift overhead.
//!
//! Start-gap rotation spreads write pressure across tape slots at the
//! cost of extra shifts per rotation. For each write-heavy kernel we
//! sweep the rotation period and report wear imbalance (hottest slot /
//! mean, 1.0 = level) against the shift overhead relative to the
//! non-rotating run — the endurance-vs-performance Pareto the designer
//! picks from.

use dwm_core::wear::{RotatingEvaluator, WearConfig};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_experiments::{workload_suite, Table};
use dwm_graph::AccessGraph;

fn main() {
    println!("Figure 11: wear imbalance vs. shift overhead (hybrid placement, start-gap)\n");
    let mut t = Table::new([
        "benchmark",
        "static imbalance",
        "rot/256w imbalance",
        "rot/256w overhead",
        "rot/64w imbalance",
        "rot/64w overhead",
    ]);
    for (name, trace) in workload_suite() {
        let stats = trace.stats();
        if stats.writes < 100 {
            continue; // wear is a write phenomenon
        }
        let graph = AccessGraph::from_trace(&trace);
        let placement = Hybrid::default().place(&graph);
        let n = graph.num_items();
        let fixed = RotatingEvaluator::new(WearConfig::disabled()).evaluate(&placement, &trace);
        let mut cells = vec![name, format!("{:.2}", fixed.imbalance())];
        for period in [256u64, 64] {
            let rot = RotatingEvaluator::new(WearConfig::every_writes(period, n))
                .evaluate(&placement, &trace);
            cells.push(format!("{:.2}", rot.imbalance()));
            cells.push(format!(
                "+{:.1}%",
                100.0 * (rot.total_shifts() as f64 - fixed.total_shifts() as f64)
                    / fixed.total_shifts().max(1) as f64
            ));
        }
        t.row(cells);
    }
    t.print();
    println!("\n(read-dominated kernels omitted: wear is a write phenomenon)");
}
