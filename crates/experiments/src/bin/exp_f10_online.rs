//! Experiment F10 (extension): online adaptive placement.
//!
//! A phase-changing workload (four Markov phases whose hot clusters
//! live on disjoint, shuffled parts of the item space) is served by:
//!
//! * `static-naive` — identity placement, never changes;
//! * `static-oracle` — one hybrid placement computed offline from the
//!   *whole* trace (the best any static scheme can do with perfect
//!   profile knowledge);
//! * `online` — the windowed adaptive placer at three migration-cost
//!   settings, paying explicit migration shifts at every re-placement.
//!
//! The point of the figure: adaptation beats even the oracle when
//! phases disagree, and its migration overhead stays a small fraction
//! of the access bill.
//!
//! The window profiles (per-window traces and graphs) depend only on
//! the trace and the window length, so they are computed **once** and
//! shared across the configuration sweep via
//! [`OnlinePlacer::run_profiles`] — replaying the whole trace from
//! offset 0 per configuration would redo that dominant work per row.
//! The dedupe is guarded: the headline configuration is also replayed
//! the slow way and must match the profile-based run exactly.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::online::{window_profiles, OnlineConfig, OnlinePlacer};
use dwm_core::{Hybrid, Placement, PlacementAlgorithm};
use dwm_experiments::{percent_reduction, Table, EXPERIMENT_SEED};
use dwm_graph::AccessGraph;
use dwm_trace::synth::{PhasedGen, TraceGenerator};

const WINDOW: usize = 1000;

fn main() {
    println!("Figure 10: static vs. online placement on a 4-phase workload (64 items)\n");
    let trace = PhasedGen::new(64, 4, EXPERIMENT_SEED).generate(20_000);
    let model = SinglePortCost::new();
    let n = trace.num_items();

    let naive = model
        .trace_cost(&Placement::identity(n), &trace)
        .stats
        .shifts;
    let oracle_placement = Hybrid::default().place(&AccessGraph::from_trace(&trace));
    let oracle = model.trace_cost(&oracle_placement, &trace).stats.shifts;

    // One profile pass shared by every online configuration.
    let profiles = window_profiles(&trace, WINDOW, n);
    let config = |migration_shifts_per_item| OnlineConfig {
        window: WINDOW,
        migration_shifts_per_item,
        ..OnlineConfig::default()
    };
    let online: Vec<_> = [16u64, 64, 256]
        .into_iter()
        .map(|m| (m, OnlinePlacer::new(config(m)).run_profiles(n, &profiles)))
        .collect();
    // Guard the dedupe: shared profiles must reproduce the per-config
    // full replay bit for bit (checked on the headline setting).
    assert_eq!(
        online[1].1,
        OnlinePlacer::new(config(64)).run(&trace),
        "profile-based replay diverged from the full trace replay"
    );

    let mut t = Table::new([
        "scheme",
        "access shifts",
        "migration shifts",
        "total",
        "vs naive",
    ]);
    t.row([
        "static-naive".to_string(),
        naive.to_string(),
        "0".into(),
        naive.to_string(),
        "0.0%".into(),
    ]);
    t.row([
        "static-oracle".to_string(),
        oracle.to_string(),
        "0".into(),
        oracle.to_string(),
        percent_reduction(naive, oracle),
    ]);
    for (m, report) in &online {
        t.row([
            format!("online (m={m})"),
            report.access_shifts.to_string(),
            report.migration_shifts.to_string(),
            report.total_shifts().to_string(),
            percent_reduction(naive, report.total_shifts()),
        ]);
    }
    t.print();
    let (_, headline) = &online[1];
    println!(
        "\nonline (m=64) adaptations: {} ({} items moved in total)",
        headline.migrations, headline.items_moved
    );
}
