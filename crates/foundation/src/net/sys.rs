//! Raw Linux syscall bindings for the readiness-based server core.
//!
//! The workspace is hermetic — no `libc` crate — so the handful of
//! syscalls the event loop needs (`epoll_*`, `eventfd`, and a
//! `SO_REUSEPORT` socket/bind/listen path) are declared here directly,
//! following the same `extern "C"` pattern as `crate` signal handling
//! in `dwm-serve`. Everything is `pub(crate)`: the public surface is
//! the [`super::poller::Poller`] abstraction, not the raw calls.
//!
//! On non-Linux targets the module degrades: [`bind_listener`] falls
//! back to `std` (no port sharding) and the epoll/eventfd entry points
//! are absent — the poller exposes a stub that reports
//! `io::ErrorKind::Unsupported` (a kqueue backend would slot in here).

use std::io;
use std::net::{SocketAddr, TcpListener};

/// Whether this target supports `SO_REUSEPORT` acceptor sharding.
#[cfg(target_os = "linux")]
pub(crate) const REUSEPORT: bool = true;
/// Whether this target supports `SO_REUSEPORT` acceptor sharding.
#[cfg(not(target_os = "linux"))]
pub(crate) const REUSEPORT: bool = false;

/// Raw fd of any `AsRawFd` type, cfg-free for callers.
#[cfg(unix)]
pub(crate) fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

/// Raw fd of any `AsRawFd` type, cfg-free for callers.
#[cfg(not(unix))]
pub(crate) fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// Best-effort bump of `RLIMIT_NOFILE` soft → hard. Returns the soft
/// limit now in effect (0 when the limit cannot be read on this
/// target). Daemons and load generators call this before holding
/// thousands of sockets; failure is never fatal.
pub fn raise_nofile_limit() -> u64 {
    #[cfg(target_os = "linux")]
    {
        linux::raise_nofile_limit().unwrap_or(0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Binds a listening socket for acceptor shard `shard` of `addr`.
///
/// On Linux every shard binds its own socket with `SO_REUSEPORT`, so
/// the kernel load-balances incoming connections across shards;
/// shard 0 may carry port 0 and the caller re-resolves the real port
/// via `local_addr` before binding the rest. Elsewhere only shard 0
/// can exist (plain `std` bind).
pub(crate) fn bind_listener(addr: &SocketAddr) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        linux::bind_reuseport(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        TcpListener::bind(addr)
    }
}

#[cfg(target_os = "linux")]
pub(crate) mod linux {
    //! The Linux implementations. All `unsafe` is confined to this
    //! module, one syscall per wrapper, each with its SAFETY argument.

    use std::io;
    use std::net::{IpAddr, SocketAddr, TcpListener};
    use std::os::raw::{c_int, c_uint, c_void};
    use std::os::unix::io::FromRawFd;

    // epoll event masks.
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    // epoll_ctl ops.
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o200_0000;
    const EFD_CLOEXEC: c_int = 0o200_0000;
    const EFD_NONBLOCK: c_int = 0o4000;

    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o200_0000;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;
    const SO_REUSEPORT: c_int = 15;
    const LISTEN_BACKLOG: c_int = 1024;

    const RLIMIT_NOFILE: c_int = 7;

    /// `struct epoll_event`. Packed on x86-64 only, mirroring the
    /// kernel/glibc `__EPOLL_PACKED` attribute for that ABI.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct rlimit`.
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    /// `struct sockaddr_in`, byte-array fields so network byte order
    /// is explicit at the construction site.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: [u8; 2],
        addr: [u8; 4],
        zero: [u8; 8],
    }

    /// `struct sockaddr_in6`.
    #[repr(C)]
    struct SockAddrIn6 {
        family: u16,
        port: [u8; 2],
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// New epoll instance (close-on-exec).
    pub fn epoll_create() -> io::Result<i32> {
        // SAFETY: no pointers; returns a new fd or -1.
        check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    /// Adds/modifies/removes `fd` in epoll set `epfd`.
    pub fn epoll_control(epfd: i32, op: c_int, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a valid, initialized epoll_event for the
        // duration of the call; the kernel copies it out. DEL ignores
        // the event pointer on modern kernels but passing one is
        // always valid.
        check(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Waits for readiness events; `timeout_ms < 0` blocks forever.
    /// `EINTR` surfaces as `Ok(0)` so callers simply re-loop.
    pub fn epoll_pwait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `buf` is valid writable memory for `buf.len()`
        // events; the kernel writes at most that many.
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }

    /// New nonblocking eventfd, the cross-thread wakeup primitive.
    pub fn eventfd_new() -> io::Result<i32> {
        // SAFETY: no pointers.
        check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    /// Rings an eventfd (adds 1 to its counter). Saturation (EAGAIN)
    /// already means "wakeup pending", so errors are ignored.
    pub fn eventfd_wake(fd: i32) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a valid u64.
        let _ = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains an eventfd counter so it can ring again.
    pub fn eventfd_drain(fd: i32) {
        let mut val: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a valid u64.
        let _ = unsafe { read(fd, (&mut val as *mut u64).cast(), 8) };
    }

    /// Closes a raw fd owned by this module (eventfd, epoll fd).
    pub fn close_fd(fd: i32) {
        // SAFETY: the caller owns `fd` and never uses it afterwards.
        let _ = unsafe { close(fd) };
    }

    /// Binds a nonblocking listener with `SO_REUSEPORT`, so several
    /// acceptor shards can share one port and the kernel spreads
    /// incoming connections across them.
    pub fn bind_reuseport(addr: &SocketAddr) -> io::Result<TcpListener> {
        let domain = match addr.ip() {
            IpAddr::V4(_) => AF_INET,
            IpAddr::V6(_) => AF_INET6,
        };
        // SAFETY: no pointers; returns a new fd or -1.
        let fd = check(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0) })?;
        let result = (|| {
            let one: c_int = 1;
            for opt in [SO_REUSEADDR, SO_REUSEPORT] {
                // SAFETY: optval points at a live c_int of the stated
                // length.
                check(unsafe {
                    setsockopt(
                        fd,
                        SOL_SOCKET,
                        opt,
                        (&one as *const c_int).cast(),
                        std::mem::size_of::<c_int>() as u32,
                    )
                })?;
            }
            match *addr {
                SocketAddr::V4(v4) => {
                    let sa = SockAddrIn {
                        family: AF_INET as u16,
                        port: v4.port().to_be_bytes(),
                        addr: v4.ip().octets(),
                        zero: [0; 8],
                    };
                    // SAFETY: `sa` is a properly laid-out sockaddr_in
                    // and the length matches its size.
                    check(unsafe {
                        bind(
                            fd,
                            (&sa as *const SockAddrIn).cast(),
                            std::mem::size_of::<SockAddrIn>() as u32,
                        )
                    })?;
                }
                SocketAddr::V6(v6) => {
                    let sa = SockAddrIn6 {
                        family: AF_INET6 as u16,
                        port: v6.port().to_be_bytes(),
                        flowinfo: v6.flowinfo(),
                        addr: v6.ip().octets(),
                        scope_id: v6.scope_id(),
                    };
                    // SAFETY: `sa` is a properly laid-out sockaddr_in6
                    // and the length matches its size.
                    check(unsafe {
                        bind(
                            fd,
                            (&sa as *const SockAddrIn6).cast(),
                            std::mem::size_of::<SockAddrIn6>() as u32,
                        )
                    })?;
                }
            }
            // SAFETY: no pointers.
            check(unsafe { listen(fd, LISTEN_BACKLOG) })?;
            Ok(())
        })();
        match result {
            // SAFETY: `fd` is a fresh, valid listening socket whose
            // ownership transfers to the TcpListener.
            Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
            Err(e) => {
                close_fd(fd);
                Err(e)
            }
        }
    }

    /// Raises `RLIMIT_NOFILE` soft → hard; returns the soft limit now
    /// in effect.
    pub fn raise_nofile_limit() -> io::Result<u64> {
        let mut rl = Rlimit { cur: 0, max: 0 };
        // SAFETY: `rl` is valid writable memory for one rlimit.
        check(unsafe { getrlimit(RLIMIT_NOFILE, &mut rl) })?;
        if rl.cur >= rl.max {
            return Ok(rl.cur);
        }
        let raised = Rlimit {
            cur: rl.max,
            max: rl.max,
        };
        // SAFETY: `raised` is a valid, initialized rlimit.
        check(unsafe { setrlimit(RLIMIT_NOFILE, &raised) })?;
        Ok(raised.cur)
    }
}
