//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! evaluation (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded results). This library provides the
//! pieces they share: the workload suite, the algorithm roster, and an
//! aligned-table/CSV printer.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p dwm-experiments --bin exp_t3_shift_reduction
//! cargo run --release -p dwm-experiments --bin exp_t3_shift_reduction -- --csv
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dwm_core::algorithms::{standard_suite, PlacementAlgorithm};
use dwm_trace::kernels::Kernel;
use dwm_trace::Trace;

/// Seed shared by every randomized component so runs are reproducible.
pub const EXPERIMENT_SEED: u64 = 0xDAC_2015;

/// The benchmark workloads: kernel name plus generated trace.
pub fn workload_suite() -> Vec<(String, Trace)> {
    Kernel::suite()
        .into_iter()
        .map(|k| (k.name().to_string(), k.trace()))
        .collect()
}

/// The algorithm roster compared in every placement experiment.
pub fn algorithm_suite() -> Vec<Box<dyn PlacementAlgorithm>> {
    standard_suite(EXPERIMENT_SEED)
}

/// Whether `--csv` was passed on the command line.
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// A simple column-aligned table that can also emit CSV.
///
/// # Example
///
/// ```
/// use dwm_experiments::Table;
///
/// let mut t = Table::new(["bench", "shifts"]);
/// t.row(["fft".to_string(), "123".to_string()]);
/// let text = t.render(false);
/// assert!(text.contains("fft"));
/// assert!(t.render(true).starts_with("bench,shifts"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV (`csv = true`) or as an aligned text table.
    pub fn render(&self, csv: bool) -> String {
        if csv {
            let mut out = String::new();
            out.push_str(&self.header.join(","));
            out.push('\n');
            for r in &self.rows {
                out.push_str(&r.join(","));
                out.push('\n');
            }
            return out;
        }
        let mut width: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (width.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Prints the table, honouring `--csv`.
    pub fn print(&self) {
        print!("{}", self.render(csv_requested()));
    }
}

/// Formats a ratio as a percentage reduction string, e.g. `37.5%`.
pub fn percent_reduction(baseline: u64, value: u64) -> String {
    if baseline == 0 {
        return "n/a".into();
    }
    format!(
        "{:.1}%",
        100.0 * (baseline as f64 - value as f64) / baseline as f64
    )
}

/// Formats `value / baseline` as a normalized factor, e.g. `0.62`.
pub fn normalized(baseline: u64, value: u64) -> String {
    if baseline == 0 {
        return "n/a".into();
    }
    format!("{:.3}", value as f64 / baseline as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_and_algorithms_are_nonempty() {
        assert_eq!(workload_suite().len(), 8);
        assert_eq!(algorithm_suite().len(), 9);
    }

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["xx", "y"]);
        let text = t.render(false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("bbbb"));
        let csv = t.render(true);
        assert_eq!(csv, "a,bbbb\nxx,y\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(["a"]);
        t.row(["x", "y"]);
    }

    #[test]
    fn percentage_helpers() {
        assert_eq!(percent_reduction(100, 60), "40.0%");
        assert_eq!(percent_reduction(0, 60), "n/a");
        assert_eq!(normalized(100, 62), "0.620");
    }
}
