//! Topology-parametric track geometry: the single source of truth for
//! "what does one shift cost, and which port serves this access".
//!
//! The paper's model is a 1D racetrack with fixed ports, but the
//! related work changes the geometry — and with it the meaning of
//! shift distance, hence what an optimal placement is:
//!
//! * [`Linear`] — today's semantics: a finite tape shifting under fixed
//!   ports; moving from word `a` to word `b` costs `|a − b|` steps on a
//!   single-port track (the minimum-linear-arrangement objective).
//! * [`Ring`] — a circular track: the domain train wraps, so the tape
//!   can always take the shorter of the two directions.
//! * [`Grid2d`] — XDWM-style orthogonal shift axes: words live on an
//!   `rows × cols` grid; longitudinal (column) and transverse (row)
//!   moves have independent per-axis step costs.
//! * [`Pirm`] — PIRM-style multi-domain transverse access: the track is
//!   tiled into fixed windows; a transverse head reads a whole aligned
//!   window, so intra-window moves are free and the tape advances in
//!   window-sized hops.
//!
//! Every geometry implements [`TrackTopology`]: pairwise
//! [`shift_distance`](TrackTopology::shift_distance) (the metric
//! placement optimizes), per-access [`plan`](TrackTopology::plan)
//! (access-port resolution + tape-state update, the replay inner loop),
//! and relative energy/wear weights per shift step. The cost models in
//! `dwm-core`, the simulator in `dwm-sim`, and the bit-level device in
//! this crate all consume this module instead of re-deriving port
//! arithmetic — [`Linear`] reproduces the pre-topology behaviour
//! byte-for-byte (golden-pinned by the workspace integration tests).

use std::fmt;

use crate::port::{PortId, PortLayout};
use crate::stats::ShiftStats;

/// Generalized tape state across topologies.
///
/// `Linear` and `Ring` use only the longitudinal component (the classic
/// displacement); `Grid2d` adds the transverse row displacement; `Pirm`
/// tracks displacement in window units. A fresh track is at
/// [`rest`](TapeState::rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TapeState {
    /// Longitudinal displacement (domains, or windows for [`Pirm`]).
    pub longitudinal: i64,
    /// Transverse displacement (rows; zero except for [`Grid2d`]).
    pub transverse: i64,
}

impl TapeState {
    /// The rest state of a fresh track (no displacement on any axis).
    pub fn rest() -> Self {
        TapeState::default()
    }
}

/// Resolution of one access under a topology: the chosen port, the
/// weighted shift distance, and the tape state afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyPlan {
    /// Port chosen to serve the access (nearest-port policy, ties to
    /// the lowest-numbered port — same rule as [`crate::shift`]).
    pub port: PortId,
    /// Shift steps the access costs, already weighted by per-axis step
    /// costs where the topology has them.
    pub distance: u64,
    /// Tape state after the access completes.
    pub state: TapeState,
}

/// Discriminant of the four built-in topologies, used for metric labels
/// and dispatch tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Finite 1D tape (the paper's model).
    Linear,
    /// Circular 1D track.
    Ring,
    /// 2D grid with orthogonal shift axes (XDWM).
    Grid2d,
    /// Multi-domain transverse access windows (PIRM).
    Pirm,
}

impl TopologyKind {
    /// All four kinds, in canonical order (stable metric-label order).
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::Linear,
        TopologyKind::Ring,
        TopologyKind::Grid2d,
        TopologyKind::Pirm,
    ];

    /// Stable lower-case label (`"linear"`, `"ring"`, …).
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Linear => "linear",
            TopologyKind::Ring => "ring",
            TopologyKind::Grid2d => "grid2d",
            TopologyKind::Pirm => "pirm",
        }
    }

    /// Index into [`TopologyKind::ALL`] (stable across releases).
    pub fn index(self) -> usize {
        match self {
            TopologyKind::Linear => 0,
            TopologyKind::Ring => 1,
            TopologyKind::Grid2d => 2,
            TopologyKind::Pirm => 3,
        }
    }
}

/// A track geometry: shift-distance metric, access-port resolution, and
/// energy/wear weights.
///
/// `len` is the number of addressable words on the track (the DBC's
/// `L`); implementations must be total for any `len ≥ 1` and any
/// `offset < len`. All implementations use integer arithmetic only, so
/// replay is byte-deterministic at any thread count.
pub trait TrackTopology {
    /// Which of the four geometries this is.
    fn kind(&self) -> TopologyKind;

    /// Canonical parameter string (`"linear"`, `"ring"`,
    /// `"grid2d:4x16"`, `"pirm:4"`). Feeds cache identity: two
    /// topologies with equal canonical strings are interchangeable.
    fn canonical(&self) -> String;

    /// Resolves one access: the port minimizing weighted shift distance
    /// from `state` (ties to the lowest-numbered port) and the state
    /// after aligning `offset` with it.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ports` is empty (validated
    /// configurations always have at least one port).
    fn plan(&self, ports: &PortLayout, len: usize, state: TapeState, offset: usize)
        -> TopologyPlan;

    /// Steady-state pairwise shift distance from word `from` to word
    /// `to`: the cost of serving `to` when the tape last served `from`
    /// (reached from rest). This is the edge metric placement
    /// optimizes; for [`Linear`] with a single port it is `|from − to|`.
    fn shift_distance(&self, ports: &PortLayout, len: usize, from: usize, to: usize) -> u64 {
        let aligned = self.plan(ports, len, TapeState::rest(), from).state;
        self.plan(ports, len, aligned, to).distance
    }

    /// Energy per counted shift step, relative to a linear longitudinal
    /// single-domain step (1.0). Model parameter, not a measurement.
    fn shift_energy_weight(&self) -> f64 {
        1.0
    }

    /// Wear per counted shift step, relative to linear (1.0). Model
    /// parameter, not a measurement.
    fn wear_weight(&self) -> f64 {
        1.0
    }

    /// Wear units accumulated by the counted activity: shift steps
    /// scaled by this topology's per-step wear weight.
    fn wear_units(&self, stats: &ShiftStats) -> f64 {
        stats.shifts as f64 * self.wear_weight()
    }
}

/// Today's semantics: a finite 1D tape under fixed ports. The
/// nearest-port policy and displacement arithmetic are exactly those of
/// [`crate::shift::nearest_port_plan`] (which now delegates here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Linear;

impl TrackTopology for Linear {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Linear
    }

    fn canonical(&self) -> String {
        "linear".into()
    }

    fn plan(
        &self,
        ports: &PortLayout,
        _len: usize,
        state: TapeState,
        offset: usize,
    ) -> TopologyPlan {
        let (port, distance) = ports.nearest_port(offset, state.longitudinal);
        TopologyPlan {
            port,
            distance,
            state: TapeState {
                longitudinal: ports.required_displacement(offset, port),
                transverse: 0,
            },
        }
    }
}

/// Circular track: the domain train wraps at the track boundary, so a
/// shift may take either direction and the cost is the minimum of the
/// two. Distances are computed modulo `len`; with a single port the
/// metric is the circular distance `min(|a − b|, len − |a − b|)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ring;

impl TrackTopology for Ring {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring
    }

    fn canonical(&self) -> String {
        "ring".into()
    }

    fn plan(
        &self,
        ports: &PortLayout,
        len: usize,
        state: TapeState,
        offset: usize,
    ) -> TopologyPlan {
        let modulus = len.max(1) as i64;
        let current = state.longitudinal.rem_euclid(modulus);
        let (port, distance, target) = ports
            .iter()
            .map(|(id, p)| {
                let target = (offset as i64 - p as i64).rem_euclid(modulus);
                let forward = (target - current).rem_euclid(modulus);
                (id, forward.min(modulus - forward).max(0) as u64, target)
            })
            .min_by_key(|&(id, d, _)| (d, id))
            .expect("port layout must not be empty");
        TopologyPlan {
            port,
            distance,
            state: TapeState {
                longitudinal: target,
                transverse: 0,
            },
        }
    }
}

/// XDWM-style 2D grid: word `o` lives at row `o / cols`, column
/// `o % cols`. Ports sit along the column axis; aligning an access
/// moves the tape longitudinally (columns) and a transverse head
/// assembly across rows, each axis with its own per-step cost.
///
/// With one row the transverse term is always zero and the grid
/// degenerates byte-for-byte to [`Linear`] (a topology law pinned by
/// the workspace property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2d {
    /// Number of rows (transverse extent).
    pub rows: usize,
    /// Number of columns (longitudinal extent; `rows × cols` should
    /// cover the track's word count).
    pub cols: usize,
    /// Cost of one transverse (row) step, in linear-step units. The
    /// default of 2 models the slower orthogonal shift path reported
    /// for XDWM-class designs.
    pub row_cost: u64,
    /// Cost of one longitudinal (column) step. Default 1.
    pub col_cost: u64,
}

impl Grid2d {
    /// Grid with the default per-axis costs (row steps cost 2 linear
    /// steps, column steps cost 1).
    pub fn new(rows: usize, cols: usize) -> Self {
        Grid2d {
            rows: rows.max(1),
            cols: cols.max(1),
            row_cost: 2,
            col_cost: 1,
        }
    }

    /// Grid with explicit per-axis step costs.
    pub fn with_costs(rows: usize, cols: usize, row_cost: u64, col_cost: u64) -> Self {
        Grid2d {
            rows: rows.max(1),
            cols: cols.max(1),
            row_cost,
            col_cost,
        }
    }
}

impl TrackTopology for Grid2d {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Grid2d
    }

    fn canonical(&self) -> String {
        format!("grid2d:{}x{}", self.rows, self.cols)
    }

    fn plan(
        &self,
        ports: &PortLayout,
        _len: usize,
        state: TapeState,
        offset: usize,
    ) -> TopologyPlan {
        let cols = self.cols as i64;
        let (row, col) = ((offset as i64) / cols, (offset as i64) % cols);
        let (port, distance, target) = ports
            .iter()
            .map(|(id, p)| {
                // Port positions are column offsets; aligning column
                // `col` with port `p` needs longitudinal displacement
                // `col − p`, plus the transverse move to `row`.
                let target = col - p as i64;
                let d = self.col_cost * target.abs_diff(state.longitudinal)
                    + self.row_cost * row.abs_diff(state.transverse);
                (id, d, target)
            })
            .min_by_key(|&(id, d, _)| (d, id))
            .expect("port layout must not be empty");
        TopologyPlan {
            port,
            distance,
            state: TapeState {
                longitudinal: target,
                transverse: row,
            },
        }
    }
}

/// PIRM-style multi-domain transverse access: the track is tiled into
/// contiguous windows of `window` words; a transverse head reads a
/// whole aligned window at once. Moving between windows costs `window`
/// longitudinal steps per hop; moves inside the aligned window are
/// free. The wider transverse head moves more domain walls per step, so
/// each counted step carries an energy/wear premium (model parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pirm {
    /// Words per transverse access window (≥ 1).
    pub window: usize,
}

impl Pirm {
    /// The default window of 4 words (the multi-domain access width the
    /// PIRM evaluation uses).
    pub const DEFAULT_WINDOW: usize = 4;

    /// PIRM topology with the given access-window width.
    pub fn new(window: usize) -> Self {
        Pirm {
            window: window.max(1),
        }
    }
}

impl Default for Pirm {
    fn default() -> Self {
        Pirm::new(Pirm::DEFAULT_WINDOW)
    }
}

impl TrackTopology for Pirm {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Pirm
    }

    fn canonical(&self) -> String {
        format!("pirm:{}", self.window)
    }

    fn plan(
        &self,
        ports: &PortLayout,
        _len: usize,
        state: TapeState,
        offset: usize,
    ) -> TopologyPlan {
        let w = self.window as i64;
        let win = offset as i64 / w;
        let (port, distance, target) = ports
            .iter()
            .map(|(id, p)| {
                // The tape state counts displacement in window units;
                // ports are quantized to the window that sits under
                // their transverse head at rest.
                let target = win - p as i64 / w;
                let d = (w as u64) * target.abs_diff(state.longitudinal);
                (id, d, target)
            })
            .min_by_key(|&(id, d, _)| (d, id))
            .expect("port layout must not be empty");
        TopologyPlan {
            port,
            distance,
            state: TapeState {
                longitudinal: target,
                transverse: 0,
            },
        }
    }

    fn shift_energy_weight(&self) -> f64 {
        1.5
    }

    fn wear_weight(&self) -> f64 {
        1.5
    }
}

/// A concrete topology value: the four geometries behind one cloneable,
/// parseable type. Implements [`TrackTopology`] by delegation, so code
/// can hold a `Topology` by value instead of a trait object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Finite 1D tape (default, the paper's model).
    Linear(Linear),
    /// Circular track.
    Ring(Ring),
    /// 2D grid with orthogonal shift axes.
    Grid2d(Grid2d),
    /// Multi-domain transverse access windows.
    Pirm(Pirm),
}

impl Default for Topology {
    fn default() -> Self {
        Topology::Linear(Linear)
    }
}

impl Topology {
    /// The linear default (today's semantics).
    pub fn linear() -> Self {
        Topology::default()
    }

    /// Whether this is the linear default — the case every legacy code
    /// path must keep byte-identical.
    pub fn is_linear(&self) -> bool {
        matches!(self, Topology::Linear(_))
    }

    /// Parses the CLI/wire grammar:
    /// `linear | ring | grid2d:<rows>x<cols> | pirm[:<window>]`.
    ///
    /// # Errors
    ///
    /// A one-line message naming the grammar on any malformed spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        fn positive(text: &str, what: &str) -> Result<usize, String> {
            match text.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("{what} must be a positive integer, got {text:?}")),
            }
        }
        let spec = spec.trim();
        match spec {
            "linear" => Ok(Topology::Linear(Linear)),
            "ring" => Ok(Topology::Ring(Ring)),
            "pirm" => Ok(Topology::Pirm(Pirm::default())),
            _ => {
                if let Some(dims) = spec.strip_prefix("grid2d:") {
                    let (rows, cols) = dims.split_once('x').ok_or_else(|| {
                        format!("grid2d spec must look like grid2d:<rows>x<cols>, got {spec:?}")
                    })?;
                    return Ok(Topology::Grid2d(Grid2d::new(
                        positive(rows, "grid2d rows")?,
                        positive(cols, "grid2d cols")?,
                    )));
                }
                if let Some(window) = spec.strip_prefix("pirm:") {
                    return Ok(Topology::Pirm(Pirm::new(positive(window, "pirm window")?)));
                }
                Err(format!(
                    "unknown topology {spec:?} (expected \"linear\", \"ring\", \
                     \"grid2d:<rows>x<cols>\", or \"pirm[:<window>]\")"
                ))
            }
        }
    }

    /// Checks that the geometry can address a track of `len` words
    /// (grid dimensions must cover `len`; others are always valid).
    ///
    /// # Errors
    ///
    /// A one-line message on a grid that cannot hold `len` words.
    pub fn validate_for(&self, len: usize) -> Result<(), String> {
        if let Topology::Grid2d(g) = self {
            if g.rows * g.cols < len {
                return Err(format!(
                    "grid2d:{}x{} holds {} words but the track needs {len}",
                    g.rows,
                    g.cols,
                    g.rows * g.cols
                ));
            }
        }
        Ok(())
    }

    fn as_dyn(&self) -> &dyn TrackTopology {
        match self {
            Topology::Linear(t) => t,
            Topology::Ring(t) => t,
            Topology::Grid2d(t) => t,
            Topology::Pirm(t) => t,
        }
    }
}

impl TrackTopology for Topology {
    fn kind(&self) -> TopologyKind {
        self.as_dyn().kind()
    }

    fn canonical(&self) -> String {
        self.as_dyn().canonical()
    }

    fn plan(
        &self,
        ports: &PortLayout,
        len: usize,
        state: TapeState,
        offset: usize,
    ) -> TopologyPlan {
        self.as_dyn().plan(ports, len, state, offset)
    }

    fn shift_distance(&self, ports: &PortLayout, len: usize, from: usize, to: usize) -> u64 {
        self.as_dyn().shift_distance(ports, len, from, to)
    }

    fn shift_energy_weight(&self) -> f64 {
        self.as_dyn().shift_energy_weight()
    }

    fn wear_weight(&self) -> f64 {
        self.as_dyn().wear_weight()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

/// Stateful trace replay through a topology: the inner loop every cost
/// model and analytic simulator shares. Feeding offsets in access order
/// and recording into a [`ShiftStats`] reproduces exactly what the
/// matching bit-level replay would count (for [`Linear`], golden-pinned
/// against the pre-topology code).
#[derive(Debug, Clone)]
pub struct TopologyReplayer<'a> {
    topology: &'a Topology,
    ports: &'a PortLayout,
    len: usize,
    state: TapeState,
}

impl<'a> TopologyReplayer<'a> {
    /// A replayer at rest for a track of `len` words.
    pub fn new(topology: &'a Topology, ports: &'a PortLayout, len: usize) -> Self {
        TopologyReplayer {
            topology,
            ports,
            len,
            state: TapeState::rest(),
        }
    }

    /// The current tape state.
    pub fn state(&self) -> TapeState {
        self.state
    }

    /// Serves one access, returning its shift distance and advancing
    /// the tape state.
    pub fn access(&mut self, offset: usize) -> u64 {
        let plan = self.topology.plan(self.ports, self.len, self.state, offset);
        self.state = plan.state;
        plan.distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::nearest_port_plan;

    fn single() -> PortLayout {
        PortLayout::single()
    }

    #[test]
    fn linear_plan_matches_nearest_port_plan_exactly() {
        let ports = PortLayout::at_positions([0, 32]);
        let mut displacement = 0i64;
        let mut state = TapeState::rest();
        for offset in [3usize, 40, 63, 0, 31, 32, 7] {
            let legacy = nearest_port_plan(&ports, displacement, offset);
            let plan = Linear.plan(&ports, 64, state, offset);
            assert_eq!(plan.port, legacy.port);
            assert_eq!(plan.distance, legacy.distance);
            assert_eq!(plan.state.longitudinal, legacy.displacement);
            displacement = legacy.displacement;
            state = plan.state;
        }
    }

    #[test]
    fn ring_distance_is_circular_and_symmetric() {
        let len = 16;
        for a in 0..len {
            for b in 0..len {
                let d = Ring.shift_distance(&single(), len, a, b);
                let lin = a.abs_diff(b) as u64;
                assert_eq!(d, lin.min(len as u64 - lin), "a={a} b={b}");
                assert_eq!(d, Ring.shift_distance(&single(), len, b, a));
                assert!(d <= Linear.shift_distance(&single(), len, a, b));
            }
        }
    }

    #[test]
    fn ring_wraps_the_short_way_on_replay() {
        // 0 → 15 on a 16-ring: one step backwards, not 15 forwards.
        let topo = Topology::Ring(Ring);
        let ports = single();
        let mut r = TopologyReplayer::new(&topo, &ports, 16);
        assert_eq!(r.access(0), 0);
        assert_eq!(r.access(15), 1);
        assert_eq!(r.access(1), 2);
    }

    #[test]
    fn grid2d_single_row_equals_linear() {
        let g = Grid2d::new(1, 64);
        let ports = PortLayout::at_positions([0, 32]);
        let mut gs = TapeState::rest();
        let mut ls = TapeState::rest();
        for offset in [5usize, 60, 33, 0, 17, 63] {
            let gp = g.plan(&ports, 64, gs, offset);
            let lp = Linear.plan(&ports, 64, ls, offset);
            assert_eq!((gp.port, gp.distance), (lp.port, lp.distance));
            gs = gp.state;
            ls = lp.state;
        }
    }

    #[test]
    fn grid2d_charges_per_axis_costs() {
        // 4×4 grid, default costs (row 2, col 1): from rest, word 5 is
        // row 1 col 1 → 1 column step + 1 row step = 1 + 2.
        let g = Grid2d::new(4, 4);
        let plan = g.plan(&single(), 16, TapeState::rest(), 5);
        assert_eq!(plan.distance, 3);
        assert_eq!(plan.state.longitudinal, 1);
        assert_eq!(plan.state.transverse, 1);
        // Staying in the row only pays columns.
        assert_eq!(g.plan(&single(), 16, plan.state, 7).distance, 2);
    }

    #[test]
    fn pirm_intra_window_moves_are_free() {
        let topo = Topology::Pirm(Pirm::new(4));
        let ports = single();
        let mut r = TopologyReplayer::new(&topo, &ports, 16);
        assert_eq!(r.access(1), 0); // window 0 aligned at rest
        assert_eq!(r.access(3), 0); // same window
        assert_eq!(r.access(4), 4); // next window: one 4-word hop
        assert_eq!(r.access(7), 0);
        assert_eq!(r.access(15), 8); // two windows ahead
    }

    #[test]
    fn pirm_carries_energy_and_wear_premium() {
        let p = Pirm::default();
        assert!(p.shift_energy_weight() > Linear.shift_energy_weight());
        assert!(p.wear_weight() > Linear.wear_weight());
        let mut stats = ShiftStats::new();
        stats.record(10, false);
        assert!((p.wear_units(&stats) - 15.0).abs() < 1e-12);
        assert!((Linear.wear_units(&stats) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips_canonical_forms() {
        for spec in ["linear", "ring", "grid2d:4x16", "pirm:4"] {
            let t = Topology::parse(spec).unwrap();
            assert_eq!(t.canonical(), spec);
            assert_eq!(Topology::parse(&t.canonical()).unwrap(), t);
        }
        // Shorthand and default window.
        assert_eq!(
            Topology::parse("pirm").unwrap().canonical(),
            format!("pirm:{}", Pirm::DEFAULT_WINDOW)
        );
        assert_eq!(format!("{}", Topology::linear()), "linear");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "torus",
            "grid2d",
            "grid2d:4",
            "grid2d:0x8",
            "grid2d:4x",
            "grid2d:axb",
            "pirm:0",
            "pirm:x",
            "ring:8",
        ] {
            assert!(Topology::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn grid_validation_checks_coverage() {
        let t = Topology::parse("grid2d:2x4").unwrap();
        assert!(t.validate_for(8).is_ok());
        assert!(t.validate_for(9).is_err());
        assert!(Topology::linear().validate_for(1 << 20).is_ok());
        assert!(Topology::parse("ring")
            .unwrap()
            .validate_for(1 << 20)
            .is_ok());
    }

    #[test]
    fn kind_labels_and_indices_are_stable() {
        for (i, kind) in TopologyKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(TopologyKind::Grid2d.label(), "grid2d");
        assert_eq!(Topology::parse("ring").unwrap().kind(), TopologyKind::Ring);
    }

    #[test]
    fn replayer_matches_manual_plan_chain() {
        let topo = Topology::parse("grid2d:4x8").unwrap();
        let ports = PortLayout::at_positions([0, 4]);
        let mut r = TopologyReplayer::new(&topo, &ports, 32);
        let mut state = TapeState::rest();
        for offset in [9usize, 30, 2, 17, 17, 0] {
            let plan = topo.plan(&ports, 32, state, offset);
            assert_eq!(r.access(offset), plan.distance);
            state = plan.state;
            assert_eq!(r.state(), state);
        }
    }
}
