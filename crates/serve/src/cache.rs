//! The memoizing solve cache: sharded, LRU-evicting, fingerprint-keyed,
//! with versioned records that background upgrades rewrite in place.
//!
//! A cache entry memoizes the full solve *result object* (placement,
//! costs, metadata) for one `(fingerprint, algorithm, seed)` triple.
//! Because every solver in the workspace is deterministic, a hit is
//! byte-for-byte what a fresh solve would have produced — the cache is
//! a pure latency optimization and can never change response bodies
//! for a fixed record version.
//!
//! Records are **versioned**: each carries the arrangement cost it
//! memoizes, the tier and solver that produced it, a monotonically
//! increasing version, and the count of applied upgrades. The
//! background upgrade lane calls [`SolveCache::upgrade`], which
//! replaces a record in place **only when the new arrangement is
//! strictly cheaper** — so versions only move forward to strictly
//! better placements, and a repeat caller can watch `version` bump as
//! heavier solvers land.
//!
//! Sharding: entries are spread over a power-of-two number of
//! independently locked shards by the low fingerprint bits, so
//! concurrent requests for *different* workloads never contend on one
//! mutex. Each shard runs its own LRU clock (a bump-on-touch tick);
//! eviction scans the over-full shard for the stale minimum, which is
//! O(shard size) but only runs on insert into a full shard — cheap next
//! to the solve that produced the entry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dwm_foundation::json::Value;
use dwm_graph::Fingerprint;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 8;

/// Key identifying one memoized solve.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical workload fingerprint.
    pub fingerprint: Fingerprint,
    /// Algorithm name the solve used (`"anytime"` for tiered solves).
    pub algorithm: String,
    /// Seed the stochastic algorithms used.
    pub seed: u64,
}

/// One memoized solve with its provenance and upgrade lineage.
#[derive(Debug, Clone)]
pub struct CacheRecord {
    /// The memoized result object (never includes the `cache` field —
    /// that is derived per response from this record's metadata).
    pub value: Arc<Value>,
    /// Arrangement cost of the memoized placement; the strict-
    /// improvement bar every upgrade must clear.
    pub cost: u64,
    /// Tier index that produced the current value (0/1/2).
    pub tier: u8,
    /// Solver provenance (e.g. `"greedy-csr"`, `"annealing"`).
    pub solver: String,
    /// Record version; starts at 1, bumped by every applied upgrade.
    pub version: u64,
    /// Number of upgrades applied to this record.
    pub upgrades: u64,
}

impl CacheRecord {
    /// A freshly solved record at version 1.
    pub fn fresh(value: Arc<Value>, cost: u64, tier: u8, solver: impl Into<String>) -> Self {
        CacheRecord {
            value,
            cost,
            tier,
            solver: solver.into(),
            version: 1,
            upgrades: 0,
        }
    }
}

struct Entry {
    record: CacheRecord,
    last_used: u64,
    /// Lookups that found this entry, since it was (re)inserted. Feeds
    /// the upgrade lane's priority: hot fingerprints upgrade first.
    hits: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Monotonic counters describing cache behaviour since startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Configured capacity (0 = caching disabled).
    pub capacity: u64,
    /// Background upgrades that strictly improved a record.
    pub upgrades_applied: u64,
    /// Background upgrades discarded (not strictly better, or the
    /// record was gone by the time the upgrade landed).
    pub upgrades_discarded: u64,
}

/// A sharded LRU cache from [`CacheKey`] to versioned memoized solve
/// records.
///
/// `capacity` is the total entry budget, split evenly across shards; a
/// capacity of 0 disables caching entirely (every lookup misses, every
/// insert is dropped), which the bench suite uses to measure pure
/// solve cost.
pub struct SolveCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    upgrades_applied: AtomicU64,
    upgrades_discarded: AtomicU64,
}

impl SolveCache {
    /// Creates a cache with room for roughly `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        SolveCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            upgrades_applied: AtomicU64::new(0),
            upgrades_discarded: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.fingerprint.lo as usize) & (SHARDS - 1)]
    }

    /// Looks up a memoized record, refreshing its LRU position.
    pub fn get(&self, key: &CacheKey) -> Option<CacheRecord> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_of(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                entry.hits += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.record.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Lookups that have hit `key` since it was (re)inserted — the
    /// demand signal the background upgrade lane orders its queue by.
    /// Does not touch the LRU position or the hit/miss counters; 0 for
    /// absent keys.
    pub fn hit_count(&self, key: &CacheKey) -> u64 {
        if self.per_shard_capacity == 0 {
            return 0;
        }
        let shard = self.shard_of(key).lock().unwrap();
        shard.map.get(key).map_or(0, |e| e.hits)
    }

    /// Memoizes a solve record, evicting the least-recently-used entry
    /// of the target shard if it is full.
    pub fn insert(&self, key: CacheKey, record: CacheRecord) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard_of(&key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(stale) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&stale);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                record,
                last_used: tick,
                hits: 0,
            },
        );
    }

    /// Rewrites a record in place with a strictly better arrangement:
    /// the new value is installed only when `cost` is strictly below
    /// the resident record's cost, bumping `version` and `upgrades`
    /// while keeping the LRU position untouched (an upgrade is not a
    /// use). Returns `true` when the upgrade was applied; `false` (and
    /// a discard count) when it wasn't strictly better or the record
    /// was evicted in the meantime.
    pub fn upgrade(
        &self,
        key: &CacheKey,
        value: Arc<Value>,
        cost: u64,
        tier: u8,
        solver: impl Into<String>,
    ) -> bool {
        if self.per_shard_capacity == 0 {
            self.upgrades_discarded.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut shard = self.shard_of(key).lock().unwrap();
        match shard.map.get_mut(key) {
            Some(entry) if cost < entry.record.cost => {
                entry.record.value = value;
                entry.record.cost = cost;
                entry.record.tier = tier;
                entry.record.solver = solver.into();
                entry.record.version += 1;
                entry.record.upgrades += 1;
                self.upgrades_applied.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => {
                self.upgrades_discarded.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// A consistent-enough snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().map.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity as u64,
            upgrades_applied: self.upgrades_applied.load(Ordering::Relaxed),
            upgrades_discarded: self.upgrades_discarded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_foundation::json::Number;

    fn key(lo: u64, alg: &str, seed: u64) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint { hi: 7, lo },
            algorithm: alg.to_owned(),
            seed,
        }
    }

    fn val(n: u64) -> Arc<Value> {
        Arc::new(Value::Num(Number::U(n)))
    }

    fn rec(n: u64, cost: u64) -> CacheRecord {
        CacheRecord::fresh(val(n), cost, 0, "greedy-csr")
    }

    #[test]
    fn hit_after_insert_and_key_components_distinguish() {
        let cache = SolveCache::new(64);
        cache.insert(key(1, "hybrid", 1), rec(10, 100));
        let hit = cache.get(&key(1, "hybrid", 1)).expect("hit");
        assert_eq!(hit.value.as_ref(), val(10).as_ref());
        assert_eq!((hit.cost, hit.version, hit.upgrades), (100, 1, 0));
        assert!(cache.get(&key(2, "hybrid", 1)).is_none());
        assert!(cache.get(&key(1, "spectral", 1)).is_none());
        assert!(cache.get(&key(1, "hybrid", 2)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // Capacity 8 over 8 shards = 1 entry per shard; keys 0 and 8
        // land in the same shard (lo % 8).
        let cache = SolveCache::new(8);
        cache.insert(key(0, "a", 0), rec(1, 10));
        cache.insert(key(8, "a", 0), rec(2, 10));
        assert!(cache.get(&key(0, "a", 0)).is_none(), "cold entry evicted");
        assert!(cache.get(&key(8, "a", 0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn get_refreshes_recency() {
        // 16 total → 2 per shard. Keys 0, 8, 16 share shard 0.
        let cache = SolveCache::new(16);
        cache.insert(key(0, "a", 0), rec(1, 10));
        cache.insert(key(8, "a", 0), rec(2, 10));
        // Touch 0 so 8 becomes the LRU victim.
        assert!(cache.get(&key(0, "a", 0)).is_some());
        cache.insert(key(16, "a", 0), rec(3, 10));
        assert!(cache.get(&key(0, "a", 0)).is_some());
        assert!(cache.get(&key(8, "a", 0)).is_none());
        assert!(cache.get(&key(16, "a", 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = SolveCache::new(0);
        cache.insert(key(1, "a", 0), rec(1, 10));
        assert!(cache.get(&key(1, "a", 0)).is_none());
        assert!(!cache.upgrade(&key(1, "a", 0), val(2), 5, 2, "annealing"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.upgrades_discarded, 1);
    }

    #[test]
    fn reinserting_an_existing_key_replaces_without_eviction() {
        let cache = SolveCache::new(8);
        cache.insert(key(0, "a", 0), rec(1, 10));
        cache.insert(key(0, "a", 0), rec(9, 10));
        let got = cache.get(&key(0, "a", 0)).unwrap();
        assert_eq!(got.value.as_ref(), val(9).as_ref());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn upgrade_applies_only_strict_improvements() {
        let cache = SolveCache::new(64);
        let k = key(3, "anytime", 1);
        cache.insert(k.clone(), rec(1, 100));

        // Equal cost: discarded, record untouched.
        assert!(!cache.upgrade(&k, val(2), 100, 2, "annealing"));
        let r = cache.get(&k).unwrap();
        assert_eq!((r.version, r.upgrades, r.cost), (1, 0, 100));
        assert_eq!(r.value.as_ref(), val(1).as_ref());

        // Strictly better: applied, version bumped.
        assert!(cache.upgrade(&k, val(2), 60, 2, "annealing"));
        let r = cache.get(&k).unwrap();
        assert_eq!((r.version, r.upgrades, r.cost), (2, 1, 60));
        assert_eq!(r.tier, 2);
        assert_eq!(r.solver, "annealing");
        assert_eq!(r.value.as_ref(), val(2).as_ref());

        // Worse: discarded again.
        assert!(!cache.upgrade(&k, val(3), 90, 2, "hybrid"));
        assert_eq!(cache.get(&k).unwrap().version, 2);

        let stats = cache.stats();
        assert_eq!(stats.upgrades_applied, 1);
        assert_eq!(stats.upgrades_discarded, 2);
    }

    #[test]
    fn hit_count_tracks_lookups_without_spending_them() {
        let cache = SolveCache::new(64);
        let k = key(4, "hybrid", 0);
        assert_eq!(cache.hit_count(&k), 0); // absent key
        cache.insert(k.clone(), rec(1, 10));
        assert_eq!(cache.hit_count(&k), 0); // fresh entry
        cache.get(&k);
        cache.get(&k);
        cache.get(&k);
        assert_eq!(cache.hit_count(&k), 3);
        // Reading the count is not itself a hit.
        assert_eq!(cache.hit_count(&k), 3);
        assert_eq!(cache.stats().hits, 3);
        // Re-insertion resets the demand signal.
        cache.insert(k.clone(), rec(2, 10));
        assert_eq!(cache.hit_count(&k), 0);
        // Disabled cache always answers 0.
        assert_eq!(SolveCache::new(0).hit_count(&k), 0);
    }

    #[test]
    fn upgrade_of_a_missing_record_is_discarded() {
        let cache = SolveCache::new(64);
        assert!(!cache.upgrade(&key(5, "anytime", 0), val(1), 1, 2, "annealing"));
        assert_eq!(cache.stats().upgrades_discarded, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn upgrade_does_not_refresh_lru_position() {
        // 8 total → 1 per shard; keys 0 and 8 share shard 0.
        let cache = SolveCache::new(16);
        cache.insert(key(0, "a", 0), rec(1, 100));
        cache.insert(key(8, "a", 0), rec(2, 100));
        // Upgrading key 0 must not make it "recently used"…
        assert!(cache.upgrade(&key(0, "a", 0), val(3), 50, 2, "annealing"));
        // …so after touching 8 and inserting a third key into the
        // shard, key 0 is still the LRU victim.
        assert!(cache.get(&key(8, "a", 0)).is_some());
        cache.insert(key(16, "a", 0), rec(4, 100));
        assert!(
            cache.get(&key(0, "a", 0)).is_none(),
            "upgraded entry evicted"
        );
        assert!(cache.get(&key(8, "a", 0)).is_some());
    }
}
