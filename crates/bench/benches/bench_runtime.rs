//! F7: algorithm runtime scaling with item count.

use dwm_bench::{markov_fixture, BENCH_SEED};
use dwm_core::algorithms::{
    ChainGrowth, GroupedChainGrowth, Hybrid, OrganPipe, PlacementAlgorithm, SimulatedAnnealing,
    Spectral,
};
use dwm_foundation::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::from_env("algorithm_scaling").with_samples(10);
    for n in [64usize, 256, 1024] {
        let (_, graph) = markov_fixture(n);
        let algs: Vec<Box<dyn PlacementAlgorithm>> = vec![
            Box::new(OrganPipe),
            Box::new(ChainGrowth),
            Box::new(GroupedChainGrowth),
            Box::new(Spectral::default()),
            Box::new(Hybrid::default()),
            Box::new(SimulatedAnnealing::new(BENCH_SEED).with_iterations(5_000)),
        ];
        for alg in algs {
            h.bench(&format!("algorithm_scaling/{}/{n}", alg.name()), || {
                alg.place(black_box(&graph))
            });
        }
    }
    h.finish();
}
