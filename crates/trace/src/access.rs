use std::collections::HashMap;

use crate::stats::TraceStats;

/// Identifier of a data item (variable, array block, tree node, …).
///
/// Item ids are dense indices into the placement problem: a trace over
/// `n` distinct items uses ids `0..n` after [`Trace::normalize`]. The
/// newtype keeps item ids from being confused with word offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ItemId(pub u32);

dwm_foundation::json_newtype!(ItemId);

impl ItemId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Whether an access reads or writes its item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load of the item.
    Read,
    /// A store to the item.
    Write,
}

dwm_foundation::json_unit_enum!(AccessKind { Read, Write });

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One access in a trace: an item plus read/write kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The item touched.
    pub item: ItemId,
    /// Read or write.
    pub kind: AccessKind,
}

dwm_foundation::json_struct!(Access { item, kind });

impl Access {
    /// A read of `item`.
    pub fn read(item: impl Into<ItemId>) -> Self {
        Access {
            item: item.into(),
            kind: AccessKind::Read,
        }
    }

    /// A write of `item`.
    pub fn write(item: impl Into<ItemId>) -> Self {
        Access {
            item: item.into(),
            kind: AccessKind::Write,
        }
    }
}

/// An ordered sequence of data-item accesses.
///
/// This is the workload description every placement algorithm and cost
/// model consumes. Traces are cheap to clone-by-reference via slices
/// ([`Trace::accesses`]) and can be normalized so item ids are dense.
///
/// # Example
///
/// ```
/// use dwm_trace::{Trace, AccessKind};
///
/// let trace = Trace::from_ids([3u32, 1, 4, 1, 5]);
/// assert_eq!(trace.len(), 5);
/// assert_eq!(trace.stats().distinct_items, 4);
/// let dense = trace.normalize();
/// assert_eq!(dense.num_items(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    accesses: Vec<Access>,
    /// Optional human-readable label (kernel name, generator spec).
    label: String,
}

dwm_foundation::json_struct!(Trace { accesses, label });

impl Trace {
    /// An empty, unlabeled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a read-only trace from raw item ids.
    pub fn from_ids<I, T>(ids: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<ItemId>,
    {
        ids.into_iter().map(Access::read).collect()
    }

    /// Builds a trace from `(id, kind)` pairs.
    pub fn from_accesses<I: IntoIterator<Item = Access>>(accesses: I) -> Self {
        accesses.into_iter().collect()
    }

    /// Attaches a label (kernel or generator name) for reports.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The trace's label; empty if none was attached.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The access sequence.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// Appends one access.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Records a read of `item`.
    pub fn record_read(&mut self, item: impl Into<ItemId>) {
        self.push(Access::read(item));
    }

    /// Records a write of `item`.
    pub fn record_write(&mut self, item: impl Into<ItemId>) {
        self.push(Access::write(item));
    }

    /// Number of distinct items, assuming ids are dense (`0..n`). For
    /// arbitrary traces use [`Trace::stats`] or [`Trace::normalize`]
    /// first. Returns `max id + 1`, or 0 for an empty trace.
    pub fn num_items(&self) -> usize {
        self.accesses
            .iter()
            .map(|a| a.item.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Returns an equivalent trace whose item ids are `0..n` in first-
    /// appearance order, plus preserving the original label.
    ///
    /// Normalization is what makes "offset of item i under the naive
    /// order-of-appearance placement" well-defined, so all algorithms
    /// and evaluators require (and the kernels produce) dense ids.
    pub fn normalize(&self) -> Trace {
        let mut remap: HashMap<ItemId, u32> = HashMap::new();
        let mut next = 0u32;
        let accesses = self
            .accesses
            .iter()
            .map(|a| {
                let id = *remap.entry(a.item).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                Access {
                    item: ItemId(id),
                    kind: a.kind,
                }
            })
            .collect();
        Trace {
            accesses,
            label: self.label.clone(),
        }
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// Per-item access counts, indexed by dense item id.
    ///
    /// # Panics
    ///
    /// Panics if ids are not dense; call [`Trace::normalize`] first for
    /// arbitrary traces.
    pub fn frequencies(&self) -> Vec<u64> {
        let mut freq = vec![0u64; self.num_items()];
        for a in &self.accesses {
            freq[a.item.index()] += 1;
        }
        freq
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
            label: String::new(),
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Access;
    type IntoIter = std::vec::IntoIter<Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ids_builds_reads() {
        let t = Trace::from_ids([0u32, 1, 2]);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|a| a.kind == AccessKind::Read));
    }

    #[test]
    fn num_items_is_max_plus_one() {
        let t = Trace::from_ids([5u32, 2, 5]);
        assert_eq!(t.num_items(), 6);
        assert_eq!(Trace::new().num_items(), 0);
    }

    #[test]
    fn normalize_densifies_in_first_appearance_order() {
        let t = Trace::from_ids([9u32, 4, 9, 7]).with_label("x");
        let n = t.normalize();
        let ids: Vec<u32> = n.iter().map(|a| a.item.0).collect();
        assert_eq!(ids, vec![0, 1, 0, 2]);
        assert_eq!(n.num_items(), 3);
        assert_eq!(n.label(), "x");
    }

    #[test]
    fn normalize_preserves_kinds() {
        let t = Trace::from_accesses([Access::write(3u32), Access::read(3u32)]);
        let n = t.normalize();
        assert_eq!(n.accesses()[0].kind, AccessKind::Write);
        assert_eq!(n.accesses()[1].kind, AccessKind::Read);
    }

    #[test]
    fn frequencies_count_per_item() {
        let t = Trace::from_ids([0u32, 1, 0, 0, 2]);
        assert_eq!(t.frequencies(), vec![3, 1, 1]);
    }

    #[test]
    fn collect_and_extend_round_trip() {
        let mut t: Trace = [Access::read(0u32)].into_iter().collect();
        t.extend([Access::write(1u32)]);
        assert_eq!(t.len(), 2);
        let back: Vec<Access> = t.clone().into_iter().collect();
        assert_eq!(back.len(), 2);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn record_helpers_set_kind() {
        let mut t = Trace::new();
        t.record_read(1u32);
        t.record_write(2u32);
        assert_eq!(t.accesses()[0].kind, AccessKind::Read);
        assert_eq!(t.accesses()[1].kind, AccessKind::Write);
        assert!(t.accesses()[1].kind.is_write());
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::from_ids([1u32, 2, 1]).with_label("k");
        let json = dwm_foundation::json::to_string(&t);
        let back: Trace = dwm_foundation::json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
