//! Analytic shift-cost models.
//!
//! Cost models replay a trace against a placement and count shifts
//! *without* instantiating the bit-level device — they are the inner
//! loop of every algorithm comparison and sweep. The functional
//! simulator in `dwm-sim` replays the same accesses on a real
//! [`Dbc`](dwm_device::Dbc) and must produce identical shift counts
//! (cross-validation experiment V1).

use dwm_device::shift::{nearest_port_plan, single_port_distance};
use dwm_device::{
    PortLayout, ShiftStats, Topology, TopologyReplayer, TrackTopology, TypedPortLayout,
};
use dwm_graph::AccessGraph;
use dwm_trace::Trace;

use crate::placement::Placement;

/// Outcome of replaying a trace under a cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Shift/access counters (`stats.shifts` is the figure of merit).
    pub stats: ShiftStats,
}

impl CostReport {
    /// Shift count per access.
    pub fn shifts_per_access(&self) -> f64 {
        self.stats.mean_shift()
    }
}

/// A shift-cost model: replays accesses and counts tape movement.
///
/// Object-safe so experiment sweeps can iterate over
/// `&[&dyn CostModel]`.
pub trait CostModel {
    /// Short name for report tables.
    fn name(&self) -> String;

    /// Replays `trace` under `placement` and returns the counters.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the trace references items outside
    /// the placement (callers pair a trace with a placement built from
    /// the same trace/graph).
    fn trace_cost(&self, placement: &Placement, trace: &Trace) -> CostReport;
}

/// Single-port tape: the state is the offset currently under the port;
/// moving from offset `a` to offset `b` costs `|a − b|` shifts.
///
/// The first access is charged from `initial_offset` (the port's rest
/// alignment, offset 0 by default).
///
/// Under this model, total cost (excluding the first alignment) equals
/// the [linear arrangement cost](AccessGraph::arrangement_cost) of the
/// placement on the trace's access graph — the identity the paper's
/// problem formulation rests on, and which
/// [`graph_cost`](SinglePortCost::graph_cost) exposes directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinglePortCost {
    /// Offset aligned with the port before the first access.
    pub initial_offset: usize,
}

impl SinglePortCost {
    /// Model with the tape initially at rest (offset 0 under the port).
    pub fn new() -> Self {
        SinglePortCost::default()
    }

    /// Arrangement cost of `placement` on an access graph — the
    /// steady-state shift count, cheaper to evaluate than a full trace
    /// replay when only the total matters.
    pub fn graph_cost(&self, placement: &Placement, graph: &AccessGraph) -> u64 {
        graph.arrangement_cost(placement.offsets())
    }
}

impl CostModel for SinglePortCost {
    fn name(&self) -> String {
        "single-port".into()
    }

    fn trace_cost(&self, placement: &Placement, trace: &Trace) -> CostReport {
        let mut stats = ShiftStats::new();
        let mut current = self.initial_offset;
        for a in trace.iter() {
            let next = placement.offset_of_id(a.item);
            stats.record(single_port_distance(current, next), a.kind.is_write());
            current = next;
        }
        CostReport { stats }
    }
}

/// Multi-port tape under the nearest-port policy: the state is the tape
/// displacement; each access picks the port minimizing shift distance.
///
/// With `PortLayout::single()` this reduces exactly to
/// [`SinglePortCost`] (verified by tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiPortCost {
    layout: PortLayout,
}

impl MultiPortCost {
    /// Model for the given port layout.
    pub fn new(layout: PortLayout) -> Self {
        MultiPortCost { layout }
    }

    /// Model with `count` evenly spaced ports over `l` words.
    pub fn evenly_spaced(count: usize, l: usize) -> Self {
        MultiPortCost {
            layout: if count == 1 {
                PortLayout::single()
            } else {
                PortLayout::evenly_spaced(count, l)
            },
        }
    }

    /// The port layout this model replays against.
    pub fn layout(&self) -> &PortLayout {
        &self.layout
    }
}

impl CostModel for MultiPortCost {
    fn name(&self) -> String {
        format!("{}-port", self.layout.len())
    }

    fn trace_cost(&self, placement: &Placement, trace: &Trace) -> CostReport {
        let mut stats = ShiftStats::new();
        let mut displacement = 0i64;
        for a in trace.iter() {
            let offset = placement.offset_of_id(a.item);
            let plan = nearest_port_plan(&self.layout, displacement, offset);
            stats.record(plan.distance, a.kind.is_write());
            displacement = plan.displacement;
        }
        CostReport { stats }
    }
}

/// Heterogeneous-port tape: reads may align with any port, writes only
/// with read-write ports (nearest eligible port policy).
///
/// Models the realistic DWM macro in which cheap MTJ read heads
/// outnumber expensive shift-based write heads. With an all-read-write
/// layout this reduces exactly to [`MultiPortCost`] (verified by
/// tests); with fewer writers, write-heavy traces pay longer shifts —
/// the asymmetry the F8 ablation sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedPortCost {
    layout: TypedPortLayout,
}

impl TypedPortCost {
    /// Model for the given typed layout.
    pub fn new(layout: TypedPortLayout) -> Self {
        TypedPortCost { layout }
    }

    /// The typed layout this model replays against.
    pub fn layout(&self) -> &TypedPortLayout {
        &self.layout
    }
}

impl CostModel for TypedPortCost {
    fn name(&self) -> String {
        format!(
            "{}r/{}w-port",
            self.layout.read_layout().len(),
            self.layout.write_layout().len()
        )
    }

    fn trace_cost(&self, placement: &Placement, trace: &Trace) -> CostReport {
        let mut stats = ShiftStats::new();
        let mut displacement = 0i64;
        for a in trace.iter() {
            let offset = placement.offset_of_id(a.item);
            let ports = if a.kind.is_write() {
                self.layout.write_layout()
            } else {
                self.layout.read_layout()
            };
            let plan = nearest_port_plan(ports, displacement, offset);
            stats.record(plan.distance, a.kind.is_write());
            displacement = plan.displacement;
        }
        CostReport { stats }
    }
}

/// Topology-parametric cost model: replays a trace under any
/// [`Topology`] (linear / ring / 2-D grid / PIRM) and port layout,
/// using [`TopologyReplayer`] as the single source of truth for shift
/// arithmetic.
///
/// With [`Topology::linear`] and [`PortLayout::single`] this reduces
/// exactly to [`SinglePortCost`]; with a linear topology and any port
/// layout it matches [`MultiPortCost`] (both verified by tests).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyCost {
    topology: Topology,
    layout: PortLayout,
    len: usize,
}

impl TopologyCost {
    /// Model for the given topology, port layout, and track length
    /// (`len` is the word count of the tape — ring and grid geometries
    /// need it; linear ignores it).
    pub fn new(topology: Topology, layout: PortLayout, len: usize) -> Self {
        TopologyCost {
            topology,
            layout,
            len,
        }
    }

    /// Single-port convenience over `len` words.
    pub fn single_port(topology: Topology, len: usize) -> Self {
        TopologyCost::new(topology, PortLayout::single(), len)
    }

    /// The topology this model replays against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The port layout this model replays against.
    pub fn layout(&self) -> &PortLayout {
        &self.layout
    }

    /// Steady-state graph cost: sum over access-graph edges of
    /// `weight × shift_distance(pos(u), pos(v))` under this topology.
    ///
    /// For a linear single-port tape this equals
    /// [`AccessGraph::arrangement_cost`] — the minimum-linear-arrangement
    /// objective; other topologies substitute their own distance metric
    /// (circular for ring, Manhattan-weighted for grids, windowed for
    /// PIRM).
    pub fn graph_cost(&self, placement: &Placement, graph: &AccessGraph) -> u64 {
        let pos = placement.offsets();
        graph
            .edges()
            .map(|e| {
                e.weight
                    * self
                        .topology
                        .shift_distance(&self.layout, self.len, pos[e.u], pos[e.v])
            })
            .sum()
    }
}

impl CostModel for TopologyCost {
    fn name(&self) -> String {
        format!("{}@{}-port", self.topology.canonical(), self.layout.len())
    }

    fn trace_cost(&self, placement: &Placement, trace: &Trace) -> CostReport {
        let mut stats = ShiftStats::new();
        let mut replayer = TopologyReplayer::new(&self.topology, &self.layout, self.len);
        for a in trace.iter() {
            let offset = placement.offset_of_id(a.item);
            stats.record(replayer.access(offset), a.kind.is_write());
        }
        CostReport { stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::from_ids([0u32, 3, 1, 1, 2, 0])
    }

    #[test]
    fn single_port_counts_pairwise_distances() {
        let t = trace();
        let p = Placement::identity(4);
        let report = SinglePortCost::new().trace_cost(&p, &t);
        // 0(first) + |0−3| + |3−1| + 0 + |1−2| + |2−0| = 8.
        assert_eq!(report.stats.shifts, 8);
        assert_eq!(report.stats.accesses(), 6);
        assert_eq!(report.stats.aligned_hits, 2); // first access + repeat
    }

    #[test]
    fn graph_cost_matches_trace_cost_steady_state() {
        let t = trace();
        let g = AccessGraph::from_trace(&t);
        let p = Placement::from_order([2, 0, 3, 1]);
        let model = SinglePortCost::new();
        let replay = model.trace_cost(&p, &t).stats.shifts;
        let first_alignment = p.offset_of(0) as u64; // first access is item 0
        assert_eq!(model.graph_cost(&p, &g), replay - first_alignment);
    }

    #[test]
    fn multi_port_with_single_layout_matches_single_port() {
        let t = trace();
        for p in [Placement::identity(4), Placement::from_order([3, 1, 0, 2])] {
            let s = SinglePortCost::new().trace_cost(&p, &t).stats.shifts;
            let m = MultiPortCost::new(PortLayout::single())
                .trace_cost(&p, &t)
                .stats
                .shifts;
            assert_eq!(s, m);
        }
    }

    #[test]
    fn more_ports_help_far_jumps() {
        // Alternating far jumps: a single end port pays the full span
        // every time; spread ports serve each end locally. (On monotone
        // sweeps the greedy nearest-port policy gains nothing — every
        // port's required displacement advances in lockstep — so this
        // is the workload class where port count actually matters.)
        let ids: Vec<u32> = (0..32).flat_map(|_| [0u32, 63]).collect();
        let t = Trace::from_ids(ids);
        let p = Placement::identity(64);
        let one = MultiPortCost::evenly_spaced(1, 64).trace_cost(&p, &t);
        let four = MultiPortCost::evenly_spaced(4, 64).trace_cost(&p, &t);
        assert!(four.stats.shifts < one.stats.shifts);
    }

    #[test]
    fn placement_changes_cost() {
        let t = trace();
        let good = Placement::identity(4);
        // Scatter the hot pair 1–1,0 far apart.
        let bad = Placement::from_order([0, 3, 2, 1]);
        let m = SinglePortCost::new();
        assert_ne!(
            m.trace_cost(&good, &t).stats.shifts,
            m.trace_cost(&bad, &t).stats.shifts
        );
    }

    #[test]
    fn report_exposes_mean() {
        let t = Trace::from_ids([0u32, 1]);
        let r = SinglePortCost::new().trace_cost(&Placement::identity(2), &t);
        assert!((r.shifts_per_access() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn typed_all_rw_matches_multi_port() {
        use dwm_trace::Access;
        let t = Trace::from_accesses([
            Access::read(0u32),
            Access::write(3u32),
            Access::read(1u32),
            Access::write(2u32),
        ]);
        let p = Placement::identity(4);
        let typed = TypedPortCost::new(TypedPortLayout::evenly_spaced(2, 2, 4));
        let multi = MultiPortCost::evenly_spaced(2, 4);
        assert_eq!(
            typed.trace_cost(&p, &t).stats.shifts,
            multi.trace_cost(&p, &t).stats.shifts
        );
    }

    #[test]
    fn fewer_writers_cost_more_on_write_heavy_traces() {
        use dwm_trace::Access;
        // Writes alternating between the two ends of a 64-word tape.
        let t =
            Trace::from_accesses((0..32).flat_map(|_| [Access::write(0u32), Access::write(63u32)]));
        let p = Placement::identity(64);
        let four_writers = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 4, 64));
        let one_writer = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 1, 64));
        assert!(
            one_writer.trace_cost(&p, &t).stats.shifts
                > four_writers.trace_cost(&p, &t).stats.shifts
        );
    }

    #[test]
    fn read_only_ports_still_serve_reads() {
        let t = Trace::from_ids([0u32, 63, 0, 63]);
        let p = Placement::identity(64);
        let typed = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 1, 64));
        let single = SinglePortCost::new();
        // Reads can use the read-only heads, so the typed layout beats
        // a pure single-port tape on read ping-pong.
        assert!(typed.trace_cost(&p, &t).stats.shifts < single.trace_cost(&p, &t).stats.shifts);
    }

    #[test]
    fn topology_linear_single_port_matches_single_port_cost() {
        let t = trace();
        let g = AccessGraph::from_trace(&t);
        for p in [Placement::identity(4), Placement::from_order([3, 1, 0, 2])] {
            let legacy = SinglePortCost::new();
            let topo = TopologyCost::single_port(Topology::linear(), 4);
            assert_eq!(
                legacy.trace_cost(&p, &t).stats,
                topo.trace_cost(&p, &t).stats
            );
            assert_eq!(legacy.graph_cost(&p, &g), topo.graph_cost(&p, &g));
            assert_eq!(topo.graph_cost(&p, &g), g.arrangement_cost(p.offsets()));
        }
    }

    #[test]
    fn topology_linear_multi_port_matches_multi_port_cost() {
        let ids: Vec<u32> = (0..16).flat_map(|_| [0u32, 63, 17, 40]).collect();
        let t = Trace::from_ids(ids);
        let p = Placement::identity(64);
        let layout = PortLayout::evenly_spaced(4, 64);
        let legacy = MultiPortCost::new(layout.clone());
        let topo = TopologyCost::new(Topology::linear(), layout, 64);
        assert_eq!(
            legacy.trace_cost(&p, &t).stats,
            topo.trace_cost(&p, &t).stats
        );
    }

    #[test]
    fn ring_never_costs_more_than_linear() {
        let ids: Vec<u32> = (0..32).flat_map(|_| [0u32, 63]).collect();
        let t = Trace::from_ids(ids);
        let p = Placement::identity(64);
        let linear = TopologyCost::single_port(Topology::linear(), 64);
        let ring = TopologyCost::single_port(Topology::parse("ring").unwrap(), 64);
        let (ls, rs) = (
            linear.trace_cost(&p, &t).stats.shifts,
            ring.trace_cost(&p, &t).stats.shifts,
        );
        // End-to-end ping-pong: the ring wraps in 1 step, linear pays 63.
        assert!(rs < ls, "ring {rs} vs linear {ls}");
    }

    #[test]
    fn topologies_produce_distinct_graph_costs() {
        let ids: Vec<u32> = (0..8)
            .flat_map(|k| [k as u32, ((k * 7) % 64) as u32])
            .collect();
        let t = Trace::from_ids(ids);
        let g = AccessGraph::from_trace(&t);
        let p = Placement::identity(64);
        let costs: Vec<u64> = ["linear", "ring", "grid2d:8x8", "pirm:4"]
            .iter()
            .map(|s| TopologyCost::single_port(Topology::parse(s).unwrap(), 64).graph_cost(&p, &g))
            .collect();
        // All four geometries price the same placement differently.
        for i in 0..costs.len() {
            for j in (i + 1)..costs.len() {
                assert_ne!(costs[i], costs[j], "{i} vs {j}: {costs:?}");
            }
        }
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(SinglePortCost::new()),
            Box::new(MultiPortCost::evenly_spaced(2, 8)),
            Box::new(TypedPortCost::new(TypedPortLayout::evenly_spaced(2, 1, 8))),
            Box::new(TopologyCost::single_port(
                Topology::parse("ring").unwrap(),
                8,
            )),
        ];
        let t = Trace::from_ids([0u32, 1, 2]);
        let p = Placement::identity(3);
        for m in &models {
            assert!(!m.name().is_empty());
            let _ = m.trace_cost(&p, &t);
        }
    }
}
