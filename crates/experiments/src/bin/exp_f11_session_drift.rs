//! Experiment F11b (extension): streaming-session drift sweep.
//!
//! A phased workload (hot clusters rotating through disjoint parts of
//! the item space) is streamed into a `dwm_serve` session, which
//! detects phase changes and re-places under the hysteresis-guarded
//! migration rule. The sweep crosses three axes:
//!
//! * **drift rate** — number of phases over a fixed stream length
//!   (more phases = faster drift, shorter payback horizon per
//!   re-placement);
//! * **hysteresis** — how strongly the projected saving must beat the
//!   migration bill before a re-placement is adopted;
//! * **refreeze threshold** — how many overlay edges the incremental
//!   graph tolerates before refreezing into a fresh CSR base.
//!
//! The figure of merit is *net amortized shifts saved*: the identity
//! baseline's bill minus (access shifts under the live placement +
//! migration shifts). The refreeze axis must change refreeze *counts*
//! only — placements, and therefore savings, are invariant to refreeze
//! cadence, and the binary asserts that cell by cell.

use dwm_experiments::{percent_reduction, Table, EXPERIMENT_SEED};
use dwm_serve::session::{SessionConfig, SessionState};
use dwm_trace::synth::{PhasedGen, TraceGenerator};

const ITEMS: usize = 96;
const LEN: usize = 24_000;

fn run_session(ids: &[u32], hysteresis: f64, refreeze_edges: usize) -> SessionState {
    let mut session = SessionState::new(SessionConfig {
        window: 512,
        migration_shifts_per_item: 16,
        hysteresis,
        refreeze_edges,
        ..SessionConfig::default()
    });
    session.ingest(ids);
    session
}

fn main() {
    println!(
        "Figure 11b: streaming-session drift sweep ({ITEMS} items, {LEN} accesses, window 512)\n"
    );
    let mut t = Table::new([
        "phases",
        "hysteresis",
        "refreeze",
        "replaced",
        "suppressed",
        "refreezes",
        "migration shifts",
        "net saved",
        "vs naive",
    ]);
    for phases in [2usize, 6, 12] {
        let trace = PhasedGen::new(ITEMS, phases, EXPERIMENT_SEED).generate(LEN);
        let ids: Vec<u32> = trace.iter().map(|a| a.item.index() as u32).collect();
        for hysteresis in [0.5, 1.0, 4.0] {
            let mut cell: Vec<SessionState> = Vec::new();
            for refreeze_edges in [0usize, 256] {
                let session = run_session(&ids, hysteresis, refreeze_edges);
                let totals = *session.totals();
                t.row([
                    phases.to_string(),
                    format!("{hysteresis:.1}"),
                    if refreeze_edges == 0 {
                        "never".to_string()
                    } else {
                        refreeze_edges.to_string()
                    },
                    totals.replacements.to_string(),
                    totals.suppressed.to_string(),
                    session.refreezes().to_string(),
                    totals.migration_shifts.to_string(),
                    session.net_amortized_saved().to_string(),
                    percent_reduction(
                        totals.naive_shifts,
                        totals.access_shifts + totals.migration_shifts,
                    ),
                ]);
                cell.push(session);
            }
            // Refreeze cadence is a perf knob, not a policy knob: the
            // graph equivalence invariant guarantees identical
            // decisions at every threshold.
            assert!(
                cell.windows(2).all(|w| {
                    w[0].fingerprint() == w[1].fingerprint()
                        && w[0].placement() == w[1].placement()
                        && w[0].net_amortized_saved() == w[1].net_amortized_saved()
                }),
                "refreeze threshold changed session outcomes \
                 (phases {phases}, hysteresis {hysteresis})"
            );
        }
    }
    t.print();
    println!(
        "\nrefreeze cadence changed refreeze counts only: every (drift, hysteresis) cell \
         has identical placements, fingerprints, and net savings at both thresholds"
    );
}
