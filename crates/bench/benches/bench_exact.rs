//! T4: exact subset-DP optimum vs. instance size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dwm_bench::BENCH_SEED;
use dwm_core::exact::optimal_placement;
use dwm_graph::generators::random_graph;

fn exact_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_dp");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let graph = random_graph(n, 0.5, 8, BENCH_SEED);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| optimal_placement(std::hint::black_box(g)).expect("solvable"))
        });
    }
    group.finish();
}

criterion_group!(benches, exact_scaling);
criterion_main!(benches);
