//! Request handling: routing, the solve pipeline, and response bodies.
//!
//! The engine is transport-agnostic — it maps one [`Request`] to
//! one [`Response`] and can be driven directly (the bench suite
//! does) or behind the [`crate::server`] TCP daemon. All state is
//! internally synchronized, so one `Engine` serves every worker thread.
//!
//! # The solve pipeline
//!
//! 1. Each workload's id sequence is canonicalized
//!    (`Trace::normalize`) and condensed to its access graph — the
//!    exact structure every placement algorithm consumes.
//! 2. The graph is hashed with [`fn@dwm_graph::fingerprint`], with the
//!    request's track topology folded in (the identity for linear —
//!    see [`fn@dwm_graph::fingerprint_topology`]); the
//!    `(fingerprint, algorithm, seed)` triple keys the
//!    [`SolveCache`].
//! 3. Cache misses within one request are batched onto the
//!    [`par`] pool — results come back in input order, so the
//!    response body is independent of `DWM_THREADS`.
//! 4. Per-request wall-clock time is attached as the
//!    `x-dwm-elapsed-us` header, never in the body, keeping bodies a
//!    pure function of the request.
//!
//! # Tiered solves
//!
//! The `quality` / `deadline_us` request form routes through the
//! anytime solver instead of a named algorithm: [`anytime::plan`] maps
//! the knobs and graph size to a foreground tier — a *pure function of
//! the request*, never of measured wall-clock, so tier choice is
//! deterministic across machines and thread counts. Tiered results are
//! cached under the tier-independent [`ANYTIME_ALGORITHM`] name with
//! versioned records; `quality:"best"` additionally enqueues a tier-2
//! re-solve on an idle-priority [`par::IdleLane`] that only runs while
//! no request is in flight and rewrites the cache record in place when
//! strictly better. An upgrade is observable only through the
//! response's versioned `cache` labels — for a fixed record version,
//! bodies stay byte-deterministic.
//!
//! # Observability
//!
//! Each engine owns a private [`obs::Registry`] holding its request
//! counters, request-latency histogram, and scrape-time callbacks
//! over the [`SolveCache`]'s own counters — so `/stats` and
//! `GET /metrics` are two renderings of one source of truth and can
//! never disagree. `/metrics` additionally renders the
//! [`obs::global`] registry (solver, simulator, and transport
//! metrics) in Prometheus text exposition format. The request
//! counters use the gate-bypassing `add_always` path so `/stats`
//! stays correct even with `DWM_OBS=0`; everything else (latency
//! histogram, solver metrics) respects the knob. See
//! `docs/OBSERVABILITY.md` for the full metric catalog.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dwm_core::algorithms::standard_suite;
use dwm_core::anytime::{self, AnytimeOutcome, AnytimeSolver, Quality, Tier, TierPlan};
use dwm_core::{CostModel, MultiPortCost, Placement, PlacementAlgorithm, TopologyCost};
use dwm_device::{DeviceConfig, Topology, TopologyKind, TrackTopology};
use dwm_foundation::json::{Number, Object, ToJson, Value};
use dwm_foundation::net::{Request, Response};
use dwm_foundation::obs::{self, FnKind};
use dwm_foundation::par;
use dwm_graph::{fingerprint, fingerprint_topology, AccessGraph};
use dwm_sim::SpmSimulator;
use dwm_trace::Trace;

use crate::cache::{CacheKey, CacheRecord, SolveCache};
use crate::protocol::{
    error_body, opt_f64, opt_str, opt_u64, parse_body, parse_ids, parse_session_knobs,
    parse_tier_knobs, parse_topology, parse_usize_array, parse_workloads, ProtocolError, TierKnobs,
};
use crate::session::{SessionConfig, SessionState, SessionTable};

/// Algorithm name under which tiered (quality/deadline-addressed)
/// solves are cached. Tier-independent on purpose: the background
/// upgrade lane rewrites the record in place, so repeat callers pick
/// up the best placement any tier has produced so far.
pub const ANYTIME_ALGORITHM: &str = "anytime";

/// The header carrying per-request wall-clock time in microseconds.
pub const ELAPSED_HEADER: &str = "x-dwm-elapsed-us";

/// Capacity and lifetime knobs of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Solve-cache entry budget (0 disables memoization).
    pub cache_capacity: usize,
    /// Session budget (0 = unlimited); the LRU session of a full
    /// shard is evicted to admit a new one.
    pub session_capacity: usize,
    /// Idle time after which a session expires (zero = never).
    pub session_ttl: Duration,
    /// Whether `quality:"best"` solves enqueue background tier-2
    /// upgrades on the idle lane (`--no-upgrades` turns this off).
    pub upgrades: bool,
    /// Cluster shard index, if this engine is one shard of a
    /// `--cluster N` daemon. Stamps every metric in the engine's
    /// registry with a `shard="i"` label so N shard registries render
    /// side by side in one `/metrics` scrape.
    pub shard: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 1024,
            session_capacity: 64,
            session_ttl: Duration::from_secs(600),
            upgrades: true,
            shard: None,
        }
    }
}

/// Shared request-handling state: the solve cache, the session table,
/// the engine's metric registry, and handles to its counters.
pub struct Engine {
    cache: Arc<SolveCache>,
    sessions: Arc<SessionTable>,
    registry: Arc<obs::Registry>,
    /// Idle-priority lane running background tier-2 upgrades; `None`
    /// when upgrades are disabled.
    lane: Option<Arc<par::IdleLane>>,
    /// Keys with an upgrade queued or running, so one workload never
    /// occupies more than one lane slot.
    inflight_upgrades: Arc<Mutex<HashSet<CacheKey>>>,
    requests: Arc<obs::Counter>,
    solves: Arc<obs::Counter>,
    evaluates: Arc<obs::Counter>,
    simulates: Arc<obs::Counter>,
    session_creates: Arc<obs::Counter>,
    session_ingests: Arc<obs::Counter>,
    session_reads: Arc<obs::Counter>,
    session_closes: Arc<obs::Counter>,
    errors: Arc<obs::Counter>,
    tier_solves: [Arc<obs::Counter>; 4],
    topology_solves: [Arc<obs::Counter>; 4],
    upgrades_enqueued: Arc<obs::Counter>,
    deadline_met: Arc<obs::Counter>,
    deadline_missed: Arc<obs::Counter>,
    deadline_infeasible: Arc<obs::Counter>,
    latency_ns: Arc<obs::Histogram>,
    ingest_latency_ns: Arc<obs::Histogram>,
}

impl Engine {
    /// Creates an engine whose solve cache holds about
    /// `cache_capacity` entries (0 disables memoization), with default
    /// session capacity and TTL.
    pub fn new(cache_capacity: usize) -> Self {
        Engine::with_config(EngineConfig {
            cache_capacity,
            ..EngineConfig::default()
        })
    }

    /// Creates an engine with explicit capacity and lifetime knobs.
    pub fn with_config(config: EngineConfig) -> Self {
        // Solver/simulator/graph metrics live in the global registry;
        // touching them here means a scrape on a fresh daemon already
        // lists every family the first solve will move.
        dwm_core::register_obs_metrics();
        dwm_graph::register_obs_metrics();
        dwm_sim::register_obs_metrics();

        let cache = Arc::new(SolveCache::new(config.cache_capacity));
        let sessions = Arc::new(SessionTable::new(
            config.session_capacity,
            config.session_ttl,
        ));
        let registry = Arc::new(match config.shard {
            Some(shard) => obs::Registry::with_labels(&[("shard", &shard.to_string())]),
            None => obs::Registry::new(),
        });
        let endpoint = |ep: &str| {
            registry.counter_with(
                "dwm_serve_endpoint_requests_total",
                &[("endpoint", ep)],
                "Requests dispatched per endpoint",
            )
        };
        let lane = config.upgrades.then(|| Arc::new(par::IdleLane::new()));
        let tier_counter = |tier: &str| {
            registry.counter_with(
                "dwm_serve_tier_solves_total",
                &[("tier", tier)],
                "Foreground tiered solves per tier (cache misses only)",
            )
        };
        let topology_counter = |kind: TopologyKind| {
            registry.counter_with(
                "dwm_serve_topology_solves_total",
                &[("topology", kind.label())],
                "Workloads solved per track topology (hits and misses)",
            )
        };
        let engine = Engine {
            requests: registry.counter(
                "dwm_serve_requests_total",
                "Requests handled by this engine (any endpoint, any status)",
            ),
            solves: endpoint("solve"),
            evaluates: endpoint("evaluate"),
            simulates: endpoint("simulate"),
            session_creates: endpoint("session_create"),
            session_ingests: endpoint("session_ingest"),
            session_reads: endpoint("session_read"),
            session_closes: endpoint("session_close"),
            errors: registry.counter(
                "dwm_serve_errors_total",
                "Requests answered with an error status",
            ),
            tier_solves: [
                tier_counter("0"),
                tier_counter("1"),
                tier_counter("2"),
                tier_counter("3"),
            ],
            // Indexed by `TopologyKind::index()` (stable label order).
            topology_solves: TopologyKind::ALL.map(topology_counter),
            upgrades_enqueued: registry.counter(
                "dwm_serve_upgrades_enqueued_total",
                "Background tier-2 upgrades submitted to the idle lane",
            ),
            deadline_met: registry.counter(
                "dwm_serve_deadline_met_total",
                "Tiered solves whose wall-clock beat the caller's deadline_us",
            ),
            deadline_missed: registry.counter(
                "dwm_serve_deadline_missed_total",
                "Tiered solves whose wall-clock exceeded the caller's deadline_us",
            ),
            deadline_infeasible: registry.counter(
                "dwm_serve_deadline_infeasible_total",
                "Tiered solves rejected with 503 because no admissible tier fits deadline_us",
            ),
            latency_ns: registry.histogram(
                "dwm_serve_request_latency_ns",
                "Wall-clock nanoseconds per request, measured inside the engine",
            ),
            ingest_latency_ns: registry.histogram(
                "dwm_serve_session_ingest_latency_ns",
                "Wall-clock nanoseconds per session ingest, measured inside the engine",
            ),
            cache: Arc::clone(&cache),
            sessions: Arc::clone(&sessions),
            registry: Arc::clone(&registry),
            lane,
            inflight_upgrades: Arc::new(Mutex::new(HashSet::new())),
        };
        // Cache metrics are scrape-time callbacks over the cache's own
        // counters — /stats and /metrics read the same atomics.
        let cache_fn = |name: &str, help: &str, kind, read: fn(&SolveCache) -> u64| {
            let cache = Arc::clone(&cache);
            engine
                .registry
                .register_fn(name, help, kind, move || read(&cache));
        };
        cache_fn(
            "dwm_serve_cache_hits_total",
            "Solve-cache lookups answered from memory",
            FnKind::Counter,
            |c| c.stats().hits,
        );
        cache_fn(
            "dwm_serve_cache_misses_total",
            "Solve-cache lookups that required a solve",
            FnKind::Counter,
            |c| c.stats().misses,
        );
        cache_fn(
            "dwm_serve_cache_evictions_total",
            "Solve-cache entries evicted to stay within capacity",
            FnKind::Counter,
            |c| c.stats().evictions,
        );
        cache_fn(
            "dwm_serve_cache_entries",
            "Solve-cache entries currently resident",
            FnKind::Gauge,
            |c| c.stats().entries,
        );
        cache_fn(
            "dwm_serve_cache_capacity",
            "Solve-cache entry budget (0 disables memoization)",
            FnKind::Gauge,
            |c| c.stats().capacity,
        );
        cache_fn(
            "dwm_serve_upgrades_applied_total",
            "Background upgrades that strictly improved a cached record",
            FnKind::Counter,
            |c| c.stats().upgrades_applied,
        );
        cache_fn(
            "dwm_serve_upgrades_discarded_total",
            "Background upgrades discarded (not strictly better, or record gone)",
            FnKind::Counter,
            |c| c.stats().upgrades_discarded,
        );
        if let Some(lane) = &engine.lane {
            let lane = Arc::clone(lane);
            engine.registry.register_fn(
                "dwm_serve_upgrade_queue_depth",
                "Background upgrades queued or running on the idle lane",
                FnKind::Gauge,
                move || lane.pending() as u64,
            );
        }
        // Session metrics follow the same pattern: scrape-time
        // callbacks over the table's own atomics, so /stats and
        // /metrics can never disagree.
        let session_fn = |name: &str, help: &str, kind, read: fn(&SessionTable) -> u64| {
            let sessions = Arc::clone(&sessions);
            engine
                .registry
                .register_fn(name, help, kind, move || read(&sessions));
        };
        session_fn(
            "dwm_serve_sessions_active",
            "Streaming sessions currently resident",
            FnKind::Gauge,
            |s| s.active() as u64,
        );
        session_fn(
            "dwm_serve_sessions_capacity",
            "Session budget (0 = unlimited)",
            FnKind::Gauge,
            |s| s.stats().capacity,
        );
        session_fn(
            "dwm_serve_sessions_created_total",
            "Sessions ever created",
            FnKind::Counter,
            |s| s.stats().created,
        );
        session_fn(
            "dwm_serve_sessions_closed_total",
            "Sessions closed by DELETE",
            FnKind::Counter,
            |s| s.stats().closed,
        );
        session_fn(
            "dwm_serve_sessions_expired_total",
            "Sessions dropped by TTL expiry",
            FnKind::Counter,
            |s| s.stats().expired,
        );
        session_fn(
            "dwm_serve_sessions_evicted_total",
            "Sessions evicted to stay within capacity",
            FnKind::Counter,
            |s| s.stats().evicted,
        );
        session_fn(
            "dwm_serve_session_accesses_total",
            "Accesses ingested across all sessions",
            FnKind::Counter,
            |s| s.stats().accesses,
        );
        session_fn(
            "dwm_serve_session_windows_total",
            "Decision windows completed across all sessions",
            FnKind::Counter,
            |s| s.stats().windows,
        );
        session_fn(
            "dwm_serve_session_phase_changes_total",
            "Confirmed phase changes across all sessions",
            FnKind::Counter,
            |s| s.stats().phase_changes,
        );
        session_fn(
            "dwm_serve_session_replacements_total",
            "Re-placements adopted across all sessions",
            FnKind::Counter,
            |s| s.stats().replacements,
        );
        session_fn(
            "dwm_serve_session_suppressed_total",
            "Re-placements suppressed by the migration rule",
            FnKind::Counter,
            |s| s.stats().suppressed,
        );
        session_fn(
            "dwm_serve_session_refreezes_total",
            "Delta-graph refreezes across all sessions",
            FnKind::Counter,
            |s| s.stats().refreezes,
        );
        session_fn(
            "dwm_serve_session_access_shifts_total",
            "Shifts served under live session placements",
            FnKind::Counter,
            |s| s.stats().access_shifts,
        );
        session_fn(
            "dwm_serve_session_naive_shifts_total",
            "Shifts the identity baseline would have served",
            FnKind::Counter,
            |s| s.stats().naive_shifts,
        );
        session_fn(
            "dwm_serve_session_migration_shifts_total",
            "Migration shifts billed across all sessions",
            FnKind::Counter,
            |s| s.stats().migration_shifts,
        );
        engine
    }

    /// The session table (exposed for stats and load harnesses).
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    /// The solve cache (exposed for stats and priming in benches).
    pub fn cache(&self) -> &SolveCache {
        &self.cache
    }

    /// This engine's private metric registry (request and cache
    /// metrics; solver metrics live in [`obs::global`]).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// Handles one request, timing it into [`ELAPSED_HEADER`].
    pub fn handle(&self, req: &Request) -> Response {
        let started = Instant::now();
        // Mark the request as foreground work for its whole duration:
        // the idle upgrade lane defers while any request is in flight,
        // so background tier-2 solves never steal foreground cycles.
        let _fg = par::enter_foreground();
        // `add_always`: these counters back /stats, which must keep
        // counting even with DWM_OBS=0.
        self.requests.inc_always();
        let result = self.route(req);
        let response = match result {
            Ok(r) => r,
            Err(e) => {
                self.errors.inc_always();
                Response::json(e.status, error_body(&e.message))
            }
        };
        let elapsed = started.elapsed();
        self.latency_ns.record(elapsed.as_nanos() as u64);
        response.with_header(ELAPSED_HEADER, elapsed.as_micros().to_string())
    }

    fn route(&self, req: &Request) -> Result<Response, ProtocolError> {
        if let Some(rest) = req.path.strip_prefix("/session") {
            if rest.is_empty() || rest.starts_with('/') {
                return self.route_session(req, rest);
            }
        }
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => Ok(self.health()),
            ("GET", "/stats") => Ok(self.stats_response()),
            ("GET", "/metrics") => Ok(self.metrics_response()),
            ("POST", "/solve") => {
                self.solves.inc_always();
                self.solve(req)
            }
            ("POST", "/evaluate") => {
                self.evaluates.inc_always();
                self.evaluate(req)
            }
            ("POST", "/simulate") => {
                self.simulates.inc_always();
                self.simulate(req)
            }
            (_, "/health" | "/stats" | "/metrics" | "/solve" | "/evaluate" | "/simulate") => {
                Err(ProtocolError {
                    status: 405,
                    message: format!("method {} not allowed for {}", req.method, req.path),
                })
            }
            (_, path) => Err(ProtocolError {
                status: 404,
                message: format!("unknown path {path}"),
            }),
        }
    }

    fn health(&self) -> Response {
        let mut obj = Object::new();
        obj.insert("status", Value::Str("ok".into()));
        obj.insert("service", Value::Str("dwm-serve".into()));
        Response::json(200, Value::Obj(obj).to_compact())
    }

    fn stats_response(&self) -> Response {
        let cache = self.cache.stats();
        let mut c = Object::new();
        c.insert("hits", Value::Num(Number::U(cache.hits)));
        c.insert("misses", Value::Num(Number::U(cache.misses)));
        c.insert("entries", Value::Num(Number::U(cache.entries)));
        c.insert("evictions", Value::Num(Number::U(cache.evictions)));
        c.insert("capacity", Value::Num(Number::U(cache.capacity)));
        c.insert(
            "upgrades_applied",
            Value::Num(Number::U(cache.upgrades_applied)),
        );
        c.insert(
            "upgrades_discarded",
            Value::Num(Number::U(cache.upgrades_discarded)),
        );
        let t = self.sessions.stats();
        let mut s = Object::new();
        s.insert("active", Value::Num(Number::U(t.active)));
        s.insert("capacity", Value::Num(Number::U(t.capacity)));
        s.insert("created", Value::Num(Number::U(t.created)));
        s.insert("closed", Value::Num(Number::U(t.closed)));
        s.insert("expired", Value::Num(Number::U(t.expired)));
        s.insert("evicted", Value::Num(Number::U(t.evicted)));
        s.insert("accesses", Value::Num(Number::U(t.accesses)));
        s.insert("windows", Value::Num(Number::U(t.windows)));
        s.insert("phase_changes", Value::Num(Number::U(t.phase_changes)));
        s.insert("replacements", Value::Num(Number::U(t.replacements)));
        s.insert("suppressed", Value::Num(Number::U(t.suppressed)));
        s.insert("refreezes", Value::Num(Number::U(t.refreezes)));
        s.insert("access_shifts", Value::Num(Number::U(t.access_shifts)));
        s.insert("naive_shifts", Value::Num(Number::U(t.naive_shifts)));
        s.insert(
            "migration_shifts",
            Value::Num(Number::U(t.migration_shifts)),
        );
        let mut obj = Object::new();
        let count = |c: &obs::Counter| Value::Num(Number::U(c.value()));
        obj.insert("requests", count(&self.requests));
        obj.insert("solves", count(&self.solves));
        obj.insert("evaluates", count(&self.evaluates));
        obj.insert("simulates", count(&self.simulates));
        obj.insert("errors", count(&self.errors));
        obj.insert("cache", Value::Obj(c));
        let mut tiers = Object::new();
        for (i, counter) in self.tier_solves.iter().enumerate() {
            tiers.insert(format!("tier{i}"), count(counter));
        }
        obj.insert("tiers", Value::Obj(tiers));
        let mut topo = Object::new();
        for (kind, counter) in TopologyKind::ALL.iter().zip(&self.topology_solves) {
            topo.insert(kind.label(), count(counter));
        }
        obj.insert("topologies", Value::Obj(topo));
        let mut u = Object::new();
        u.insert("enqueued", count(&self.upgrades_enqueued));
        u.insert("applied", Value::Num(Number::U(cache.upgrades_applied)));
        u.insert("discarded", Value::Num(Number::U(cache.upgrades_discarded)));
        u.insert(
            "queue_depth",
            Value::Num(Number::U(self.upgrade_queue_depth() as u64)),
        );
        obj.insert("upgrades", Value::Obj(u));
        let mut d = Object::new();
        d.insert("met", count(&self.deadline_met));
        d.insert("missed", count(&self.deadline_missed));
        d.insert("infeasible", count(&self.deadline_infeasible));
        obj.insert("deadline", Value::Obj(d));
        obj.insert("sessions", Value::Obj(s));
        Response::json(200, Value::Obj(obj).to_compact())
    }

    fn metrics_response(&self) -> Response {
        let text = obs::render_prometheus(&[&self.registry, obs::global()]);
        Response {
            status: 200,
            headers: vec![("content-type".into(), "text/plain; version=0.0.4".into())],
            body: text.into_bytes(),
        }
    }

    fn solve(&self, req: &Request) -> Result<Response, ProtocolError> {
        let obj = parse_body(&req.body)?;
        if let Some(knobs) = parse_tier_knobs(&obj)? {
            return self.solve_tiered(&obj, knobs);
        }
        let algorithm = opt_str(&obj, "algorithm", "hybrid")?;
        let seed = opt_u64(&obj, "seed", 1)?;
        let topology = parse_topology(&obj)?;
        if resolve_algorithm(&algorithm, seed).is_none() {
            return Err(ProtocolError::bad_request(format!(
                "unknown algorithm {algorithm:?}; expected one of {}",
                algorithm_names().join(", ")
            )));
        }
        let workloads = parse_workloads(&obj)?;

        // Canonicalize every workload and consult the cache. The
        // topology is folded into the fingerprint (the identity for
        // linear), so the same adjacency structure solved for two
        // geometries never shares a cache record.
        let mut labels = Vec::with_capacity(workloads.len());
        let mut results: Vec<Option<Arc<Value>>> = Vec::with_capacity(workloads.len());
        let mut misses: Vec<(usize, CacheKey, AccessGraph)> = Vec::new();
        for (i, ids) in workloads.iter().enumerate() {
            let trace = Trace::from_ids(ids.iter().copied()).normalize();
            let graph = AccessGraph::from_trace(&trace);
            topology
                .validate_for(graph.num_items())
                .map_err(|e| ProtocolError::bad_request(format!("workload {i}: {e}")))?;
            self.topology_solves[topology.kind().index()].inc_always();
            let key = CacheKey {
                fingerprint: fingerprint_topology(&graph, &topology.canonical()),
                algorithm: algorithm.clone(),
                seed,
            };
            match self.cache.get(&key) {
                Some(record) => {
                    labels.push("hit");
                    results.push(Some(record.value));
                }
                None => {
                    labels.push("miss");
                    results.push(None);
                    misses.push((i, key, graph));
                }
            }
        }

        // Batch all misses in this request onto the worker pool;
        // par_map returns results in input order, so the response body
        // is identical at any thread count.
        let solved = par::par_map(&misses, |(_, key, graph)| {
            let algo =
                resolve_algorithm(&key.algorithm, key.seed).expect("algorithm validated above");
            let (value, cost) = solve_result(graph, key, algo.as_ref(), &topology);
            (Arc::new(value), cost)
        });
        for ((slot, key, _), (value, cost)) in misses.into_iter().zip(solved) {
            let solver = key.algorithm.clone();
            self.cache
                .insert(key, CacheRecord::fresh(Arc::clone(&value), cost, 0, solver));
            results[slot] = Some(value);
        }

        let mut body = Object::new();
        body.insert(
            "cache",
            Value::Arr(labels.into_iter().map(|l| Value::Str(l.into())).collect()),
        );
        body.insert(
            "results",
            Value::Arr(
                results
                    .into_iter()
                    .map(|r| (*r.expect("every workload resolved")).clone())
                    .collect(),
            ),
        );
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }

    /// The tiered `/solve` form: `quality` / `deadline_us` select a
    /// foreground tier via [`anytime::plan`] — a pure function of the
    /// request, never of measured wall-clock — and `quality:"best"`
    /// additionally enqueues a background tier-2 upgrade per workload.
    /// Wall-clock is only compared against the deadline *after* the
    /// response is built, feeding the deadline met/missed counters.
    fn solve_tiered(&self, obj: &Object, knobs: TierKnobs) -> Result<Response, ProtocolError> {
        let started = Instant::now();
        let seed = opt_u64(obj, "seed", 1)?;
        let topology = parse_topology(obj)?;
        let workloads = parse_workloads(obj)?;

        let mut labels: Vec<Option<Value>> = Vec::with_capacity(workloads.len());
        let mut results: Vec<Option<Arc<Value>>> = Vec::with_capacity(workloads.len());
        let mut misses: Vec<(usize, CacheKey, AccessGraph, TierPlan)> = Vec::new();
        for (i, ids) in workloads.iter().enumerate() {
            let trace = Trace::from_ids(ids.iter().copied()).normalize();
            let graph = AccessGraph::from_trace(&trace);
            topology
                .validate_for(graph.num_items())
                .map_err(|e| ProtocolError::bad_request(format!("workload {i}: {e}")))?;
            self.topology_solves[topology.kind().index()].inc_always();
            let (n, m) = (graph.num_items(), graph.num_edges());
            if knobs.quality == Quality::Exact && n > anytime::EXACT_PLAN_LIMIT {
                return Err(ProtocolError::bad_request(format!(
                    "quality \"exact\" is limited to {} items; workload {i} touches {n}",
                    anytime::EXACT_PLAN_LIMIT
                )));
            }
            let plan = anytime::plan(knobs.quality, knobs.deadline_us, n, m);
            // Admission control: `plan` already picked the cheapest
            // admissible tier, so if even that tier's modeled latency
            // exceeds the deadline, no tier fits — refuse up front
            // (before any cache consult or solve) instead of knowingly
            // answering late.
            if let Some(deadline) = knobs.deadline_us {
                let need = anytime::estimate_us(plan.tier, n, m);
                if need > deadline {
                    self.deadline_infeasible.inc_always();
                    return Err(ProtocolError {
                        status: 503,
                        message: format!(
                            "deadline_us {deadline} is infeasible for workload {i}: the \
                             cheapest admissible tier ({}) needs an estimated {need} us",
                            plan.tier.label()
                        ),
                    });
                }
            }
            let key = CacheKey {
                fingerprint: fingerprint_topology(&graph, &topology.canonical()),
                algorithm: ANYTIME_ALGORITHM.to_owned(),
                seed,
            };
            // An exact request only accepts a resident record that is
            // itself exact — a heuristic tier cached under the same key
            // must not masquerade as the optimum, so it re-solves (and
            // the exact record then overwrites it for everyone).
            let resident = self.cache.get(&key).filter(|record| {
                knobs.quality != Quality::Exact || record.tier == Tier::Exact.index()
            });
            match resident {
                Some(record) => {
                    // A hit serves whatever tier is resident — the
                    // label reports the truth, and `best` still queues
                    // an upgrade if the record isn't tier 2 yet.
                    if plan.upgrade && record.tier < Tier::Thorough.index() {
                        self.schedule_upgrade(key, graph, seed, topology);
                    }
                    labels.push(Some(cache_label("hit", &record)));
                    results.push(Some(record.value));
                }
                None => {
                    labels.push(None);
                    results.push(None);
                    misses.push((i, key, graph, plan));
                }
            }
        }

        // Batch the misses exactly like the legacy path; each workload
        // solves at its planned tier.
        let solved = par::par_map(&misses, |(_, key, graph, plan)| {
            let outcome = AnytimeSolver::new(seed).solve(graph, plan.tier, plan.passes);
            let (value, cost) = anytime_result(graph, key, &outcome, &topology);
            (Arc::new(value), cost, outcome)
        });
        for ((slot, key, graph, plan), (value, cost, outcome)) in misses.into_iter().zip(solved) {
            self.tier_solves[usize::from(outcome.tier.index())].inc_always();
            let record = CacheRecord::fresh(
                Arc::clone(&value),
                cost,
                outcome.tier.index(),
                outcome.solver,
            );
            labels[slot] = Some(cache_label("miss", &record));
            if plan.upgrade && outcome.tier != Tier::Thorough {
                self.cache.insert(key.clone(), record);
                self.schedule_upgrade(key, graph, seed, topology);
            } else {
                self.cache.insert(key, record);
            }
            results[slot] = Some(value);
        }

        let mut body = Object::new();
        body.insert(
            "cache",
            Value::Arr(
                labels
                    .into_iter()
                    .map(|l| l.expect("every workload labeled"))
                    .collect(),
            ),
        );
        body.insert(
            "results",
            Value::Arr(
                results
                    .into_iter()
                    .map(|r| (*r.expect("every workload resolved")).clone())
                    .collect(),
            ),
        );
        let response = Response::json(200, Value::Obj(body).to_compact());
        if let Some(deadline) = knobs.deadline_us {
            if started.elapsed().as_micros() as u64 <= deadline {
                self.deadline_met.inc_always();
            } else {
                self.deadline_missed.inc_always();
            }
        }
        Ok(response)
    }

    /// Enqueues a background tier-2 solve for `key` on the idle lane.
    /// At most one upgrade per key is ever in flight; results land via
    /// [`SolveCache::upgrade`], which only applies strict improvements.
    /// The lane is weighted by the record's cache-hit count, so when
    /// upgrades queue up, the hottest fingerprints upgrade first.
    fn schedule_upgrade(&self, key: CacheKey, graph: AccessGraph, seed: u64, topology: Topology) {
        let Some(lane) = &self.lane else { return };
        {
            let mut inflight = self
                .inflight_upgrades
                .lock()
                .expect("inflight set poisoned");
            if !inflight.insert(key.clone()) {
                return;
            }
        }
        self.upgrades_enqueued.inc_always();
        let cache = Arc::clone(&self.cache);
        let inflight = Arc::clone(&self.inflight_upgrades);
        let weight = self.cache.hit_count(&key);
        lane.submit_weighted(weight, move || {
            let outcome =
                AnytimeSolver::new(seed).solve(&graph, Tier::Thorough, anytime::MAX_PASSES);
            let (value, cost) = anytime_result(&graph, &key, &outcome, &topology);
            cache.upgrade(
                &key,
                Arc::new(value),
                cost,
                outcome.tier.index(),
                outcome.solver,
            );
            inflight.lock().expect("inflight set poisoned").remove(&key);
        });
    }

    /// Blocks until every queued background upgrade has run (tests and
    /// orderly shutdown). Returns `false` on timeout; trivially `true`
    /// when upgrades are disabled.
    pub fn drain_upgrades(&self, timeout: Duration) -> bool {
        match &self.lane {
            Some(lane) => lane.wait_idle(timeout),
            None => true,
        }
    }

    /// Background upgrades queued or running right now.
    pub fn upgrade_queue_depth(&self) -> usize {
        self.lane.as_ref().map_or(0, |l| l.pending())
    }

    fn evaluate(&self, req: &Request) -> Result<Response, ProtocolError> {
        let obj = parse_body(&req.body)?;
        let ids = parse_ids(&obj)?;
        let offsets = parse_usize_array(&obj, "placement")?;
        let placement = Placement::from_offsets(offsets)
            .map_err(|e| ProtocolError::bad_request(format!("invalid placement: {e}")))?;
        let trace = Trace::from_ids(ids.iter().copied()).normalize();
        if trace.num_items() > placement.num_items() {
            return Err(ProtocolError::bad_request(format!(
                "placement covers {} items but the trace touches {}",
                placement.num_items(),
                trace.num_items()
            )));
        }
        let ports = opt_u64(&obj, "ports", 1)? as usize;
        let tape_length = opt_u64(&obj, "tape_length", placement.num_items() as u64)? as usize;
        if ports == 0 || tape_length == 0 {
            return Err(ProtocolError::bad_request(
                "\"ports\" and \"tape_length\" must be at least 1",
            ));
        }
        let model = MultiPortCost::evenly_spaced(ports, tape_length);
        let report = model.trace_cost(&placement, &trace);

        let mut body = Object::new();
        body.insert(
            "fingerprint",
            Value::Str(fingerprint(&AccessGraph::from_trace(&trace)).to_hex()),
        );
        body.insert("model", Value::Str(model.name()));
        body.insert("stats", report.stats.to_json());
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }

    fn simulate(&self, req: &Request) -> Result<Response, ProtocolError> {
        let obj = parse_body(&req.body)?;
        let ids = parse_ids(&obj)?;
        let trace = Trace::from_ids(ids.iter().copied()).normalize();
        let items = trace.num_items();
        let domains = opt_u64(
            &obj,
            "domains_per_track",
            items.next_power_of_two().max(64) as u64,
        )?;
        let tracks = opt_u64(&obj, "tracks", 32)?;
        let ports = opt_u64(&obj, "ports", 1)?;
        let config = DeviceConfig::builder()
            .domains_per_track(domains as usize)
            .tracks_per_dbc(tracks as usize)
            .ports(ports as usize)
            .dbcs(1)
            .build()
            .map_err(|e| ProtocolError::bad_request(format!("invalid device config: {e}")))?;
        let mut sim = SpmSimulator::with_identity_placement(&config, items)
            .map_err(|e| ProtocolError::bad_request(format!("cannot simulate: {e}")))?;
        let report = sim
            .run(&trace)
            .map_err(|e| ProtocolError::bad_request(format!("simulation failed: {e}")))?;

        let mut body = Object::new();
        body.insert("items", Value::Num(Number::U(items as u64)));
        body.insert("report", report.to_json());
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }

    /// Dispatches `/session` and `/session/{id}[/…]`. `rest` is the
    /// path after the `/session` prefix (empty or starting with `/`).
    fn route_session(&self, req: &Request, rest: &str) -> Result<Response, ProtocolError> {
        if rest.is_empty() {
            return match req.method.as_str() {
                "POST" => {
                    self.session_creates.inc_always();
                    self.session_create(req)
                }
                other => Err(ProtocolError {
                    status: 405,
                    message: format!("method {other} not allowed for /session"),
                }),
            };
        }
        let rest = &rest[1..]; // checked to start with '/'
        let (id_text, tail) = match rest.split_once('/') {
            Some((id, tail)) => (id, Some(tail)),
            None => (rest, None),
        };
        let id = parse_session_id(id_text)?;
        match (req.method.as_str(), tail) {
            ("DELETE", None) => {
                self.session_closes.inc_always();
                self.session_close(id)
            }
            ("POST", Some("accesses")) => {
                self.session_ingests.inc_always();
                self.session_ingest(id, req)
            }
            ("GET", Some("placement")) => {
                self.session_reads.inc_always();
                self.session_placement(id)
            }
            ("GET", Some("stats")) => {
                self.session_reads.inc_always();
                self.session_stats(id)
            }
            (method, None | Some("accesses" | "placement" | "stats")) => Err(ProtocolError {
                status: 405,
                message: format!("method {method} not allowed for {}", req.path),
            }),
            _ => Err(ProtocolError {
                status: 404,
                message: format!("unknown path {}", req.path),
            }),
        }
    }

    /// Looks up a live session or answers 404 — the uniform response
    /// for unknown, closed, evicted, and expired ids.
    fn session(&self, id: u64) -> Result<Arc<Mutex<SessionState>>, ProtocolError> {
        self.sessions.get(id).ok_or_else(|| ProtocolError {
            status: 404,
            message: format!("unknown or expired session s-{id}"),
        })
    }

    fn session_create(&self, req: &Request) -> Result<Response, ProtocolError> {
        // An empty body means "all defaults"; otherwise every knob is
        // an optional field.
        let defaults = SessionConfig::default();
        let config = if req.body.is_empty() {
            defaults
        } else {
            let obj = parse_body(&req.body)?;
            let (quality, replace_deadline_us) = parse_session_knobs(&obj)?;
            SessionConfig {
                quality,
                replace_deadline_us,
                topology: parse_topology(&obj)?,
                window: opt_u64(&obj, "window", defaults.window as u64)? as usize,
                phase_threshold: opt_f64(&obj, "phase_threshold", defaults.phase_threshold)?,
                confirm_windows: opt_u64(&obj, "confirm_windows", defaults.confirm_windows as u64)?
                    as usize,
                hysteresis: opt_f64(&obj, "hysteresis", defaults.hysteresis)?,
                migration_shifts_per_item: opt_u64(
                    &obj,
                    "migration_shifts_per_item",
                    defaults.migration_shifts_per_item,
                )?,
                horizon_windows: opt_u64(&obj, "horizon_windows", defaults.horizon_windows)?,
                refreeze_edges: opt_u64(&obj, "refreeze_edges", defaults.refreeze_edges as u64)?
                    as usize,
            }
        };
        config.validate().map_err(ProtocolError::bad_request)?;
        let id = self.sessions.create(config);
        let mut body = Object::new();
        body.insert("session", Value::Str(format!("s-{id}")));
        body.insert("window", Value::Num(Number::U(config.window as u64)));
        body.insert(
            "phase_threshold",
            Value::Num(Number::F(config.phase_threshold)),
        );
        body.insert(
            "confirm_windows",
            Value::Num(Number::U(config.confirm_windows as u64)),
        );
        body.insert("hysteresis", Value::Num(Number::F(config.hysteresis)));
        body.insert(
            "migration_shifts_per_item",
            Value::Num(Number::U(config.migration_shifts_per_item)),
        );
        body.insert(
            "horizon_windows",
            Value::Num(Number::U(config.horizon_windows)),
        );
        body.insert(
            "refreeze_edges",
            Value::Num(Number::U(config.refreeze_edges as u64)),
        );
        // Tier knobs are echoed only when set, keeping legacy
        // session-create responses byte-identical.
        if let Some(q) = config.quality {
            body.insert("quality", Value::Str(q.name().into()));
        }
        if let Some(d) = config.replace_deadline_us {
            body.insert("replace_deadline_us", Value::Num(Number::U(d)));
        }
        // Like the tier knobs: echoed only when non-linear, keeping
        // legacy session-create responses byte-identical.
        if !config.topology.is_linear() {
            body.insert("topology", Value::Str(config.topology.canonical()));
        }
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }

    fn session_ingest(&self, id: u64, req: &Request) -> Result<Response, ProtocolError> {
        let obj = parse_body(&req.body)?;
        let ids = parse_ids(&obj)?;
        let state = self.session(id)?;
        let started = Instant::now();
        let (report, items, accesses, version) = {
            let mut state = state.lock().expect("session state poisoned");
            let report = state.ingest(&ids);
            (
                report,
                state.num_items(),
                state.totals().accesses,
                state.placement_version(),
            )
        };
        self.ingest_latency_ns
            .record(started.elapsed().as_nanos() as u64);
        self.sessions.record(&report);
        let mut body = Object::new();
        body.insert("session", Value::Str(format!("s-{id}")));
        body.insert("accepted", Value::Num(Number::U(report.accepted)));
        body.insert("new_items", Value::Num(Number::U(report.new_items)));
        body.insert("items", Value::Num(Number::U(items as u64)));
        body.insert("accesses", Value::Num(Number::U(accesses)));
        body.insert(
            "windows_completed",
            Value::Num(Number::U(report.windows_completed)),
        );
        body.insert("phase_changes", Value::Num(Number::U(report.phase_changes)));
        body.insert("replacements", Value::Num(Number::U(report.replacements)));
        body.insert("suppressed", Value::Num(Number::U(report.suppressed)));
        body.insert("refreezes", Value::Num(Number::U(report.refreezes)));
        body.insert("placement_version", Value::Num(Number::U(version)));
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }

    fn session_placement(&self, id: u64) -> Result<Response, ProtocolError> {
        let state = self.session(id)?;
        let state = state.lock().expect("session state poisoned");
        let mut body = Object::new();
        body.insert("session", Value::Str(format!("s-{id}")));
        body.insert("items", Value::Num(Number::U(state.num_items() as u64)));
        body.insert("accesses", Value::Num(Number::U(state.totals().accesses)));
        body.insert(
            "placement_version",
            Value::Num(Number::U(state.placement_version())),
        );
        body.insert("fingerprint", Value::Str(state.fingerprint().to_hex()));
        body.insert(
            "ids",
            Value::Arr(
                state
                    .raw_ids()
                    .iter()
                    .map(|&r| Value::Num(Number::U(r as u64)))
                    .collect(),
            ),
        );
        body.insert(
            "placement",
            Value::Arr(
                state
                    .placement()
                    .iter()
                    .map(|&o| Value::Num(Number::U(o as u64)))
                    .collect(),
            ),
        );
        body.insert("cost", Value::Num(Number::U(state.current_cost())));
        body.insert("naive_cost", Value::Num(Number::U(state.naive_cost())));
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }

    fn session_stats(&self, id: u64) -> Result<Response, ProtocolError> {
        let state = self.session(id)?;
        let state = state.lock().expect("session state poisoned");
        let t = state.totals();
        let mut body = Object::new();
        body.insert("session", Value::Str(format!("s-{id}")));
        body.insert("items", Value::Num(Number::U(state.num_items() as u64)));
        body.insert("accesses", Value::Num(Number::U(t.accesses)));
        body.insert("windows", Value::Num(Number::U(t.windows)));
        body.insert("phase_changes", Value::Num(Number::U(t.phase_changes)));
        body.insert("replacements", Value::Num(Number::U(t.replacements)));
        body.insert("suppressed", Value::Num(Number::U(t.suppressed)));
        body.insert("refreezes", Value::Num(Number::U(state.refreezes())));
        body.insert(
            "overlay_edges",
            Value::Num(Number::U(state.graph().overlay_edges() as u64)),
        );
        body.insert(
            "placement_version",
            Value::Num(Number::U(state.placement_version())),
        );
        body.insert("access_shifts", Value::Num(Number::U(t.access_shifts)));
        body.insert("naive_shifts", Value::Num(Number::U(t.naive_shifts)));
        body.insert(
            "migration_shifts",
            Value::Num(Number::U(t.migration_shifts)),
        );
        body.insert("items_moved", Value::Num(Number::U(t.items_moved)));
        body.insert("net_amortized_saved", signed(state.net_amortized_saved()));
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }

    fn session_close(&self, id: u64) -> Result<Response, ProtocolError> {
        let state = self.sessions.remove(id).ok_or_else(|| ProtocolError {
            status: 404,
            message: format!("unknown or expired session s-{id}"),
        })?;
        let state = state.lock().expect("session state poisoned");
        let mut body = Object::new();
        body.insert("session", Value::Str(format!("s-{id}")));
        body.insert("closed", Value::Bool(true));
        body.insert("accesses", Value::Num(Number::U(state.totals().accesses)));
        body.insert("net_amortized_saved", signed(state.net_amortized_saved()));
        Ok(Response::json(200, Value::Obj(body).to_compact()))
    }
}

/// Renders a signed counter without round-tripping through floats.
fn signed(v: i64) -> Value {
    Value::Num(if v < 0 {
        Number::I(v)
    } else {
        Number::U(v as u64)
    })
}

/// Parses the `{id}` segment of a session path (`s-<n>`); malformed
/// ids answer 404 like unknown ones — the resource cannot exist.
fn parse_session_id(text: &str) -> Result<u64, ProtocolError> {
    text.strip_prefix("s-")
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| ProtocolError {
            status: 404,
            message: format!("unknown session {text:?}"),
        })
}

/// Names accepted by the `algorithm` field (the standard suite).
pub fn algorithm_names() -> Vec<String> {
    standard_suite(0).iter().map(|a| a.name()).collect()
}

/// Instantiates a suite algorithm by name.
fn resolve_algorithm(name: &str, seed: u64) -> Option<Box<dyn PlacementAlgorithm>> {
    standard_suite(seed).into_iter().find(|a| a.name() == name)
}

/// Builds the memoized result object for one solved workload,
/// returning it with the placement's arrangement cost (the cache
/// record needs the cost as its strict-improvement bar).
fn solve_result(
    graph: &AccessGraph,
    key: &CacheKey,
    algo: &dyn PlacementAlgorithm,
    topology: &Topology,
) -> (Value, u64) {
    let placement = algo.place(graph);
    result_object(graph, key, &placement, topology)
}

/// Builds the result object for one anytime-tier outcome. Same field
/// set as the legacy form — tier and solver provenance live in the
/// response's `cache` labels, not the body, so a background upgrade is
/// observable only through the versioned `cache` field. The returned
/// cost is the body's `cost` field, recomputed under the topology cost
/// model so record costs and response bodies can never disagree.
fn anytime_result(
    graph: &AccessGraph,
    key: &CacheKey,
    outcome: &AnytimeOutcome,
    topology: &Topology,
) -> (Value, u64) {
    result_object(graph, key, &outcome.placement, topology)
}

/// The per-workload result body shared by legacy and tiered solves.
/// Costs come from a single-port [`TopologyCost`], whose linear case is
/// pinned byte-identical to the pre-topology `SinglePortCost`; the
/// `topology` field appears only for non-linear requests, so legacy
/// bodies (and explicit `"topology":"linear"` ones) are unchanged.
fn result_object(
    graph: &AccessGraph,
    key: &CacheKey,
    placement: &Placement,
    topology: &Topology,
) -> (Value, u64) {
    let n = graph.num_items();
    let cost_model = TopologyCost::single_port(*topology, n);
    let naive = cost_model.graph_cost(&Placement::identity(n), graph);
    let cost = cost_model.graph_cost(placement, graph);
    let reduction = if naive > 0 {
        ((naive - naive.min(cost)) as f64) * 100.0 / naive as f64
    } else {
        0.0
    };
    let mut obj = Object::new();
    obj.insert("fingerprint", Value::Str(key.fingerprint.to_hex()));
    obj.insert("algorithm", Value::Str(key.algorithm.clone()));
    obj.insert("seed", Value::Num(Number::U(key.seed)));
    if !topology.is_linear() {
        obj.insert("topology", Value::Str(topology.canonical()));
    }
    obj.insert("items", Value::Num(Number::U(n as u64)));
    obj.insert("edges", Value::Num(Number::U(graph.num_edges() as u64)));
    obj.insert("naive_cost", Value::Num(Number::U(naive)));
    obj.insert("cost", Value::Num(Number::U(cost)));
    obj.insert("reduction_percent", Value::Num(Number::F(reduction)));
    obj.insert(
        "placement",
        Value::Arr(
            placement
                .offsets()
                .iter()
                .map(|&o| Value::Num(Number::U(o as u64)))
                .collect(),
        ),
    );
    (Value::Obj(obj), cost)
}

/// The per-workload `cache` label for tiered solves: an object carrying
/// the resident record's provenance and upgrade lineage.
fn cache_label(status: &str, record: &CacheRecord) -> Value {
    let mut obj = Object::new();
    obj.insert("status", Value::Str(status.into()));
    obj.insert("tier", Value::Num(Number::U(u64::from(record.tier))));
    obj.insert("solver", Value::Str(record.solver.clone()));
    obj.insert("version", Value::Num(Number::U(record.version)));
    obj.insert("upgrades", Value::Num(Number::U(record.upgrades)));
    Value::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_foundation::json::parse;

    fn engine() -> Engine {
        Engine::new(256)
    }

    fn body_obj(resp: &Response) -> Object {
        match parse(resp.body_str().unwrap()).unwrap() {
            Value::Obj(o) => o,
            other => panic!("expected object body, got {other:?}"),
        }
    }

    #[test]
    fn health_and_stats_answer() {
        let e = engine();
        let h = e.handle(&Request::new("GET", "/health"));
        assert_eq!(h.status, 200);
        assert_eq!(
            h.body_str().unwrap(),
            r#"{"status":"ok","service":"dwm-serve"}"#
        );
        assert!(h.header(ELAPSED_HEADER).is_some());
        let s = e.handle(&Request::new("GET", "/stats"));
        assert_eq!(s.status, 200);
        let obj = body_obj(&s);
        assert!(obj.get("cache").is_some());
        assert_eq!(
            obj.get("requests").unwrap().as_number().unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn solve_miss_then_hit_with_identical_results() {
        let e = engine();
        let req = Request::post("/solve", r#"{"ids":[0,1,0,1,2,0,3,2,1]}"#);
        let first = e.handle(&req);
        assert_eq!(first.status, 200, "{:?}", first.body_str());
        let second = e.handle(&req);
        let b1 = body_obj(&first);
        let b2 = body_obj(&second);
        assert_eq!(
            b1.get("cache").unwrap().as_array().unwrap()[0].as_str(),
            Some("miss")
        );
        assert_eq!(
            b2.get("cache").unwrap().as_array().unwrap()[0].as_str(),
            Some("hit")
        );
        assert_eq!(b1.get("results"), b2.get("results"));
        let result = b1.get("results").unwrap().as_array().unwrap()[0]
            .as_object()
            .unwrap();
        assert_eq!(result.get("algorithm").unwrap().as_str(), Some("hybrid"));
        let cost = result.get("cost").unwrap().as_number().unwrap().as_u64();
        let naive = result
            .get("naive_cost")
            .unwrap()
            .as_number()
            .unwrap()
            .as_u64();
        assert!(cost <= naive);
    }

    #[test]
    fn solve_batches_multiple_workloads_in_order() {
        let e = engine();
        let req = Request::post(
            "/solve",
            r#"{"algorithm":"organ-pipe","workloads":[{"ids":[0,1,2]},{"ids":[5,5,5,1]},{"ids":[0,1,2]}]}"#,
        );
        let resp = e.handle(&req);
        assert_eq!(resp.status, 200, "{:?}", resp.body_str());
        let obj = body_obj(&resp);
        let cache: Vec<&str> = obj
            .get("cache")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        // The third workload repeats the first, but cache lookups all
        // happen before the batch solves, so within one request the
        // duplicate is still a miss — with an identical result, since
        // the solver is deterministic.
        assert_eq!(cache, ["miss", "miss", "miss"]);
        let results = obj.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], results[2]);
        assert_ne!(results[0], results[1]);
    }

    #[test]
    fn solve_rejects_unknown_algorithm_and_bad_bodies() {
        let e = engine();
        let bad_algo = e.handle(&Request::post(
            "/solve",
            r#"{"algorithm":"quantum","ids":[1,2]}"#,
        ));
        assert_eq!(bad_algo.status, 400);
        assert!(bad_algo.body_str().unwrap().contains("hybrid"));
        assert_eq!(e.handle(&Request::post("/solve", "{nope")).status, 400);
        assert_eq!(e.handle(&Request::post("/solve", "{}")).status, 400);
    }

    #[test]
    fn evaluate_reports_shift_stats() {
        let e = engine();
        let resp = e.handle(&Request::post(
            "/evaluate",
            r#"{"ids":[0,1,0,2],"placement":[1,0,2],"ports":1}"#,
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body_str());
        let obj = body_obj(&resp);
        assert_eq!(obj.get("model").unwrap().as_str(), Some("1-port"));
        let stats = obj.get("stats").unwrap().as_object().unwrap();
        assert!(stats.get("shifts").is_some());
        // Short placement → 400, not a panic.
        let short = e.handle(&Request::post(
            "/evaluate",
            r#"{"ids":[0,1,2],"placement":[0,1]}"#,
        ));
        assert_eq!(short.status, 400);
        // Non-permutation placement → 400.
        let dup = e.handle(&Request::post(
            "/evaluate",
            r#"{"ids":[0,1],"placement":[0,0]}"#,
        ));
        assert_eq!(dup.status, 400);
    }

    #[test]
    fn simulate_replays_through_the_device_model() {
        let e = engine();
        let resp = e.handle(&Request::post(
            "/simulate",
            r#"{"ids":[0,1,2,1,0,3,3,2],"ports":1}"#,
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body_str());
        let obj = body_obj(&resp);
        let report = obj.get("report").unwrap().as_object().unwrap();
        let integrity = report
            .get("integrity_errors")
            .unwrap()
            .as_number()
            .unwrap()
            .as_u64();
        assert_eq!(integrity, Some(0));
        // Impossible geometry → 400, not a panic.
        let bad = e.handle(&Request::post(
            "/simulate",
            r#"{"ids":[0,1],"domains_per_track":0}"#,
        ));
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn unknown_paths_and_methods_get_404_and_405() {
        let e = engine();
        assert_eq!(e.handle(&Request::new("GET", "/nope")).status, 404);
        assert_eq!(e.handle(&Request::new("DELETE", "/solve")).status, 405);
        assert_eq!(e.handle(&Request::post("/health", "")).status, 405);
    }

    /// Ids whose transition graph interleaves two heavy triangles
    /// ({0,2,4} and {1,3,5}) — the greedy tier-0 fast path leaves
    /// headroom that the tier-2 portfolio strictly claims, which the
    /// upgrade tests below depend on.
    fn interleaved_ids() -> String {
        let mut ids: Vec<u32> = vec![0, 1, 2, 3, 4, 5];
        for _ in 0..10 {
            ids.extend_from_slice(&[0, 2, 4]);
        }
        for _ in 0..10 {
            ids.extend_from_slice(&[1, 3, 5]);
        }
        let ids: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
        format!("[{}]", ids.join(","))
    }

    fn label_at(obj: &Object, i: usize) -> Object {
        obj.get("cache").unwrap().as_array().unwrap()[i]
            .as_object()
            .unwrap()
            .clone()
    }

    fn label_field(label: &Object, field: &str) -> u64 {
        label
            .get(field)
            .unwrap()
            .as_number()
            .unwrap()
            .as_u64()
            .unwrap()
    }

    fn result_cost(obj: &Object, i: usize) -> u64 {
        obj.get("results").unwrap().as_array().unwrap()[i]
            .as_object()
            .unwrap()
            .get("cost")
            .unwrap()
            .as_number()
            .unwrap()
            .as_u64()
            .unwrap()
    }

    #[test]
    fn tiered_fast_solve_labels_with_provenance_objects() {
        let e = engine();
        let req = Request::post("/solve", r#"{"quality":"fast","ids":[0,1,0,1,2,0,3,2,1]}"#);
        let first = e.handle(&req);
        assert_eq!(first.status, 200, "{:?}", first.body_str());
        let b1 = body_obj(&first);
        let l1 = label_at(&b1, 0);
        assert_eq!(l1.get("status").unwrap().as_str(), Some("miss"));
        assert_eq!(label_field(&l1, "tier"), 0);
        assert_eq!(l1.get("solver").unwrap().as_str(), Some("greedy-csr"));
        assert_eq!(label_field(&l1, "version"), 1);
        assert_eq!(label_field(&l1, "upgrades"), 0);
        let result = b1.get("results").unwrap().as_array().unwrap()[0]
            .as_object()
            .unwrap();
        assert_eq!(result.get("algorithm").unwrap().as_str(), Some("anytime"));
        // Fast never schedules an upgrade.
        assert_eq!(e.upgrade_queue_depth(), 0);
        let second = e.handle(&req);
        let b2 = body_obj(&second);
        let l2 = label_at(&b2, 0);
        assert_eq!(l2.get("status").unwrap().as_str(), Some("hit"));
        assert_eq!(label_field(&l2, "version"), 1);
        assert_eq!(b1.get("results"), b2.get("results"));
    }

    #[test]
    fn tiered_knob_misuse_is_rejected() {
        let e = engine();
        for body in [
            r#"{"quality":"turbo","ids":[0,1]}"#,
            r#"{"algorithm":"hybrid","quality":"fast","ids":[0,1]}"#,
            r#"{"algorithm":"hybrid","deadline_us":50,"ids":[0,1]}"#,
            r#"{"deadline_us":-3,"ids":[0,1]}"#,
            r#"{"quality":7,"ids":[0,1]}"#,
        ] {
            let resp = e.handle(&Request::post("/solve", body));
            assert_eq!(resp.status, 400, "{body} → {:?}", resp.body_str());
        }
        // deadline_us alone is valid (implies balanced) — but 0 can
        // never be met, so admission control answers 503.
        let resp = e.handle(&Request::post(
            "/solve",
            r#"{"deadline_us":18446744073709551615,"ids":[0,1,0,2]}"#,
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body_str());
        let resp = e.handle(&Request::post(
            "/solve",
            r#"{"deadline_us":0,"ids":[0,1,0,2]}"#,
        ));
        assert_eq!(resp.status, 503, "{:?}", resp.body_str());
    }

    #[test]
    fn infeasible_deadlines_are_refused_up_front() {
        let e = engine();
        let req = Request::post(
            "/solve",
            r#"{"quality":"fast","deadline_us":1,"ids":[0,1,0,1,2,0,3,2,1]}"#,
        );
        let resp = e.handle(&req);
        assert_eq!(resp.status, 503, "{:?}", resp.body_str());
        assert!(resp.body_str().unwrap().contains("infeasible"));
        // Nothing was solved or cached, and the rejection is counted.
        assert_eq!(e.cache().stats().entries, 0);
        let s = body_obj(&e.handle(&Request::new("GET", "/stats")));
        let deadline = s.get("deadline").unwrap().as_object().unwrap();
        assert_eq!(label_field(deadline, "infeasible"), 1);
        assert_eq!(
            label_field(deadline, "met") + label_field(deadline, "missed"),
            0
        );
        // Even a cached workload is refused: the contract is about the
        // request's deadline, not about what happens to be resident.
        let warm = e.handle(&Request::post(
            "/solve",
            r#"{"quality":"fast","ids":[0,1,0,1,2,0,3,2,1]}"#,
        ));
        assert_eq!(warm.status, 200);
        assert_eq!(e.handle(&req).status, 503);
    }

    #[test]
    fn exact_quality_answers_the_optimum_and_bounds_size() {
        let e = engine();
        let req = Request::post("/solve", r#"{"quality":"exact","ids":[0,1,0,1,2,0,3,2,1]}"#);
        let first = e.handle(&req);
        assert_eq!(first.status, 200, "{:?}", first.body_str());
        let b1 = body_obj(&first);
        let l1 = label_at(&b1, 0);
        assert_eq!(l1.get("status").unwrap().as_str(), Some("miss"));
        assert_eq!(label_field(&l1, "tier"), 3);
        assert_eq!(l1.get("solver").unwrap().as_str(), Some("subset-dp"));
        // No upgrade ever: the record is already optimal.
        assert_eq!(e.upgrade_queue_depth(), 0);
        let second = e.handle(&req);
        let l2 = label_at(&body_obj(&second), 0);
        assert_eq!(l2.get("status").unwrap().as_str(), Some("hit"));
        assert_eq!(label_field(&l2, "tier"), 3);
        // 13 distinct items exceeds the exact plan limit.
        let ids: Vec<String> = (0..13u32).map(|i| i.to_string()).collect();
        let big = format!(r#"{{"quality":"exact","ids":[{}]}}"#, ids.join(","));
        let resp = e.handle(&Request::post("/solve", big.as_str()));
        assert_eq!(resp.status, 400, "{:?}", resp.body_str());
        assert!(resp.body_str().unwrap().contains("exact"));
    }

    #[test]
    fn exact_requests_never_accept_heuristic_cache_records() {
        let e = engine();
        let ids = r#"[0,1,0,1,2,0,3,2,1]"#;
        let fast = format!(r#"{{"quality":"fast","ids":{ids}}}"#);
        let exact = format!(r#"{{"quality":"exact","ids":{ids}}}"#);
        assert_eq!(
            e.handle(&Request::post("/solve", fast.as_str())).status,
            200
        );
        // Same workload, same cache key — but the tier-0 record must
        // not satisfy an exact request.
        let resp = e.handle(&Request::post("/solve", exact.as_str()));
        let label = label_at(&body_obj(&resp), 0);
        assert_eq!(label.get("status").unwrap().as_str(), Some("miss"));
        assert_eq!(label_field(&label, "tier"), 3);
        // The exact record overwrote the heuristic one; a later
        // fast-quality request now serves the optimum from cache.
        let warm = e.handle(&Request::post("/solve", fast.as_str()));
        let label = label_at(&body_obj(&warm), 0);
        assert_eq!(label.get("status").unwrap().as_str(), Some("hit"));
        assert_eq!(label_field(&label, "tier"), 3);
    }

    #[test]
    fn best_quality_upgrades_the_cached_record_in_place() {
        let e = engine();
        // A 45 µs deadline is below the tier-1 estimate for this
        // workload, so the foreground answers from tier 0 and `best`
        // queues a background tier-2 upgrade.
        let body = format!(
            r#"{{"quality":"best","deadline_us":45,"ids":{}}}"#,
            interleaved_ids()
        );
        let req = Request::post("/solve", body.as_str());
        let first = e.handle(&req);
        assert_eq!(first.status, 200, "{:?}", first.body_str());
        let b1 = body_obj(&first);
        let l1 = label_at(&b1, 0);
        assert_eq!(l1.get("status").unwrap().as_str(), Some("miss"));
        assert_eq!(label_field(&l1, "tier"), 0);
        assert_eq!(label_field(&l1, "version"), 1);

        assert!(e.drain_upgrades(Duration::from_secs(60)), "upgrade hung");
        let stats = e.cache().stats();
        assert_eq!(stats.upgrades_applied, 1, "{stats:?}");

        let second = e.handle(&req);
        let b2 = body_obj(&second);
        let l2 = label_at(&b2, 0);
        assert_eq!(l2.get("status").unwrap().as_str(), Some("hit"));
        assert_eq!(label_field(&l2, "tier"), 2);
        assert_eq!(label_field(&l2, "version"), 2);
        assert_eq!(label_field(&l2, "upgrades"), 1);
        assert!(
            result_cost(&b2, 0) < result_cost(&b1, 0),
            "upgrade must be strictly better: {} vs {}",
            result_cost(&b2, 0),
            result_cost(&b1, 0)
        );
        // The record is already tier 2 — no further upgrade queued.
        assert_eq!(e.upgrade_queue_depth(), 0);
    }

    #[test]
    fn upgrades_can_be_disabled() {
        let e = Engine::with_config(EngineConfig {
            upgrades: false,
            ..EngineConfig::default()
        });
        let body = format!(
            r#"{{"quality":"best","deadline_us":45,"ids":{}}}"#,
            interleaved_ids()
        );
        let first = e.handle(&Request::post("/solve", body.as_str()));
        assert_eq!(first.status, 200);
        assert!(e.drain_upgrades(Duration::from_millis(10)));
        let second = e.handle(&Request::post("/solve", body.as_str()));
        let l2 = label_at(&body_obj(&second), 0);
        assert_eq!(l2.get("status").unwrap().as_str(), Some("hit"));
        assert_eq!(label_field(&l2, "tier"), 0);
        assert_eq!(label_field(&l2, "version"), 1);
    }

    #[test]
    fn stats_expose_tier_upgrade_and_deadline_families() {
        let e = engine();
        let solve = e.handle(&Request::post(
            "/solve",
            r#"{"quality":"balanced","deadline_us":100000,"ids":[0,1,0,1,2,0]}"#,
        ));
        assert_eq!(solve.status, 200);
        let s = body_obj(&e.handle(&Request::new("GET", "/stats")));
        let tiers = s.get("tiers").unwrap().as_object().unwrap();
        let t0 = label_field(tiers, "tier0");
        let t1 = label_field(tiers, "tier1");
        assert_eq!(t0 + t1, 1, "exactly one foreground tiered solve");
        let upgrades = s.get("upgrades").unwrap().as_object().unwrap();
        assert_eq!(label_field(upgrades, "enqueued"), 0);
        let deadline = s.get("deadline").unwrap().as_object().unwrap();
        assert_eq!(
            label_field(deadline, "met") + label_field(deadline, "missed"),
            1
        );
        let cache = s.get("cache").unwrap().as_object().unwrap();
        assert_eq!(label_field(cache, "upgrades_applied"), 0);
        // /metrics renders the same families.
        let m = e.handle(&Request::new("GET", "/metrics"));
        let text = m.body_str().unwrap().to_owned();
        for family in [
            "dwm_serve_tier_solves_total",
            "dwm_serve_upgrades_enqueued_total",
            "dwm_serve_upgrades_applied_total",
            "dwm_serve_upgrades_discarded_total",
            "dwm_serve_upgrade_queue_depth",
            "dwm_serve_deadline_met_total",
            "dwm_serve_deadline_missed_total",
            "dwm_serve_deadline_infeasible_total",
        ] {
            assert!(text.contains(family), "missing {family} in /metrics");
        }
    }

    #[test]
    fn session_create_echoes_tier_knobs_only_when_set() {
        let e = engine();
        let legacy = e.handle(&Request::post("/session", r#"{"window":100}"#));
        assert_eq!(legacy.status, 200);
        assert!(!legacy.body_str().unwrap().contains("quality"));
        let tiered = e.handle(&Request::post(
            "/session",
            r#"{"window":100,"quality":"best","replace_deadline_us":500}"#,
        ));
        assert_eq!(tiered.status, 200, "{:?}", tiered.body_str());
        let body = tiered.body_str().unwrap();
        assert!(body.contains(r#""quality":"best""#), "{body}");
        assert!(body.contains(r#""replace_deadline_us":500"#), "{body}");
        // A bare deadline implies balanced, like /solve.
        let implied = e.handle(&Request::post("/session", r#"{"replace_deadline_us":250}"#));
        assert!(
            implied
                .body_str()
                .unwrap()
                .contains(r#""quality":"balanced""#),
            "{:?}",
            implied.body_str()
        );
        let bad = e.handle(&Request::post("/session", r#"{"quality":"turbo"}"#));
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn topology_requests_never_alias_the_linear_cache() {
        let e = engine();
        let linear = e.handle(&Request::post("/solve", r#"{"ids":[0,7,0,7,3,0,7]}"#));
        let ring = e.handle(&Request::post(
            "/solve",
            r#"{"ids":[0,7,0,7,3,0,7],"topology":"ring"}"#,
        ));
        assert_eq!(linear.status, 200, "{:?}", linear.body_str());
        assert_eq!(ring.status, 200, "{:?}", ring.body_str());
        let bl = body_obj(&linear);
        let br = body_obj(&ring);
        // Same ids, but the ring request is a miss under its own key.
        assert_eq!(
            br.get("cache").unwrap().as_array().unwrap()[0].as_str(),
            Some("miss")
        );
        let rl = bl.get("results").unwrap().as_array().unwrap()[0]
            .as_object()
            .unwrap()
            .clone();
        let rr = br.get("results").unwrap().as_array().unwrap()[0]
            .as_object()
            .unwrap()
            .clone();
        assert_ne!(rl.get("fingerprint"), rr.get("fingerprint"));
        // The topology field appears only on the non-linear body, and
        // ring costs never exceed linear on the same placement problem.
        assert!(rl.get("topology").is_none());
        assert_eq!(rr.get("topology").unwrap().as_str(), Some("ring"));
        let cost = |r: &Object, f: &str| r.get(f).unwrap().as_number().unwrap().as_u64().unwrap();
        assert!(cost(&rr, "naive_cost") <= cost(&rl, "naive_cost"));
        // An explicit linear topology is byte-identical to the default
        // (and hits the same cache record).
        let explicit = e.handle(&Request::post(
            "/solve",
            r#"{"ids":[0,7,0,7,3,0,7],"topology":"linear"}"#,
        ));
        let be = body_obj(&explicit);
        assert_eq!(
            be.get("cache").unwrap().as_array().unwrap()[0].as_str(),
            Some("hit")
        );
        assert_eq!(bl.get("results"), be.get("results"));
    }

    #[test]
    fn malformed_and_undersized_topologies_answer_400() {
        let e = engine();
        let bad = e.handle(&Request::post(
            "/solve",
            r#"{"ids":[0,1],"topology":"mobius"}"#,
        ));
        assert_eq!(bad.status, 400, "{:?}", bad.body_str());
        assert!(bad.body_str().unwrap().contains("topology"));
        // A grid that cannot hold the workload's items is refused.
        let small = e.handle(&Request::post(
            "/solve",
            r#"{"ids":[0,1,2,3,4],"topology":"grid2d:2x2"}"#,
        ));
        assert_eq!(small.status, 400, "{:?}", small.body_str());
        // Tiered solves run the same validation.
        let tiered = e.handle(&Request::post(
            "/solve",
            r#"{"quality":"fast","ids":[0,1],"topology":"mobius"}"#,
        ));
        assert_eq!(tiered.status, 400);
    }

    #[test]
    fn tiered_topology_solves_cache_under_their_own_key() {
        let e = engine();
        let linear = Request::post("/solve", r#"{"quality":"fast","ids":[0,1,0,1,2,0,3,2,1]}"#);
        let ring = Request::post(
            "/solve",
            r#"{"quality":"fast","ids":[0,1,0,1,2,0,3,2,1],"topology":"ring"}"#,
        );
        assert_eq!(e.handle(&linear).status, 200);
        let first_ring = e.handle(&ring);
        let l1 = label_at(&body_obj(&first_ring), 0);
        assert_eq!(l1.get("status").unwrap().as_str(), Some("miss"));
        let second_ring = e.handle(&ring);
        let l2 = label_at(&body_obj(&second_ring), 0);
        assert_eq!(l2.get("status").unwrap().as_str(), Some("hit"));
        // The per-topology counter saw one linear and two ring solves.
        let s = body_obj(&e.handle(&Request::new("GET", "/stats")));
        let topo = s.get("topologies").unwrap().as_object().unwrap();
        assert_eq!(label_field(topo, "linear"), 1);
        assert_eq!(label_field(topo, "ring"), 2);
        // /metrics renders the labeled family.
        let m = e.handle(&Request::new("GET", "/metrics"));
        let text = m.body_str().unwrap();
        assert!(text.contains("dwm_serve_topology_solves_total"), "{text}");
        assert!(text.contains(r#"topology="ring""#), "{text}");
    }

    #[test]
    fn session_create_parses_and_echoes_topology() {
        let e = engine();
        let legacy = e.handle(&Request::post("/session", r#"{"window":100}"#));
        assert!(!legacy.body_str().unwrap().contains("topology"));
        let explicit = e.handle(&Request::post(
            "/session",
            r#"{"window":100,"topology":"linear"}"#,
        ));
        assert_eq!(legacy.status, 200);
        assert_eq!(explicit.status, 200);
        // Explicit linear stays byte-identical to the default (modulo
        // the session id, which differs by construction).
        assert_eq!(
            legacy.body_str().unwrap().replace("s-1", "s-2"),
            explicit.body_str().unwrap()
        );
        let ring = e.handle(&Request::post(
            "/session",
            r#"{"window":100,"topology":"ring"}"#,
        ));
        assert_eq!(ring.status, 200, "{:?}", ring.body_str());
        assert!(ring.body_str().unwrap().contains(r#""topology":"ring""#));
        let bad = e.handle(&Request::post("/session", r#"{"topology":"mobius"}"#));
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn tiered_bodies_are_thread_count_invariant() {
        use dwm_foundation::par;
        let req = Request::post(
            "/solve",
            r#"{"quality":"balanced","workloads":[{"ids":[0,1,0,2,1,3]},{"ids":[4,4,2,0]},{"ids":[9,8,7,9,8]}]}"#,
        );
        let body_at = |threads: usize| {
            let _guard = par::override_threads(threads);
            let e = engine();
            let resp = e.handle(&req);
            assert_eq!(resp.status, 200);
            resp.body_str().unwrap().to_owned()
        };
        assert_eq!(body_at(1), body_at(8));
    }

    #[test]
    fn solve_bodies_are_thread_count_invariant() {
        use dwm_foundation::par;
        let req = Request::post(
            "/solve",
            r#"{"workloads":[{"ids":[0,1,0,2,1,3]},{"ids":[4,4,2,0]},{"ids":[9,8,7,9,8]}]}"#,
        );
        let body_at = |threads: usize| {
            let _guard = par::override_threads(threads);
            let e = engine();
            let resp = e.handle(&req);
            assert_eq!(resp.status, 200);
            resp.body_str().unwrap().to_owned()
        };
        assert_eq!(body_at(1), body_at(4));
    }
}
