/// Identifier of an access port within a [`PortLayout`].
///
/// A newtype rather than a bare `usize` so that port ids cannot be
/// confused with word offsets or shift distances in APIs that take both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(pub usize);

dwm_foundation::json_newtype!(PortId);

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// The fixed positions of the read/write heads along a track.
///
/// Positions are word offsets in `[0, L)` and are kept sorted. The
/// layout is shared by every DBC in a device. Because all tracks of a
/// DBC shift in lockstep, aligning word offset `o` with the port at
/// position `p` requires the tape displacement to equal `o - p`
/// (positive displacement = tape moved toward lower physical indices).
///
/// # Example
///
/// ```
/// use dwm_device::PortLayout;
///
/// let layout = PortLayout::evenly_spaced(2, 64);
/// assert_eq!(layout.positions(), &[16, 48]);
/// // Nearest port to word 50 given the tape currently at rest:
/// let (port, dist) = layout.nearest_port(50, 0);
/// assert_eq!(layout.positions()[port.0], 48);
/// assert_eq!(dist, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortLayout {
    positions: Vec<usize>,
}

dwm_foundation::json_struct!(PortLayout { positions });

impl PortLayout {
    /// A single port at word offset 0 (the common low-cost design).
    pub fn single() -> Self {
        PortLayout { positions: vec![0] }
    }

    /// `count` ports spread evenly over a track of `l` words.
    ///
    /// Port `i` sits at the centre of the `i`-th of `count` equal
    /// segments, i.e. at `(2i + 1) * l / (2 * count)`, which minimizes
    /// the worst-case distance from any word to its nearest port.
    /// `count = 0` yields an empty layout (rejected later by
    /// configuration validation).
    pub fn evenly_spaced(count: usize, l: usize) -> Self {
        let positions = (0..count)
            .map(|i| ((2 * i + 1) * l) / (2 * count.max(1)))
            .map(|p| p.min(l.saturating_sub(1)))
            .collect();
        PortLayout { positions }
    }

    /// A layout with explicit positions; they are sorted and kept as-is
    /// (duplicates are rejected by configuration validation).
    pub fn at_positions<I: IntoIterator<Item = usize>>(positions: I) -> Self {
        let mut positions: Vec<usize> = positions.into_iter().collect();
        positions.sort_unstable();
        PortLayout { positions }
    }

    /// The sorted port positions (word offsets).
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Number of ports.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the layout has no ports.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterates over `(PortId, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PortId, usize)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (PortId(i), p))
    }

    /// Given the current tape displacement, returns the port that can
    /// reach word `offset` with the fewest shifts, together with that
    /// shift distance.
    ///
    /// The required displacement to align `offset` with the port at
    /// position `p` is `offset - p`; the shift distance from the current
    /// displacement `s` is `|(offset - p) - s|`. Ties are broken toward
    /// the lowest-numbered port, which keeps replay deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the layout is empty (configurations validated through
    /// [`crate::DeviceConfig`] always have at least one port).
    pub fn nearest_port(&self, offset: usize, displacement: i64) -> (PortId, u64) {
        self.iter()
            .map(|(id, p)| {
                let required = offset as i64 - p as i64;
                (id, required.abs_diff(displacement))
            })
            .min_by_key(|&(id, d)| (d, id))
            .expect("port layout must not be empty")
    }

    /// The tape displacement required to align `offset` with `port`.
    pub fn required_displacement(&self, offset: usize, port: PortId) -> i64 {
        offset as i64 - self.positions[port.0] as i64
    }
}

impl IntoIterator for &PortLayout {
    type Item = (PortId, usize);
    type IntoIter = std::vec::IntoIter<(PortId, usize)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// What an access port can do.
///
/// DWM macro-cells typically mix many cheap magneto-tunnel-junction
/// *read* heads with a few expensive shift-based *write* heads: a
/// read-only port costs a fraction of a read-write port's area. The
/// typed layout models that asymmetry — writes may only align with
/// read-write ports, reads with any port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortCapability {
    /// The port can only sense (read) the domain under it.
    ReadOnly,
    /// The port can sense and write the domain under it.
    ReadWrite,
}

dwm_foundation::json_unit_enum!(PortCapability {
    ReadOnly,
    ReadWrite
});

/// A port layout in which each port is read-only or read-write.
///
/// # Example
///
/// ```
/// use dwm_device::{PortCapability, TypedPortLayout};
///
/// // One write head at 0, extra read heads at 21 and 42.
/// let layout = TypedPortLayout::new([
///     (0, PortCapability::ReadWrite),
///     (21, PortCapability::ReadOnly),
///     (42, PortCapability::ReadOnly),
/// ]);
/// assert_eq!(layout.read_layout().len(), 3);
/// assert_eq!(layout.write_layout().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypedPortLayout {
    read: PortLayout,
    write: PortLayout,
}

dwm_foundation::json_struct!(TypedPortLayout { read, write });

impl TypedPortLayout {
    /// Builds a typed layout from `(position, capability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no port is read-write (the tape would be unwritable).
    pub fn new<I: IntoIterator<Item = (usize, PortCapability)>>(ports: I) -> Self {
        let ports: Vec<(usize, PortCapability)> = ports.into_iter().collect();
        let write = PortLayout::at_positions(
            ports
                .iter()
                .filter(|(_, c)| *c == PortCapability::ReadWrite)
                .map(|&(p, _)| p),
        );
        assert!(
            !write.is_empty(),
            "a typed port layout needs at least one read-write port"
        );
        let read = PortLayout::at_positions(ports.iter().map(|&(p, _)| p));
        TypedPortLayout { read, write }
    }

    /// A layout of `total` evenly spaced ports over `l` words, of
    /// which the first `read_write` (cyclically every
    /// `total / read_write`-th port) are read-write.
    ///
    /// # Panics
    ///
    /// Panics if `read_write == 0` or `read_write > total`.
    pub fn evenly_spaced(total: usize, read_write: usize, l: usize) -> Self {
        assert!(
            read_write > 0 && read_write <= total,
            "need 1..=total read-write ports"
        );
        let all = PortLayout::evenly_spaced(total, l);
        let stride = total / read_write;
        TypedPortLayout::new(all.positions().iter().enumerate().map(|(i, &p)| {
            let cap = if i % stride == 0 && i / stride < read_write {
                PortCapability::ReadWrite
            } else {
                PortCapability::ReadOnly
            };
            (p, cap)
        }))
    }

    /// The layout usable by reads (all ports).
    pub fn read_layout(&self) -> &PortLayout {
        &self.read
    }

    /// The layout usable by writes (read-write ports only).
    pub fn write_layout(&self) -> &PortLayout {
        &self.write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layout_is_at_zero() {
        let l = PortLayout::single();
        assert_eq!(l.positions(), &[0]);
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }

    #[test]
    fn evenly_spaced_centres_segments() {
        assert_eq!(PortLayout::evenly_spaced(1, 64).positions(), &[32]);
        assert_eq!(PortLayout::evenly_spaced(2, 64).positions(), &[16, 48]);
        assert_eq!(
            PortLayout::evenly_spaced(4, 64).positions(),
            &[8, 24, 40, 56]
        );
    }

    #[test]
    fn evenly_spaced_clamps_to_track() {
        let l = PortLayout::evenly_spaced(3, 2);
        assert!(l.positions().iter().all(|&p| p < 2));
    }

    #[test]
    fn at_positions_sorts() {
        let l = PortLayout::at_positions([9, 1, 5]);
        assert_eq!(l.positions(), &[1, 5, 9]);
    }

    #[test]
    fn nearest_port_accounts_for_displacement() {
        let l = PortLayout::at_positions([0, 10]);
        // At rest, word 9 is nearest to the port at 10 (distance 1).
        assert_eq!(l.nearest_port(9, 0), (PortId(1), 1));
        // With tape already displaced by +9, port 0 needs no shift.
        assert_eq!(l.nearest_port(9, 9), (PortId(0), 0));
    }

    #[test]
    fn nearest_port_breaks_ties_low() {
        let l = PortLayout::at_positions([0, 4]);
        // Word 2 is 2 away from both ports at rest: choose port 0.
        assert_eq!(l.nearest_port(2, 0).0, PortId(0));
    }

    #[test]
    fn required_displacement_is_signed() {
        let l = PortLayout::at_positions([4]);
        assert_eq!(l.required_displacement(1, PortId(0)), -3);
        assert_eq!(l.required_displacement(7, PortId(0)), 3);
    }

    #[test]
    fn typed_layout_splits_capabilities() {
        let t = TypedPortLayout::new([
            (0, PortCapability::ReadWrite),
            (21, PortCapability::ReadOnly),
            (42, PortCapability::ReadOnly),
        ]);
        assert_eq!(t.read_layout().positions(), &[0, 21, 42]);
        assert_eq!(t.write_layout().positions(), &[0]);
    }

    #[test]
    #[should_panic(expected = "read-write port")]
    fn typed_layout_requires_a_writer() {
        let _ = TypedPortLayout::new([(0, PortCapability::ReadOnly)]);
    }

    #[test]
    fn evenly_spaced_typed_counts() {
        let t = TypedPortLayout::evenly_spaced(4, 2, 64);
        assert_eq!(t.read_layout().len(), 4);
        assert_eq!(t.write_layout().len(), 2);
        let all_rw = TypedPortLayout::evenly_spaced(4, 4, 64);
        assert_eq!(all_rw.write_layout().len(), 4);
        assert_eq!(all_rw.write_layout(), all_rw.read_layout());
    }

    #[test]
    #[should_panic(expected = "read-write ports")]
    fn evenly_spaced_typed_rejects_zero_writers() {
        let _ = TypedPortLayout::evenly_spaced(4, 0, 64);
    }
}
