//! Property-based tests over the core invariants (proptest).
//!
//! These check the invariants listed in `DESIGN.md` §7 on randomly
//! generated traces, graphs, and placements rather than hand-picked
//! cases.

use proptest::prelude::*;

use dwm_placement::core::algorithms::standard_suite;
use dwm_placement::core::exact::optimal_placement;
use dwm_placement::prelude::*;

/// Strategy: a random trace over `1..=max_items` items.
fn arb_trace(max_items: usize, max_len: usize) -> impl Strategy<Value = Trace> {
    (1..=max_items).prop_flat_map(move |items| {
        proptest::collection::vec((0..items as u32, proptest::bool::ANY), 1..=max_len).prop_map(
            |accs| {
                Trace::from_accesses(accs.into_iter().map(|(id, w)| {
                    if w {
                        Access::write(id)
                    } else {
                        Access::read(id)
                    }
                }))
                .normalize()
            },
        )
    })
}

/// Strategy: a random access graph over `2..=n` items.
fn arb_graph(n: usize) -> impl Strategy<Value = AccessGraph> {
    arb_trace(n, 200).prop_map(|t| AccessGraph::from_trace(&t))
}

proptest! {
    // 48 cases per property: the suite covers 15 properties, several
    // of which run the full algorithm roster (annealing included), so
    // the default 256 cases costs minutes without adding much power.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm always produces a bijection.
    #[test]
    fn placements_are_permutations(graph in arb_graph(24), seed in 0u64..1000) {
        for alg in standard_suite(seed) {
            let p = alg.place(&graph);
            prop_assert_eq!(p.num_items(), graph.num_items());
            let mut seen = vec![false; graph.num_items()];
            for off in 0..graph.num_items() {
                let item = p.item_at(off);
                prop_assert!(!seen[item], "{} duplicated item", alg.name());
                seen[item] = true;
                prop_assert_eq!(p.offset_of(item), off);
            }
        }
    }

    /// Trace replay cost = arrangement cost + first-access alignment,
    /// for any placement and any trace (single-port model).
    #[test]
    fn trace_cost_equals_graph_cost_plus_alignment(trace in arb_trace(16, 300), seed in 0u64..100) {
        let graph = AccessGraph::from_trace(&trace);
        let placement = RandomPlacement::new(seed).place(&graph);
        let model = SinglePortCost::new();
        let replay = model.trace_cost(&placement, &trace).stats.shifts;
        let arrangement = graph.arrangement_cost(placement.offsets());
        let first = trace.accesses()[0].item;
        let alignment = placement.offset_of_id(first) as u64;
        prop_assert_eq!(replay, arrangement + alignment);
    }

    /// No heuristic ever beats the exact optimum (n ≤ 9 keeps the DP
    /// fast under proptest's case count).
    #[test]
    fn heuristics_respect_the_optimum(graph in arb_graph(9), seed in 0u64..100) {
        let (_, opt) = optimal_placement(&graph).expect("small instance");
        for alg in standard_suite(seed) {
            let cost = graph.arrangement_cost(alg.place(&graph).offsets());
            prop_assert!(cost >= opt, "{} cost {} below optimum {}", alg.name(), cost, opt);
        }
    }

    /// Local search never increases the arrangement cost, from any
    /// starting placement.
    #[test]
    fn local_search_is_monotone(graph in arb_graph(20), seed in 0u64..1000) {
        let mut p = RandomPlacement::new(seed).place(&graph);
        let before = graph.arrangement_cost(p.offsets());
        let saved = LocalSearch::default().refine(&graph, &mut p);
        let after = graph.arrangement_cost(p.offsets());
        prop_assert!(after <= before);
        prop_assert_eq!(before - after, saved);
    }

    /// The multi-port model with a single port at offset 0 agrees with
    /// the single-port model on every trace and placement.
    #[test]
    fn single_port_models_agree(trace in arb_trace(16, 200), seed in 0u64..100) {
        let graph = AccessGraph::from_trace(&trace);
        let p = RandomPlacement::new(seed).place(&graph);
        let a = SinglePortCost::new().trace_cost(&p, &trace).stats.shifts;
        let b = MultiPortCost::new(PortLayout::single())
            .trace_cost(&p, &trace)
            .stats
            .shifts;
        prop_assert_eq!(a, b);
    }

    /// Mirroring a placement never changes its arrangement cost (the
    /// cost model is symmetric).
    #[test]
    fn mirror_preserves_cost(graph in arb_graph(16), seed in 0u64..100) {
        let mut p = RandomPlacement::new(seed).place(&graph);
        let before = graph.arrangement_cost(p.offsets());
        p.mirror();
        prop_assert_eq!(graph.arrangement_cost(p.offsets()), before);
    }

    /// Text serialization round-trips every trace exactly.
    #[test]
    fn trace_text_round_trip(trace in arb_trace(32, 300)) {
        use dwm_placement::trace::io;
        let text = io::to_text(&trace);
        let back = io::from_text(&text).expect("own output parses");
        prop_assert_eq!(back, trace);
    }

    /// The simulator always matches the analytic model and never sees
    /// integrity errors, on random traces and random placements.
    #[test]
    fn simulator_matches_model_on_random_traces(trace in arb_trace(12, 150), seed in 0u64..50) {
        let graph = AccessGraph::from_trace(&trace);
        let p = RandomPlacement::new(seed).place(&graph);
        let analytic = SinglePortCost::new().trace_cost(&p, &trace).stats.shifts;
        let config = DeviceConfig::builder()
            .domains_per_track(graph.num_items().max(1))
            .tracks_per_dbc(16)
            .build()
            .expect("valid");
        let mut sim = SpmSimulator::new(&config, &p).expect("fits");
        let report = sim.run(&trace).expect("replay");
        prop_assert_eq!(report.stats.shifts, analytic);
        prop_assert_eq!(report.integrity_errors, 0);
    }

    /// Graph construction: total edge weight equals the number of
    /// distinct-item transitions in the trace.
    #[test]
    fn graph_weight_matches_transitions(trace in arb_trace(24, 300)) {
        let graph = AccessGraph::from_trace(&trace);
        prop_assert_eq!(graph.total_weight() as usize, trace.stats().transitions);
    }

    /// SPM layouts assign every item a unique in-capacity slot.
    #[test]
    fn spm_layouts_are_injective(trace in arb_trace(24, 300)) {
        let alloc = SpmAllocator::new(4, 8);
        let layout = alloc
            .allocate(&trace, &GroupedChainGrowth::default())
            .expect("24 items fit 4x8");
        let mut slots = std::collections::HashSet::new();
        for item in 0..layout.num_items() {
            prop_assert!(layout.dbc_of(item) < 4);
            prop_assert!(layout.offset_of(item) < 8);
            prop_assert!(slots.insert((layout.dbc_of(item), layout.offset_of(item))));
        }
    }

    /// The branch-and-bound exact solver always matches the subset-DP
    /// optimum on random access graphs.
    #[test]
    fn exact_solvers_agree(graph in arb_graph(10)) {
        use dwm_placement::core::exact_bb::branch_and_bound_placement;
        let (_, dp) = optimal_placement(&graph).expect("small instance");
        let (p, bb) = branch_and_bound_placement(&graph).expect("small instance");
        prop_assert_eq!(dp, bb);
        prop_assert_eq!(graph.arrangement_cost(p.offsets()), bb);
    }

    /// A typed port layout with every port read-write agrees with the
    /// plain multi-port model; removing writers never helps.
    #[test]
    fn typed_ports_are_consistent(trace in arb_trace(16, 200), seed in 0u64..50) {
        use dwm_placement::device::TypedPortLayout;
        let graph = AccessGraph::from_trace(&trace);
        let p = RandomPlacement::new(seed).place(&graph);
        let l = 16usize;
        let all_rw = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 4, l))
            .trace_cost(&p, &trace).stats.shifts;
        let multi = MultiPortCost::evenly_spaced(4, l).trace_cost(&p, &trace).stats.shifts;
        prop_assert_eq!(all_rw, multi);
        let one_rw = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 1, l))
            .trace_cost(&p, &trace).stats.shifts;
        prop_assert!(one_rw >= all_rw);
    }

    /// Cache invariants: hits + misses = accesses; capacity-sized
    /// looping working sets eventually hit; shift count is consistent
    /// with way distances (bounded by ways−1 per access + promotions).
    #[test]
    fn cache_counters_are_consistent(trace in arb_trace(64, 400)) {
        let mut cache = DwmCache::new(CacheConfig::new(4, 4).expect("valid"));
        let stats = cache.run_trace(&trace);
        prop_assert_eq!(stats.accesses(), trace.len() as u64);
        prop_assert!(stats.shifts <= stats.accesses() * 3);
        prop_assert!(stats.hit_ratio() >= 0.0 && stats.hit_ratio() <= 1.0);
    }

    /// Start-gap rotation conserves total writes and never leaves the
    /// slot histogram inconsistent with the trace's write count.
    #[test]
    fn wear_rotation_conserves_writes(trace in arb_trace(16, 300), period in 1u64..50) {
        use dwm_placement::core::wear::{RotatingEvaluator, WearConfig};
        let n = trace.num_items();
        let placement = Placement::identity(n);
        let report = RotatingEvaluator::new(WearConfig::every_writes(period, n))
            .evaluate(&placement, &trace);
        let total_writes: u64 = report.slot_writes.iter().sum();
        prop_assert_eq!(total_writes, trace.stats().writes as u64);
        prop_assert_eq!(
            report.total_shifts(),
            report.access_shifts + report.rotation_shifts
        );
    }

    /// The online placer's access+migration accounting is internally
    /// consistent and its final placement is a valid permutation.
    #[test]
    fn online_placer_invariants(trace in arb_trace(16, 600)) {
        use dwm_placement::core::online::{OnlineConfig, OnlinePlacer};
        let report = OnlinePlacer::new(OnlineConfig {
            window: 100,
            migration_shifts_per_item: 8,
            ..OnlineConfig::default()
        })
        .run(&trace);
        prop_assert_eq!(
            report.total_shifts(),
            report.access_shifts + report.migration_shifts
        );
        let p = &report.final_placement;
        let mut seen = vec![false; p.num_items()];
        for off in 0..p.num_items() {
            prop_assert!(!seen[p.item_at(off)]);
            seen[p.item_at(off)] = true;
        }
    }
}
