use dwm_device::{AccessEnergy, AccessLatency, ShiftStats};

/// Outcome of one simulated trace replay.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// Aggregate shift/access counters.
    pub stats: ShiftStats,
    /// Per-DBC counters.
    pub per_dbc: Vec<ShiftStats>,
    /// Latency projection (serial replay).
    pub latency: AccessLatency,
    /// Energy projection.
    pub energy: AccessEnergy,
    /// Number of reads whose value disagreed with the shadow model.
    /// Always zero unless the device model or placement plumbing is
    /// broken — the simulator is self-checking.
    pub integrity_errors: u64,
    /// Shift-slip events injected by the fault model (0 when fault
    /// injection is disabled). Each slip's repair cost is included in
    /// `stats.shifts` via the following access's re-alignment.
    pub slip_events: u64,
}

dwm_foundation::json_struct!(SimReport {
    stats,
    per_dbc,
    latency,
    energy,
    integrity_errors,
    slip_events
});

impl SimReport {
    /// Mean shifts per access.
    pub fn shifts_per_access(&self) -> f64 {
        self.stats.mean_shift()
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} | {} cycles | {:.2} nJ | {} integrity errors",
            self.stats,
            self.latency.total_cycles(),
            self.energy.total_nj(),
            self.integrity_errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cycles_and_energy() {
        let r = SimReport::default();
        let text = r.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("nJ"));
    }

    #[test]
    fn shifts_per_access_delegates() {
        let mut r = SimReport::default();
        r.stats.record(6, false);
        r.stats.record(2, false);
        assert!((r.shifts_per_access() - 4.0).abs() < 1e-12);
    }
}
