//! Tiered anytime placement: answer now, keep improving later.
//!
//! The paper's quality/latency tradeoff is a spectrum — greedy
//! grouping answers in microseconds while OPT-style search keeps
//! finding better arrangements for as long as it is allowed to run.
//! This module productizes that spectrum as three named tiers:
//!
//! * **Tier 0 ([`Tier::Fast`])** — the greedy CSR fast path: freeze
//!   the graph once, run grouped chain growth, and keep the better of
//!   it and the naive identity order. Never worse than naive, by
//!   construction.
//! * **Tier 1 ([`Tier::Refined`])** — tier 0 refined by windowed
//!   [`LocalSearch`] under an explicit pass budget, so a caller's
//!   remaining deadline translates directly into refinement effort.
//! * **Tier 2 ([`Tier::Thorough`])** — the heavy portfolio: full local
//!   search, the [`Hybrid`] pipeline, simulated annealing, a
//!   KL-partition-guided ordering, and exact branch and bound on small
//!   graphs, racing in parallel with the winner picked by
//!   `(cost, roster position)`.
//! * **Tier 3 ([`Tier::Exact`])** — the provably optimal subset DP
//!   ([`crate::exact::optimal_placement`]) for graphs with at most
//!   [`EXACT_PLAN_LIMIT`] items. Callers that need the optimality
//!   guarantee must enforce the limit themselves (`dwm-serve` answers
//!   400); past it this tier degrades to the tier-2 portfolio.
//!
//! # Deadlines without clocks
//!
//! Serving needs tier selection to be a **pure function of the
//! request**: picking a tier from measured wall-clock would make
//! response bodies depend on machine load and thread count, breaking
//! the byte-determinism contract. [`plan`] therefore maps a
//! `(quality, deadline)` pair through the closed-form latency model
//! [`estimate_us`] — deliberately coarse, monotone in graph size, and
//! identical on every machine. Wall-clock is only ever *compared
//! against* the deadline afterwards (for deadline-miss metrics), never
//! used to choose work.
//!
//! Every tier is deterministic at any `DWM_THREADS`, so a cached
//! tier-2 result can transparently replace a tier-0 result for the
//! same workload — the background-upgrade machinery in `dwm-serve`
//! relies on exactly that.

use dwm_foundation::par;
use dwm_graph::{AccessGraph, CsrGraph};

use crate::algorithms::{
    GroupedChainGrowth, Hybrid, LocalSearch, PlacementAlgorithm, SimulatedAnnealing,
};
use crate::exact::optimal_placement;
use crate::exact_bb::branch_and_bound_placement;
use crate::partition::Partitioner;
use crate::placement::Placement;

/// Maximum local-search pass budget (matches [`LocalSearch`]'s
/// default); [`plan`] clamps here when the deadline is generous.
pub const MAX_PASSES: usize = 50;

/// Minimum useful local-search pass budget; below this, tier 1 is not
/// worth entering and [`plan`] falls back to tier 0.
pub const MIN_PASSES: usize = 2;

/// Window width tier 1 refines with (matches [`LocalSearch`]'s
/// default).
pub const TIER1_WINDOW: usize = 12;

/// Largest graph the tier-2 portfolio hands to exact branch and bound.
/// Deliberately well under [`crate::exact_bb::MAX_BB_ITEMS`]: the
/// portfolio races B&B against heuristics that are already near-optimal,
/// so its worst-case exponential tail must stay in the micro range.
pub const BB_PORTFOLIO_LIMIT: usize = 12;

/// Largest graph [`plan`] routes through the exact subset DP
/// ([`Tier::Exact`]). Deliberately below
/// [`crate::exact::MAX_EXACT_ITEMS`]: the serving path promises the DP
/// answers interactively, so the `O(2ⁿ·n)` table must stay in the
/// low-millisecond range.
pub const EXACT_PLAN_LIMIT: usize = 12;

/// One rung of the anytime ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Tier {
    /// Tier 0: greedy CSR fast path.
    Fast = 0,
    /// Tier 1: tier 0 refined by budgeted windowed local search.
    Refined = 1,
    /// Tier 2: the annealing / KL-partition / branch-and-bound
    /// portfolio.
    Thorough = 2,
    /// Tier 3: the provably optimal subset DP (graphs with at most
    /// [`EXACT_PLAN_LIMIT`] items; larger graphs degrade to tier 2).
    Exact = 3,
}

impl Tier {
    /// All tiers, cheapest first.
    pub const ALL: [Tier; 4] = [Tier::Fast, Tier::Refined, Tier::Thorough, Tier::Exact];

    /// The tier's numeric index (0, 1, 2) — the wire and metrics-label
    /// representation.
    pub fn index(self) -> u8 {
        self as u8
    }

    /// The tier for a numeric index.
    pub fn from_index(index: u64) -> Option<Tier> {
        match index {
            0 => Some(Tier::Fast),
            1 => Some(Tier::Refined),
            2 => Some(Tier::Thorough),
            3 => Some(Tier::Exact),
            _ => None,
        }
    }

    /// Stable human-readable label (`tier0` / `tier1` / `tier2` /
    /// `tier3`).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Fast => "tier0",
            Tier::Refined => "tier1",
            Tier::Thorough => "tier2",
            Tier::Exact => "tier3",
        }
    }
}

/// The caller's quality intent, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quality {
    /// Latency first: always the tier-0 fast path, never a background
    /// upgrade.
    Fast,
    /// The best foreground tier that fits the deadline (tier 1 when no
    /// deadline is given); no background work.
    Balanced,
    /// Like `balanced` in the foreground, plus a background tier-2
    /// upgrade of the cached entry.
    Best,
    /// The provable optimum via the subset DP; only admissible on
    /// graphs with at most [`EXACT_PLAN_LIMIT`] items.
    Exact,
}

impl Quality {
    /// Parses the wire string; returns `None` for unknown values.
    pub fn parse(s: &str) -> Option<Quality> {
        match s {
            "fast" => Some(Quality::Fast),
            "balanced" => Some(Quality::Balanced),
            "best" => Some(Quality::Best),
            "exact" => Some(Quality::Exact),
            _ => None,
        }
    }

    /// The wire string.
    pub fn name(self) -> &'static str {
        match self {
            Quality::Fast => "fast",
            Quality::Balanced => "balanced",
            Quality::Best => "best",
            Quality::Exact => "exact",
        }
    }
}

/// What one anytime solve produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnytimeOutcome {
    /// The arrangement.
    pub placement: Placement,
    /// Its shift cost on the solved graph.
    pub cost: u64,
    /// The tier that produced it.
    pub tier: Tier,
    /// Which portfolio member won (solver provenance, e.g.
    /// `"greedy-csr"`, `"windowed-ls"`, `"annealing"`).
    pub solver: &'static str,
}

/// The deterministic tiered solver. One instance per logical seed; the
/// seed only influences the stochastic tier-2 portfolio members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnytimeSolver {
    /// Seed for the stochastic portfolio members (annealing).
    pub seed: u64,
}

impl AnytimeSolver {
    /// A solver whose stochastic portfolio members use `seed`.
    pub fn new(seed: u64) -> Self {
        AnytimeSolver { seed }
    }

    /// Solves `graph` at `tier`. `passes` is the tier-1 local-search
    /// budget (ignored by tier 0; tier 2 always refines with
    /// [`MAX_PASSES`]).
    pub fn solve(&self, graph: &AccessGraph, tier: Tier, passes: usize) -> AnytimeOutcome {
        let csr = CsrGraph::freeze(graph);
        self.solve_frozen(graph, &csr, tier, passes)
    }

    /// [`solve`](Self::solve) against an already-frozen graph.
    pub fn solve_frozen(
        &self,
        graph: &AccessGraph,
        csr: &CsrGraph,
        tier: Tier,
        passes: usize,
    ) -> AnytimeOutcome {
        match tier {
            Tier::Fast => self.tier0(graph, csr),
            Tier::Refined => self.tier1(graph, csr, passes),
            Tier::Thorough => self.tier2(graph, csr),
            Tier::Exact => self.tier_exact(graph, csr),
        }
    }

    /// Greedy CSR fast path: grouped chain growth vs the naive
    /// identity, cheaper one wins (identity wins ties, preserving the
    /// never-worse-than-naive guarantee).
    fn tier0(&self, graph: &AccessGraph, csr: &CsrGraph) -> AnytimeOutcome {
        let identity = Placement::identity(graph.num_items());
        let naive = csr.arrangement_cost(identity.offsets());
        let greedy = GroupedChainGrowth.place(graph);
        let greedy_cost = csr.arrangement_cost(greedy.offsets());
        let (placement, cost) = if greedy_cost < naive {
            (greedy, greedy_cost)
        } else {
            (identity, naive)
        };
        AnytimeOutcome {
            placement,
            cost,
            tier: Tier::Fast,
            solver: "greedy-csr",
        }
    }

    /// Tier 0 refined by windowed local search under `passes`.
    fn tier1(&self, graph: &AccessGraph, csr: &CsrGraph, passes: usize) -> AnytimeOutcome {
        let mut out = self.tier0(graph, csr);
        let budget = passes.clamp(1, MAX_PASSES);
        LocalSearch::new(budget)
            .with_window(TIER1_WINDOW)
            .refine_frozen(csr, &mut out.placement);
        out.cost = csr.arrangement_cost(out.placement.offsets());
        out.tier = Tier::Refined;
        out.solver = "windowed-ls";
        out
    }

    /// The heavy portfolio. Every member is deterministic, candidates
    /// run in parallel, and the winner is `(cost, roster position)` —
    /// identical at any worker count. Full tier-1 leads the roster, so
    /// tier 2 can never be worse than tier 1 (and transitively never
    /// worse than naive).
    fn tier2(&self, graph: &AccessGraph, csr: &CsrGraph) -> AnytimeOutcome {
        let n = graph.num_items();
        let refiner = LocalSearch::new(MAX_PASSES);
        type Candidate<'a> = (&'static str, Box<dyn Fn() -> Placement + Sync + 'a>);
        let mut candidates: Vec<Candidate<'_>> = vec![
            (
                "windowed-ls",
                Box::new(|| self.tier1(graph, csr, MAX_PASSES).placement),
            ),
            ("hybrid", Box::new(|| Hybrid::default().place(graph))),
            (
                "annealing",
                Box::new(|| {
                    let start = self.tier0(graph, csr).placement;
                    let mut p = SimulatedAnnealing::new(self.seed).place_frozen(csr, start);
                    refiner.refine_frozen(csr, &mut p);
                    p
                }),
            ),
        ];
        if n >= 2 {
            candidates.push((
                "kl-partition",
                Box::new(|| {
                    let mut p = kl_guided_order(graph, n);
                    refiner.refine_frozen(csr, &mut p);
                    p
                }),
            ));
        }
        if (2..=BB_PORTFOLIO_LIMIT).contains(&n) {
            candidates.push((
                "branch-and-bound",
                Box::new(|| {
                    branch_and_bound_placement(graph)
                        .expect("n is within the branch-and-bound limit")
                        .0
                }),
            ));
        }
        let scored = par::par_map(&candidates, |(solver, candidate)| {
            let p = candidate();
            let cost = csr.arrangement_cost(p.offsets());
            (cost, *solver, p)
        });
        let (cost, solver, placement) = scored
            .into_iter()
            .min_by_key(|(cost, _, _)| *cost)
            .expect("roster is never empty");
        AnytimeOutcome {
            placement,
            cost,
            tier: Tier::Thorough,
            solver,
        }
    }

    /// The subset DP, provably optimal up to [`EXACT_PLAN_LIMIT`]
    /// items. Larger graphs degrade to the tier-2 portfolio (still
    /// labeled tier 3, with the winning member's solver name) — a
    /// defensive total fallback; callers that promise optimality
    /// enforce the limit up front.
    fn tier_exact(&self, graph: &AccessGraph, csr: &CsrGraph) -> AnytimeOutcome {
        if graph.num_items() <= EXACT_PLAN_LIMIT {
            let (placement, _) = optimal_placement(graph)
                .expect("EXACT_PLAN_LIMIT is below the subset-DP item limit");
            let cost = csr.arrangement_cost(placement.offsets());
            return AnytimeOutcome {
                placement,
                cost,
                tier: Tier::Exact,
                solver: "subset-dp",
            };
        }
        let mut out = self.tier2(graph, csr);
        out.tier = Tier::Exact;
        out
    }
}

/// Kernighan–Lin-guided ordering: partition into capacity-8 clusters
/// (greedy agglomeration + KL swap refinement), then lay the clusters
/// out contiguously in part order. Heavy edges end up inside small
/// contiguous runs, which the windowed refiner then polishes.
fn kl_guided_order(graph: &AccessGraph, n: usize) -> Placement {
    const PART_CAPACITY: usize = 8;
    let parts = n.div_ceil(PART_CAPACITY);
    match Partitioner::new(parts, PART_CAPACITY).partition(graph) {
        Ok(partition) => Placement::from_order(
            (0..partition.num_parts()).flat_map(|p| partition.part(p).iter().copied()),
        ),
        Err(_) => Placement::identity(n),
    }
}

/// Closed-form latency model (microseconds) for [`plan`]: coarse,
/// monotone in graph size, and — critically — identical on every
/// machine and at every thread count. This is a *planning* model, not
/// a measurement; the deadline-miss metrics compare real wall-clock
/// against the deadline after the fact.
pub fn estimate_us(tier: Tier, items: usize, edges: usize) -> u64 {
    let n = items as u64;
    let m = edges as u64;
    // Freeze + greedy grouping: linear in graph size.
    let fast = 40_u64.saturating_add((n.saturating_add(m)) / 4);
    match tier {
        Tier::Fast => fast,
        // Entering tier 1 at all costs at least MIN_PASSES passes.
        Tier::Refined => fast.saturating_add(pass_cost_us(items, edges).saturating_mul(2)),
        // Annealing dominates tier 2 (fixed iteration budget) plus the
        // full refinement ladder.
        Tier::Thorough => fast
            .saturating_add(pass_cost_us(items, edges).saturating_mul(MAX_PASSES as u64))
            .saturating_add(3_000)
            .saturating_add(n.saturating_mul(n) / 8),
        // The subset DP fills 2ⁿ states with an O(n) transition each;
        // the shift saturates past 63 bits, so oversized graphs model
        // as "never fits any deadline".
        Tier::Exact => {
            let states = match u32::try_from(n) {
                Ok(bits) if bits < 64 => 1u64 << bits,
                _ => u64::MAX,
            };
            fast.saturating_add(states.saturating_mul(n.max(1)) / 16)
        }
    }
}

/// Modeled cost of one windowed local-search pass (microseconds),
/// `>= 1` so budget division is always defined.
pub fn pass_cost_us(items: usize, edges: usize) -> u64 {
    let n = items as u64;
    let m = edges as u64;
    (n.saturating_mul(TIER1_WINDOW as u64).saturating_add(m) / 32).max(1)
}

/// What the foreground should run and whether to schedule background
/// work; produced by [`plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPlan {
    /// The tier to answer with.
    pub tier: Tier,
    /// Local-search pass budget when `tier` is [`Tier::Refined`]
    /// (0 otherwise).
    pub passes: usize,
    /// Whether a background tier-2 upgrade should be enqueued.
    pub upgrade: bool,
}

/// Maps the caller's `(quality, deadline)` to a foreground tier and
/// pass budget — a pure function of the request and graph size, so
/// identical requests plan identically on every machine.
///
/// Rules:
///
/// * `fast` → tier 0, no upgrade, regardless of deadline.
/// * `exact` → tier 3, no upgrade, regardless of deadline — exactness
///   cannot be traded away, so an unmeetable deadline is the caller's
///   admission-control problem (`dwm-serve` answers 503), not a reason
///   to degrade.
/// * `balanced` / `best` → tier 1 when [`estimate_us`] says it fits the
///   deadline (always, when no deadline is given), tier 0 otherwise.
///   The tier-1 pass budget is the modeled remaining budget divided by
///   [`pass_cost_us`], clamped to `[`[`MIN_PASSES`]`, `[`MAX_PASSES`]`]`.
/// * `best` additionally requests a background tier-2 upgrade.
/// * Tier 0 is the floor: an unmeetable deadline (`deadline_us = 0`)
///   still gets the fast-path answer, and the miss is visible in the
///   deadline metrics, not in the body.
pub fn plan(quality: Quality, deadline_us: Option<u64>, items: usize, edges: usize) -> TierPlan {
    let upgrade = quality == Quality::Best;
    if quality == Quality::Fast {
        return TierPlan {
            tier: Tier::Fast,
            passes: 0,
            upgrade: false,
        };
    }
    if quality == Quality::Exact {
        return TierPlan {
            tier: Tier::Exact,
            passes: 0,
            upgrade: false,
        };
    }
    match deadline_us {
        None => TierPlan {
            tier: Tier::Refined,
            passes: MAX_PASSES,
            upgrade,
        },
        Some(deadline) if estimate_us(Tier::Refined, items, edges) <= deadline => {
            let remaining = deadline.saturating_sub(estimate_us(Tier::Fast, items, edges));
            let passes = usize::try_from(remaining / pass_cost_us(items, edges))
                .unwrap_or(MAX_PASSES)
                .clamp(MIN_PASSES, MAX_PASSES);
            TierPlan {
                tier: Tier::Refined,
                passes,
                upgrade,
            }
        }
        Some(_) => TierPlan {
            tier: Tier::Fast,
            passes: 0,
            upgrade,
        },
    }
}

/// An anytime tier wrapped as a [`PlacementAlgorithm`], so tier choice
/// can flow anywhere an algorithm can — session re-placement picks its
/// candidate solver this way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnytimePlacement {
    /// The tier to solve at.
    pub tier: Tier,
    /// Seed for the stochastic tier-2 members.
    pub seed: u64,
    /// Tier-1 pass budget.
    pub passes: usize,
}

impl PlacementAlgorithm for AnytimePlacement {
    fn name(&self) -> String {
        format!("anytime-{}", self.tier.label())
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        AnytimeSolver::new(self.seed)
            .solve(graph, self.tier, self.passes)
            .placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{
        interleaved_cluster_graph, kernel_graph, two_cluster_graph,
    };
    use dwm_graph::generators::{clustered_graph, random_graph};

    fn graphs() -> Vec<AccessGraph> {
        vec![
            two_cluster_graph(),
            interleaved_cluster_graph(),
            kernel_graph(),
            random_graph(24, 0.3, 6, 1),
            clustered_graph(30, 5, 0.8, 0.1, 8, 2),
            AccessGraph::with_items(0),
            AccessGraph::with_items(1),
            AccessGraph::with_items(3),
        ]
    }

    #[test]
    fn every_tier_is_never_worse_than_naive() {
        for g in graphs() {
            let naive = g.arrangement_cost(Placement::identity(g.num_items()).offsets());
            for tier in Tier::ALL {
                let out = AnytimeSolver::new(7).solve(&g, tier, MAX_PASSES);
                assert!(
                    out.cost <= naive,
                    "{} cost {} > naive {naive}",
                    tier.label(),
                    out.cost
                );
                assert_eq!(out.cost, g.arrangement_cost(out.placement.offsets()));
                assert_eq!(out.tier, tier);
            }
        }
    }

    #[test]
    fn tiers_are_monotone_in_quality() {
        for g in graphs() {
            let solver = AnytimeSolver::new(7);
            let t0 = solver.solve(&g, Tier::Fast, 0);
            let t1 = solver.solve(&g, Tier::Refined, MAX_PASSES);
            let t2 = solver.solve(&g, Tier::Thorough, MAX_PASSES);
            assert!(t1.cost <= t0.cost, "tier1 {} > tier0 {}", t1.cost, t0.cost);
            assert!(t2.cost <= t1.cost, "tier2 {} > tier1 {}", t2.cost, t1.cost);
        }
    }

    #[test]
    fn tier2_strictly_beats_tier0_on_interleaved_clusters() {
        // The workload the serve upgrade test leans on: the greedy fast
        // path must leave headroom the portfolio then claims.
        let g = interleaved_cluster_graph();
        let solver = AnytimeSolver::new(7);
        let t0 = solver.solve(&g, Tier::Fast, 0);
        let t2 = solver.solve(&g, Tier::Thorough, 0);
        assert!(
            t2.cost < t0.cost,
            "portfolio {} must strictly beat greedy {}",
            t2.cost,
            t0.cost
        );
    }

    #[test]
    fn every_tier_is_deterministic_across_thread_counts() {
        use dwm_foundation::par::override_threads;
        let _l = crate::algorithms::test_support::PAR_TEST_LOCK
            .lock()
            .unwrap();
        let g = clustered_graph(30, 5, 0.8, 0.1, 8, 2);
        let solver = AnytimeSolver::new(3);
        for tier in Tier::ALL {
            let seq = {
                let _g = override_threads(1);
                solver.solve(&g, tier, 9)
            };
            let par = {
                let _g = override_threads(8);
                solver.solve(&g, tier, 9)
            };
            assert_eq!(seq, par, "{} differs across thread counts", tier.label());
        }
    }

    #[test]
    fn tier1_passes_trade_quality_for_budget() {
        let g = clustered_graph(40, 5, 0.8, 0.1, 8, 4);
        let solver = AnytimeSolver::new(7);
        let starved = solver.solve(&g, Tier::Refined, 1);
        let generous = solver.solve(&g, Tier::Refined, MAX_PASSES);
        assert!(generous.cost <= starved.cost);
    }

    #[test]
    fn plan_quality_fast_is_always_tier0() {
        for deadline in [None, Some(0), Some(u64::MAX)] {
            let p = plan(Quality::Fast, deadline, 100, 400);
            assert_eq!(p.tier, Tier::Fast);
            assert!(!p.upgrade);
        }
    }

    #[test]
    fn plan_deadline_zero_floors_at_tier0() {
        for quality in [Quality::Balanced, Quality::Best] {
            let p = plan(quality, Some(0), 100, 400);
            assert_eq!(p.tier, Tier::Fast);
            assert_eq!(p.upgrade, quality == Quality::Best);
        }
    }

    #[test]
    fn plan_generous_deadline_maxes_tier1_budget() {
        let p = plan(Quality::Balanced, Some(u64::MAX), 100, 400);
        assert_eq!(p.tier, Tier::Refined);
        assert_eq!(p.passes, MAX_PASSES);
        assert!(!p.upgrade);
        let p = plan(Quality::Best, None, 100, 400);
        assert_eq!(p.tier, Tier::Refined);
        assert_eq!(p.passes, MAX_PASSES);
        assert!(p.upgrade);
    }

    #[test]
    fn plan_mid_deadline_budgets_passes() {
        let (n, m) = (200, 800);
        let deadline = estimate_us(Tier::Refined, n, m) + 5 * pass_cost_us(n, m);
        let p = plan(Quality::Balanced, Some(deadline), n, m);
        assert_eq!(p.tier, Tier::Refined);
        assert!(
            (MIN_PASSES..=MAX_PASSES).contains(&p.passes),
            "passes {} out of range",
            p.passes
        );
        // Tighter deadline, no more passes.
        let q = plan(
            Quality::Balanced,
            Some(estimate_us(Tier::Refined, n, m)),
            n,
            m,
        );
        assert!(q.passes <= p.passes);
    }

    #[test]
    fn estimate_is_monotone_in_tier_and_size() {
        assert!(estimate_us(Tier::Fast, 64, 256) <= estimate_us(Tier::Refined, 64, 256));
        assert!(estimate_us(Tier::Refined, 64, 256) <= estimate_us(Tier::Thorough, 64, 256));
        assert!(estimate_us(Tier::Fast, 64, 256) <= estimate_us(Tier::Fast, 128, 512));
        // No overflow panic at absurd sizes.
        let _ = estimate_us(Tier::Thorough, usize::MAX, usize::MAX);
    }

    #[test]
    fn quality_and_tier_wire_forms_round_trip() {
        for q in [
            Quality::Fast,
            Quality::Balanced,
            Quality::Best,
            Quality::Exact,
        ] {
            assert_eq!(Quality::parse(q.name()), Some(q));
        }
        assert_eq!(Quality::parse("turbo"), None);
        assert_eq!(Quality::parse(""), None);
        for t in Tier::ALL {
            assert_eq!(Tier::from_index(u64::from(t.index())), Some(t));
        }
        assert_eq!(Tier::from_index(4), None);
    }

    #[test]
    fn exact_tier_is_optimal_within_the_plan_limit() {
        let solver = AnytimeSolver::new(7);
        for g in graphs() {
            if g.num_items() > EXACT_PLAN_LIMIT {
                continue;
            }
            let out = solver.solve(&g, Tier::Exact, 0);
            assert_eq!(out.solver, "subset-dp");
            assert_eq!(out.tier, Tier::Exact);
            let (_, opt) = crate::exact::optimal_placement(&g).unwrap();
            assert_eq!(out.cost, opt, "exact tier must hit the DP optimum");
            // Never above any heuristic tier, by definition.
            assert!(out.cost <= solver.solve(&g, Tier::Thorough, 0).cost);
        }
    }

    #[test]
    fn exact_tier_degrades_to_the_portfolio_past_the_limit() {
        let g = random_graph(24, 0.3, 6, 1);
        let solver = AnytimeSolver::new(7);
        let exact = solver.solve(&g, Tier::Exact, 0);
        let thorough = solver.solve(&g, Tier::Thorough, 0);
        assert_eq!(exact.tier, Tier::Exact);
        assert_eq!(exact.cost, thorough.cost);
        assert_ne!(exact.solver, "subset-dp");
    }

    #[test]
    fn plan_exact_ignores_deadlines() {
        for deadline in [None, Some(0), Some(u64::MAX)] {
            let p = plan(Quality::Exact, deadline, 10, 30);
            assert_eq!(p.tier, Tier::Exact);
            assert_eq!(p.passes, 0);
            assert!(!p.upgrade);
        }
    }

    #[test]
    fn exact_estimate_blows_past_every_deadline_on_big_graphs() {
        // Monotone in size and astronomically large past the limit, so
        // admission control can rely on it.
        assert!(
            estimate_us(Tier::Exact, EXACT_PLAN_LIMIT, 40)
                <= estimate_us(Tier::Exact, EXACT_PLAN_LIMIT + 1, 40)
        );
        assert!(estimate_us(Tier::Exact, 64, 100) > 1_000_000_000);
        let _ = estimate_us(Tier::Exact, usize::MAX, usize::MAX);
    }

    #[test]
    fn anytime_placement_adapter_matches_solver() {
        let g = kernel_graph();
        let adapter = AnytimePlacement {
            tier: Tier::Refined,
            seed: 5,
            passes: 10,
        };
        assert_eq!(adapter.name(), "anytime-tier1");
        assert_eq!(
            adapter.place(&g),
            AnytimeSolver::new(5).solve(&g, Tier::Refined, 10).placement
        );
    }
}
