//! Quickstart: place a tiny workload on a DWM tape and count shifts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dwm_placement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: the FFT kernel's real access sequence.
    let trace = Kernel::Fft { n: 32, block: 1 }.trace();
    println!("workload: {} — {}", trace.label(), trace.stats());

    // 2. Its access graph: edge weight = adjacent co-access count.
    let graph = AccessGraph::from_trace(&trace);
    println!(
        "access graph: {} items, {} edges, total weight {}",
        graph.num_items(),
        graph.num_edges(),
        graph.total_weight()
    );

    // 3. Compare the naive first-touch placement with the proposed
    //    hybrid pipeline under the single-port shift model.
    let model = SinglePortCost::new();
    let naive = Placement::identity(graph.num_items());
    let tuned = Hybrid::default().place(&graph);
    let naive_shifts = model.trace_cost(&naive, &trace).stats.shifts;
    let tuned_shifts = model.trace_cost(&tuned, &trace).stats.shifts;
    println!("naive placement : {naive_shifts} shifts");
    println!(
        "hybrid placement: {tuned_shifts} shifts ({:.1}% fewer)",
        100.0 * (naive_shifts - tuned_shifts) as f64 / naive_shifts as f64
    );

    // 4. Verify on the bit-level simulator: same count, data intact.
    let config = DeviceConfig::builder()
        .domains_per_track(graph.num_items())
        .tracks_per_dbc(32)
        .build()?;
    let mut sim = SpmSimulator::new(&config, &tuned)?;
    let report = sim.run(&trace)?;
    assert_eq!(report.stats.shifts, tuned_shifts);
    assert_eq!(report.integrity_errors, 0);
    println!("simulator agrees: {report}");
    Ok(())
}
