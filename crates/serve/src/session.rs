//! Streaming placement sessions: stateful, per-tenant access ingestion
//! with phase-triggered re-placement.
//!
//! The batch endpoints (`/solve`, `/evaluate`) see a workload once, in
//! full. A *session* instead ingests a tenant's access stream in
//! chunks and maintains, incrementally:
//!
//! * the weighted access graph, as a [`DeltaGraph`] — a mutable edge
//!   overlay on a frozen CSR base, refrozen once the overlay passes a
//!   configured threshold;
//! * a streaming [`PhaseDetector`] over the access distribution, with
//!   consecutive-window confirmation as hysteresis against noise;
//! * the live placement. On a *confirmed* phase change the session
//!   asks [`OnlinePlacer::decide`] whether re-placing the window's
//!   graph beats keeping the incumbent layout, billing
//!   `items_moved × migration_shifts_per_item` against the projected
//!   saving — the same benefit-vs-migration rule as the offline F10
//!   experiment, applied online.
//!
//! # Determinism
//!
//! A session's observable state (placement, graph, counters, version)
//! is a pure function of the *concatenated* access stream — chunk
//! boundaries never matter, because every decision (phase detection,
//! re-placement, refreeze) happens at fixed `window`-access boundaries
//! of the stream, not at ingest-call boundaries. Wall-clock time
//! affects only *availability* (TTL expiry of idle sessions), never
//! response bodies. `tests/serve.rs` pins both properties over a real
//! socket at `DWM_THREADS=1` and `8`.
//!
//! # Accounting
//!
//! Sessions track three shift totals, all in steady-state tape shifts
//! between consecutive accesses:
//!
//! * `access_shifts` — `Σ |π(cur) − π(prev)|` under the live placement
//!   (including migrations' placement switches);
//! * `naive_shifts` — the same sum under the never-migrating identity
//!   placement over first-appearance dense ids (the order-of-appearance
//!   baseline used throughout the workspace);
//! * `migration_shifts` — the accumulated migration bills.
//!
//! `net_amortized_saved = naive − (access + migration)` is the
//! session's running answer to "was adapting worth it", and what the
//! F11 session-drift experiment sweeps.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dwm_core::anytime::{self, AnytimePlacement, Quality};
use dwm_core::online::{OnlineConfig, OnlinePlacer};
use dwm_core::Placement;
use dwm_device::{PortLayout, Topology, TrackTopology};
use dwm_graph::{AccessGraph, DeltaGraph, Fingerprint};
use dwm_trace::analysis::PhaseDetector;

/// Seed the tiered re-placement solver uses for its stochastic tier-2
/// members — fixed, so session state stays a pure function of the
/// stream.
const REPLACEMENT_SEED: u64 = 1;

/// Tuning parameters of one session, fixed at creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Decision window in accesses: phase detection, re-placement, and
    /// refreeze checks all happen at multiples of this many accesses.
    pub window: usize,
    /// Total-variation distance between consecutive windows' access
    /// distributions above which a window counts as divergent.
    pub phase_threshold: f64,
    /// Consecutive divergent windows required before a phase change is
    /// confirmed (and a re-placement considered).
    pub confirm_windows: usize,
    /// Hysteresis factor of the re-placement rule: the projected
    /// saving must exceed `hysteresis × migration bill`.
    pub hysteresis: f64,
    /// Shift cost charged per migrated item.
    pub migration_shifts_per_item: u64,
    /// Windows the projected saving is assumed to persist for.
    pub horizon_windows: u64,
    /// Refreeze the [`DeltaGraph`] once its overlay holds this many
    /// (directed half-)edges; 0 disables refreezing.
    pub refreeze_edges: usize,
    /// Tiered re-placement quality. `None` keeps the legacy hybrid
    /// candidate solver (byte-identical to pre-tier sessions); `Some`
    /// routes candidate solves through the anytime portfolio at the
    /// tier [`anytime::plan`] picks from this quality and the
    /// hysteresis-adjusted [`replace_deadline_us`](Self::replace_deadline_us).
    pub quality: Option<Quality>,
    /// Latency budget for one re-placement candidate solve, in
    /// microseconds. The effective budget is this divided by the
    /// session's `hysteresis`: the more conservative the adoption bar,
    /// the less compute is spent on candidates that will likely be
    /// suppressed. `None` = no deadline (tier 1 at full passes for
    /// `balanced`/`best`).
    pub replace_deadline_us: Option<u64>,
    /// Track topology the session's tape is accounted (and its
    /// re-placement rule costed) under. The default
    /// [`Topology::linear`] is byte-identical to pre-topology sessions.
    pub topology: Topology,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            window: 512,
            phase_threshold: 0.5,
            confirm_windows: 1,
            hysteresis: 1.0,
            migration_shifts_per_item: 64,
            horizon_windows: 4,
            refreeze_edges: 1024,
            quality: None,
            replace_deadline_us: None,
            topology: Topology::linear(),
        }
    }
}

impl SessionConfig {
    /// Checks the invariants the constructors assert, as a `Result`
    /// for protocol-level validation (400, not a panic).
    ///
    /// # Errors
    ///
    /// A one-line description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("\"window\" must be at least 1".into());
        }
        if self.confirm_windows == 0 {
            return Err("\"confirm_windows\" must be at least 1".into());
        }
        if !self.phase_threshold.is_finite() || self.phase_threshold < 0.0 {
            return Err("\"phase_threshold\" must be a finite nonnegative number".into());
        }
        if !self.hysteresis.is_finite() || self.hysteresis < 0.0 {
            return Err("\"hysteresis\" must be a finite nonnegative number".into());
        }
        Ok(())
    }

    fn online_config(&self) -> OnlineConfig {
        OnlineConfig {
            window: self.window,
            migration_shifts_per_item: self.migration_shifts_per_item,
            hysteresis: self.hysteresis,
            horizon_windows: self.horizon_windows,
            topology: self.topology,
        }
    }
}

/// What one [`SessionState::ingest`] call did — deltas, not totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Accesses ingested by this call.
    pub accepted: u64,
    /// Items seen for the first time.
    pub new_items: u64,
    /// Decision windows completed.
    pub windows_completed: u64,
    /// Confirmed phase changes.
    pub phase_changes: u64,
    /// Re-placements adopted.
    pub replacements: u64,
    /// Re-placements considered but suppressed by the migration rule.
    pub suppressed: u64,
    /// Graph refreezes performed.
    pub refreezes: u64,
    /// Shifts served under the live placement.
    pub access_shifts: u64,
    /// Shifts the identity baseline would have served.
    pub naive_shifts: u64,
    /// Migration shifts billed.
    pub migration_shifts: u64,
    /// Items moved across adopted re-placements.
    pub items_moved: u64,
}

/// Lifetime totals of a session (the sums of its ingest reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionTotals {
    /// Accesses ingested.
    pub accesses: u64,
    /// Decision windows completed.
    pub windows: u64,
    /// Confirmed phase changes.
    pub phase_changes: u64,
    /// Re-placements adopted.
    pub replacements: u64,
    /// Re-placements suppressed.
    pub suppressed: u64,
    /// Shifts served under the live placement.
    pub access_shifts: u64,
    /// Shifts under the identity baseline.
    pub naive_shifts: u64,
    /// Migration shifts billed.
    pub migration_shifts: u64,
    /// Items moved across adopted re-placements.
    pub items_moved: u64,
}

impl SessionTotals {
    fn absorb(&mut self, r: &IngestReport) {
        self.accesses += r.accepted;
        self.windows += r.windows_completed;
        self.phase_changes += r.phase_changes;
        self.replacements += r.replacements;
        self.suppressed += r.suppressed;
        self.access_shifts += r.access_shifts;
        self.naive_shifts += r.naive_shifts;
        self.migration_shifts += r.migration_shifts;
        self.items_moved += r.items_moved;
    }
}

/// One tenant's streaming state; see the module docs.
///
/// # Example
///
/// ```
/// use dwm_serve::session::{SessionConfig, SessionState};
///
/// let mut s = SessionState::new(SessionConfig {
///     window: 100,
///     migration_shifts_per_item: 2,
///     ..SessionConfig::default()
/// });
/// // Phase 1 then phase 2, in arbitrary chunks.
/// let ids: Vec<u32> = (0..600).map(|i| [40, 90][i % 2]).collect();
/// for chunk in ids.chunks(37) {
///     s.ingest(chunk);
/// }
/// let ids2: Vec<u32> = (0..600).map(|i| [7, 512][i % 2]).collect();
/// s.ingest(&ids2);
/// assert_eq!(s.totals().accesses, 1200);
/// assert_eq!(s.num_items(), 4); // raw ids are remapped densely
/// ```
pub struct SessionState {
    config: SessionConfig,
    /// Single access port at offset 0 — the tape model every session
    /// accounts against (the topology supplies the distance metric).
    ports: PortLayout,
    placer: OnlinePlacer,
    graph: DeltaGraph,
    detector: PhaseDetector,
    /// Raw (wire) item id → dense session-local id.
    remap: HashMap<u32, u32>,
    /// Dense id → raw id, in first-appearance order.
    raw_ids: Vec<u32>,
    /// Live placement: dense item id → tape offset. Always a
    /// permutation: it starts empty, grows by appending the next
    /// offset at the tail, and is only ever replaced wholesale by a
    /// solver [`Placement`] (a validated bijection).
    placement: Vec<usize>,
    /// Previous access's dense id; carries across ingest calls so
    /// chunk boundaries cost exactly what one big chunk costs.
    last_item: Option<usize>,
    /// Accesses of the current (incomplete) decision window.
    window_buf: Vec<usize>,
    placement_version: u64,
    totals: SessionTotals,
}

impl SessionState {
    /// A fresh session.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid ([`SessionConfig::validate`] —
    /// the daemon validates before constructing).
    pub fn new(config: SessionConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid session config: {e}");
        }
        SessionState {
            ports: PortLayout::single(),
            placer: OnlinePlacer::new(config.online_config()),
            graph: DeltaGraph::new(0),
            detector: PhaseDetector::new(config.window, config.phase_threshold)
                .with_confirm(config.confirm_windows),
            remap: HashMap::new(),
            raw_ids: Vec::new(),
            placement: Vec::new(),
            last_item: None,
            window_buf: Vec::new(),
            placement_version: 0,
            totals: SessionTotals::default(),
            config,
        }
    }

    /// The configuration fixed at creation.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Distinct items seen so far.
    pub fn num_items(&self) -> usize {
        self.raw_ids.len()
    }

    /// Lifetime totals.
    pub fn totals(&self) -> &SessionTotals {
        &self.totals
    }

    /// Times the placement changed (0 = still the appearance-order
    /// identity).
    pub fn placement_version(&self) -> u64 {
        self.placement_version
    }

    /// Graph refreezes performed so far.
    pub fn refreezes(&self) -> u64 {
        self.graph.refreezes()
    }

    /// The incrementally maintained access graph.
    pub fn graph(&self) -> &DeltaGraph {
        &self.graph
    }

    /// The live placement: dense item id → tape offset.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// Raw wire ids in first-appearance (= dense id) order.
    pub fn raw_ids(&self) -> &[u32] {
        &self.raw_ids
    }

    /// Arrangement cost of the live placement on the full graph.
    pub fn current_cost(&self) -> u64 {
        self.graph.arrangement_cost(&self.placement)
    }

    /// Arrangement cost of the identity baseline on the full graph.
    pub fn naive_cost(&self) -> u64 {
        let identity: Vec<usize> = (0..self.num_items()).collect();
        self.graph.arrangement_cost(&identity)
    }

    /// Canonical fingerprint of the session's access graph, folded with
    /// the session topology (the identity for linear) so the same
    /// stream solved for different geometries never shares an identity.
    pub fn fingerprint(&self) -> Fingerprint {
        dwm_graph::fingerprint_retag(self.graph.fingerprint(), &self.config.topology.canonical())
    }

    /// `naive − (access + migration)` shifts: what adapting has saved
    /// (negative when migrations have not paid off yet).
    pub fn net_amortized_saved(&self) -> i64 {
        self.totals.naive_shifts as i64
            - (self.totals.access_shifts + self.totals.migration_shifts) as i64
    }

    /// Ingests one chunk of raw item ids, advancing the graph, the
    /// phase detector, and — at completed decision windows — the
    /// re-placement and refreeze machinery. Returns what this call
    /// changed; totals accumulate on the session.
    pub fn ingest(&mut self, ids: &[u32]) -> IngestReport {
        let mut report = IngestReport::default();
        for &raw in ids {
            let dense = self.dense_id(raw, &mut report);
            self.graph.record_access(dense);
            if let Some(prev) = self.last_item {
                if self.config.topology.is_linear() {
                    // Fast path, byte-identical to pre-topology sessions.
                    report.access_shifts +=
                        self.placement[dense].abs_diff(self.placement[prev]) as u64;
                    report.naive_shifts += dense.abs_diff(prev) as u64;
                } else {
                    // The track length a session's topology sees is the
                    // item count so far — a pure function of the stream,
                    // so chunk invariance is preserved.
                    let len = self.placement.len();
                    report.access_shifts += self.config.topology.shift_distance(
                        &self.ports,
                        len,
                        self.placement[prev],
                        self.placement[dense],
                    );
                    report.naive_shifts +=
                        self.config
                            .topology
                            .shift_distance(&self.ports, len, prev, dense);
                }
                if prev != dense {
                    self.graph.add_weight(prev, dense, 1);
                }
            }
            self.last_item = Some(dense);

            // The detector and the window buffer advance in lockstep,
            // so a confirmed boundary can only surface when the buffer
            // holds exactly one full window.
            let boundary = self.detector.push(dense as u32);
            self.window_buf.push(dense);
            if self.window_buf.len() == self.config.window {
                report.windows_completed += 1;
                if boundary.is_some() {
                    report.phase_changes += 1;
                    self.consider_replacement(&mut report);
                }
                self.window_buf.clear();
                if self.graph.maybe_refreeze(self.config.refreeze_edges) {
                    report.refreezes += 1;
                }
            }
            report.accepted += 1;
        }
        self.totals.absorb(&report);
        report
    }

    /// Looks up or assigns the dense id of a raw wire id. New items
    /// join the graph isolated and the placement at the tail offset —
    /// both no-ops for existing state, so responses stay deterministic.
    fn dense_id(&mut self, raw: u32, report: &mut IngestReport) -> usize {
        if let Some(&d) = self.remap.get(&raw) {
            return d as usize;
        }
        let dense = self.raw_ids.len();
        self.remap.insert(raw, dense as u32);
        self.raw_ids.push(raw);
        self.graph.ensure_items(dense + 1);
        self.placement.push(dense);
        report.new_items += 1;
        dense
    }

    /// Runs the benefit-vs-migration rule on the just-completed
    /// window's graph (the same construction as
    /// [`dwm_core::online::window_profiles`], over the current item
    /// count) and adopts or suppresses the candidate.
    fn consider_replacement(&mut self, report: &mut IngestReport) {
        let n = self.placement.len();
        let mut window_graph = AccessGraph::with_items(n);
        for pair in self.window_buf.windows(2) {
            let (u, v) = (pair[0], pair[1]);
            if u != v {
                window_graph.add_weight(u, v, 1);
            }
        }
        for &i in &self.window_buf {
            window_graph.set_frequency(i, window_graph.frequency(i) + 1);
        }
        let placement = Placement::from_offsets(self.placement.clone())
            .expect("session placement is a permutation by construction");
        let decision = match self.replacement_solver(n, window_graph.num_edges()) {
            Some(solver) => self.placer.decide_with(&placement, &window_graph, &solver),
            None => self.placer.decide(&placement, &window_graph),
        };
        if decision.adapt {
            report.replacements += 1;
            report.migration_shifts += decision.bill;
            report.items_moved += decision.items_moved;
            self.placement = decision.candidate.offsets().to_vec();
            self.placement_version += 1;
        } else {
            report.suppressed += 1;
        }
    }

    /// The tiered candidate solver for this session's re-placements,
    /// or `None` for the legacy hybrid default. Tier choice runs the
    /// same [`anytime::plan`] budget logic as `/solve`, against the
    /// hysteresis-adjusted deadline: `replace_deadline_us / hysteresis`
    /// (a hysteresis of 0 — adopt anything — keeps the raw deadline).
    /// A pure function of the config and graph size, so chunk
    /// boundaries and wall-clock never influence the candidate.
    fn replacement_solver(&self, items: usize, edges: usize) -> Option<AnytimePlacement> {
        let quality = self.config.quality?;
        let deadline = self.config.replace_deadline_us.map(|d| {
            if self.config.hysteresis > 0.0 {
                (d as f64 / self.config.hysteresis) as u64
            } else {
                d
            }
        });
        let plan = anytime::plan(quality, deadline, items, edges);
        Some(AnytimePlacement {
            tier: plan.tier,
            seed: REPLACEMENT_SEED,
            passes: plan.passes,
        })
    }
}

const SHARDS: usize = 8;

struct Entry {
    state: Arc<Mutex<SessionState>>,
    last_used: Instant,
}

/// Aggregate counters of a [`SessionTable`], read by `/stats` and the
/// `/metrics` scrape-time callbacks — one source of truth for both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionTableStats {
    /// Sessions currently resident (post TTL sweep).
    pub active: u64,
    /// Session budget (0 = unlimited).
    pub capacity: u64,
    /// Sessions ever created.
    pub created: u64,
    /// Sessions closed by DELETE.
    pub closed: u64,
    /// Sessions dropped by TTL expiry.
    pub expired: u64,
    /// Sessions evicted to stay within capacity.
    pub evicted: u64,
    /// Accesses ingested across all sessions.
    pub accesses: u64,
    /// Decision windows completed across all sessions.
    pub windows: u64,
    /// Confirmed phase changes across all sessions.
    pub phase_changes: u64,
    /// Re-placements adopted across all sessions.
    pub replacements: u64,
    /// Re-placements suppressed across all sessions.
    pub suppressed: u64,
    /// Graph refreezes across all sessions.
    pub refreezes: u64,
    /// Access shifts served across all sessions.
    pub access_shifts: u64,
    /// Identity-baseline shifts across all sessions.
    pub naive_shifts: u64,
    /// Migration shifts billed across all sessions.
    pub migration_shifts: u64,
}

/// The daemon's session registry: sharded like the
/// [`crate::cache::SolveCache`], with LRU eviction against a capacity
/// budget and lazy TTL expiry of idle sessions.
///
/// Entries hold `Arc<Mutex<SessionState>>`, so a shard lock is only
/// held for the lookup — long ingests serialize per session, not per
/// shard. Wall-clock time decides only *whether* a session still
/// exists, never what a live session answers.
pub struct SessionTable {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    capacity: usize,
    ttl: Duration,
    next_id: AtomicU64,
    created: AtomicU64,
    closed: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
    accesses: AtomicU64,
    windows: AtomicU64,
    phase_changes: AtomicU64,
    replacements: AtomicU64,
    suppressed: AtomicU64,
    refreezes: AtomicU64,
    access_shifts: AtomicU64,
    naive_shifts: AtomicU64,
    migration_shifts: AtomicU64,
}

impl SessionTable {
    /// A table holding about `capacity` sessions (0 = unlimited) that
    /// expires sessions idle longer than `ttl` (zero = never).
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        SessionTable {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity,
            ttl,
            next_id: AtomicU64::new(1),
            created: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            accesses: AtomicU64::new(0),
            windows: AtomicU64::new(0),
            phase_changes: AtomicU64::new(0),
            replacements: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            refreezes: AtomicU64::new(0),
            access_shifts: AtomicU64::new(0),
            naive_shifts: AtomicU64::new(0),
            migration_shifts: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[(id as usize) % SHARDS]
    }

    /// Drops expired entries of one locked shard.
    fn sweep_shard(&self, shard: &mut HashMap<u64, Entry>) {
        if self.ttl.is_zero() {
            return;
        }
        let before = shard.len();
        shard.retain(|_, e| e.last_used.elapsed() <= self.ttl);
        self.expired
            .fetch_add((before - shard.len()) as u64, Ordering::Relaxed);
    }

    /// Creates a session and returns its id (ids start at 1 and are
    /// never reused). Evicts the least-recently-used session of the
    /// target shard if the per-shard budget is exceeded.
    pub fn create(&self, config: SessionConfig) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(id).lock().expect("session shard poisoned");
        self.sweep_shard(&mut shard);
        if self.capacity > 0 {
            let per_shard = self.capacity.div_ceil(SHARDS).max(1);
            while shard.len() >= per_shard {
                let oldest = shard
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&k, _)| k)
                    .expect("nonempty shard has an oldest entry");
                shard.remove(&oldest);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(
            id,
            Entry {
                state: Arc::new(Mutex::new(SessionState::new(config))),
                last_used: Instant::now(),
            },
        );
        self.created.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Looks up a live session, refreshing its TTL clock. `None` for
    /// unknown, closed, evicted, or just-expired ids.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<SessionState>>> {
        let mut shard = self.shard(id).lock().expect("session shard poisoned");
        if !self.ttl.is_zero() {
            if let Some(entry) = shard.get(&id) {
                if entry.last_used.elapsed() > self.ttl {
                    shard.remove(&id);
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        let entry = shard.get_mut(&id)?;
        entry.last_used = Instant::now();
        Some(Arc::clone(&entry.state))
    }

    /// Closes a session, returning its state (for a final report).
    pub fn remove(&self, id: u64) -> Option<Arc<Mutex<SessionState>>> {
        let mut shard = self.shard(id).lock().expect("session shard poisoned");
        let entry = shard.remove(&id)?;
        self.closed.fetch_add(1, Ordering::Relaxed);
        Some(entry.state)
    }

    /// Folds one ingest's deltas into the table-level aggregates.
    pub fn record(&self, r: &IngestReport) {
        self.accesses.fetch_add(r.accepted, Ordering::Relaxed);
        self.windows
            .fetch_add(r.windows_completed, Ordering::Relaxed);
        self.phase_changes
            .fetch_add(r.phase_changes, Ordering::Relaxed);
        self.replacements
            .fetch_add(r.replacements, Ordering::Relaxed);
        self.suppressed.fetch_add(r.suppressed, Ordering::Relaxed);
        self.refreezes.fetch_add(r.refreezes, Ordering::Relaxed);
        self.access_shifts
            .fetch_add(r.access_shifts, Ordering::Relaxed);
        self.naive_shifts
            .fetch_add(r.naive_shifts, Ordering::Relaxed);
        self.migration_shifts
            .fetch_add(r.migration_shifts, Ordering::Relaxed);
    }

    /// Live session count, after sweeping expired entries.
    pub fn active(&self) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("session shard poisoned");
            self.sweep_shard(&mut shard);
            total += shard.len();
        }
        total
    }

    /// A consistent-enough snapshot of the aggregate counters.
    pub fn stats(&self) -> SessionTableStats {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        SessionTableStats {
            active: self.active() as u64,
            capacity: self.capacity as u64,
            created: get(&self.created),
            closed: get(&self.closed),
            expired: get(&self.expired),
            evicted: get(&self.evicted),
            accesses: get(&self.accesses),
            windows: get(&self.windows),
            phase_changes: get(&self.phase_changes),
            replacements: get(&self.replacements),
            suppressed: get(&self.suppressed),
            refreezes: get(&self.refreezes),
            access_shifts: get(&self.access_shifts),
            naive_shifts: get(&self.naive_shifts),
            migration_shifts: get(&self.migration_shifts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two phases: a sequential sweep over 16 items (dense ids equal
    /// appearance order, so the identity placement is near-optimal),
    /// then a ping-pong between the two items the sweep placed at
    /// opposite ends of the tape — the layout only a re-placement can
    /// fix.
    fn phased_ids(len_per_phase: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..len_per_phase).map(|i| (i % 16) as u32).collect();
        ids.extend((0..len_per_phase).map(|i| [0u32, 15][i % 2]));
        ids
    }

    fn small_config() -> SessionConfig {
        SessionConfig {
            window: 100,
            migration_shifts_per_item: 2,
            refreeze_edges: 4,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn chunk_boundaries_never_change_session_state() {
        let ids = phased_ids(1000);
        let run = |chunk: usize| {
            let mut s = SessionState::new(small_config());
            for c in ids.chunks(chunk) {
                s.ingest(c);
            }
            (
                s.placement().to_vec(),
                s.raw_ids().to_vec(),
                *s.totals(),
                s.placement_version(),
                s.refreezes(),
                s.fingerprint(),
                s.current_cost(),
            )
        };
        let whole = run(usize::MAX);
        for chunk in [1, 7, 100, 333] {
            assert_eq!(run(chunk), whole, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn phase_change_triggers_a_replacement_that_pays_off() {
        let mut s = SessionState::new(small_config());
        s.ingest(&phased_ids(2000));
        let t = s.totals();
        assert!(t.phase_changes >= 1, "no phase change detected");
        assert!(t.replacements >= 1, "no re-placement adopted");
        assert!(s.placement_version() >= 1);
        assert!(
            s.net_amortized_saved() > 0,
            "adaptation did not pay off: naive {} vs access {} + migration {}",
            t.naive_shifts,
            t.access_shifts,
            t.migration_shifts
        );
    }

    #[test]
    fn raw_ids_are_remapped_densely_in_first_appearance_order() {
        let mut s = SessionState::new(SessionConfig::default());
        s.ingest(&[1000, 5, 1000, 7, 5]);
        assert_eq!(s.raw_ids(), &[1000, 5, 7]);
        assert_eq!(s.num_items(), 3);
        assert_eq!(s.placement(), &[0, 1, 2]);
        assert_eq!(s.graph().weight(0, 1), 2); // 1000↔5 adjacent twice
        assert_eq!(s.graph().weight(0, 2), 1); // 1000↔7 once
        assert_eq!(s.graph().frequency(0), 2);
    }

    #[test]
    fn accounting_is_exact_on_a_tiny_stream() {
        let mut s = SessionState::new(SessionConfig::default());
        let r = s.ingest(&[10, 20, 10, 30]);
        // Dense ids 0,1,0,2 under identity placement.
        assert_eq!(r.accepted, 4);
        assert_eq!(r.new_items, 3);
        assert_eq!(r.access_shifts, 1 + 1 + 2);
        assert_eq!(r.naive_shifts, r.access_shifts); // identity == naive
        assert_eq!(s.totals().accesses, 4);
        assert_eq!(s.net_amortized_saved(), 0);
    }

    #[test]
    fn prohibitive_migration_cost_suppresses_every_replacement() {
        let mut s = SessionState::new(SessionConfig {
            migration_shifts_per_item: u64::MAX / 1_000_000,
            ..small_config()
        });
        s.ingest(&phased_ids(2000));
        let t = s.totals();
        assert_eq!(t.replacements, 0);
        assert_eq!(t.migration_shifts, 0);
        assert!(t.suppressed >= 1, "rule never even ran");
        assert_eq!(s.placement_version(), 0);
    }

    #[test]
    fn table_evicts_lru_and_counts_expiry() {
        let table = SessionTable::new(8, Duration::ZERO); // 1 per shard, no TTL
        let first = table.create(SessionConfig::default());
        // Ids advance round-robin over the 8 shards, so the 9th create
        // lands back on `first`'s shard and evicts it (LRU of 1).
        for _ in 0..8 {
            table.create(SessionConfig::default());
        }
        assert_eq!(table.stats().created, 9);
        assert_eq!(table.stats().evicted, 1);
        assert!(table.get(first).is_none());
        assert_eq!(table.active(), 8);
    }

    #[test]
    fn table_ttl_expires_idle_sessions() {
        let table = SessionTable::new(0, Duration::from_millis(20));
        let id = table.create(SessionConfig::default());
        assert!(table.get(id).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(table.get(id).is_none());
        let s = table.stats();
        assert_eq!(s.expired, 1);
        assert_eq!(s.active, 0);
    }

    #[test]
    fn table_remove_reports_closed_and_ids_are_never_reused() {
        let table = SessionTable::new(0, Duration::ZERO);
        let a = table.create(SessionConfig::default());
        let b = table.create(SessionConfig::default());
        assert_ne!(a, b);
        assert!(table.remove(a).is_some());
        assert!(table.remove(a).is_none());
        assert_eq!(table.stats().closed, 1);
        let c = table.create(SessionConfig::default());
        assert!(c > b);
    }

    #[test]
    fn table_aggregates_ingest_reports() {
        let table = SessionTable::new(0, Duration::ZERO);
        let id = table.create(small_config());
        let state = table.get(id).unwrap();
        let report = state.lock().unwrap().ingest(&phased_ids(500));
        table.record(&report);
        let s = table.stats();
        assert_eq!(s.accesses, 1000);
        assert_eq!(s.windows, report.windows_completed);
        assert_eq!(s.access_shifts, report.access_shifts);
    }

    #[test]
    fn tiered_sessions_replace_deterministically_across_chunking() {
        let config = SessionConfig {
            quality: Some(Quality::Balanced),
            ..small_config()
        };
        let ids = phased_ids(1000);
        let run = |chunk: usize| {
            let mut s = SessionState::new(config);
            for c in ids.chunks(chunk) {
                s.ingest(c);
            }
            (
                s.placement().to_vec(),
                *s.totals(),
                s.placement_version(),
                s.current_cost(),
            )
        };
        let whole = run(usize::MAX);
        assert!(whole.2 >= 1, "tiered session never re-placed");
        for chunk in [1, 7, 333] {
            assert_eq!(run(chunk), whole, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn replacement_tier_follows_the_hysteresis_adjusted_budget() {
        use dwm_core::anytime::{estimate_us, Tier};
        let mk = |hysteresis: f64, deadline: Option<u64>| {
            SessionState::new(SessionConfig {
                quality: Some(Quality::Balanced),
                replace_deadline_us: deadline,
                hysteresis,
                ..small_config()
            })
        };
        let solver_tier = |s: &SessionState| s.replacement_solver(16, 40).unwrap().tier;
        // No deadline → full-pass tier 1.
        assert_eq!(solver_tier(&mk(1.0, None)), Tier::Refined);
        // An unmeetable deadline still answers from the fast path.
        assert_eq!(solver_tier(&mk(1.0, Some(1))), Tier::Fast);
        // A deadline that exactly fits tier 1 at hysteresis 1…
        let fits = estimate_us(Tier::Refined, 16, 40);
        assert_eq!(solver_tier(&mk(1.0, Some(fits))), Tier::Refined);
        // …stops fitting once a conservative hysteresis halves the
        // effective budget…
        assert_eq!(solver_tier(&mk(2.0, Some(fits))), Tier::Fast);
        // …and a lax hysteresis stretches it.
        assert_eq!(solver_tier(&mk(0.5, Some(fits / 2))), Tier::Refined);
        // Hysteresis 0 (adopt anything) keeps the raw deadline.
        assert_eq!(solver_tier(&mk(0.0, Some(fits))), Tier::Refined);
        // Fast quality ignores the budget entirely.
        let fast = SessionState::new(SessionConfig {
            quality: Some(Quality::Fast),
            ..small_config()
        });
        assert_eq!(fast.replacement_solver(16, 40).unwrap().tier, Tier::Fast);
        // Legacy sessions have no tiered solver at all.
        assert!(SessionState::new(small_config())
            .replacement_solver(16, 40)
            .is_none());
    }

    #[test]
    fn ring_sessions_stay_chunk_invariant_and_account_circularly() {
        let config = SessionConfig {
            topology: Topology::parse("ring").unwrap(),
            ..small_config()
        };
        let ids = phased_ids(1000);
        let run = |chunk: usize| {
            let mut s = SessionState::new(config);
            for c in ids.chunks(chunk) {
                s.ingest(c);
            }
            (s.placement().to_vec(), *s.totals(), s.fingerprint())
        };
        let whole = run(usize::MAX);
        for chunk in [1, 7, 333] {
            assert_eq!(run(chunk), whole, "chunk size {chunk} diverged");
        }
        // Same stream under the linear default: more access shifts (the
        // ring wraps the 0↔15 ping-pong) and a different fingerprint
        // (the topology is folded into the identity).
        let mut linear = SessionState::new(small_config());
        for c in ids.chunks(333) {
            linear.ingest(c);
        }
        assert!(linear.totals().naive_shifts > whole.1.naive_shifts);
        assert_ne!(linear.fingerprint(), whole.2);
    }

    #[test]
    #[should_panic(expected = "invalid session config")]
    fn zero_window_config_rejected() {
        let _ = SessionState::new(SessionConfig {
            window: 0,
            ..SessionConfig::default()
        });
    }
}
