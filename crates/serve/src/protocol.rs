//! The request/response JSON protocol and its parsing helpers.
//!
//! Requests are JSON objects POSTed to a path naming the operation;
//! responses are JSON objects whose byte form is deterministic (the
//! serializer preserves field insertion order and never round-trips
//! integers through floats). The five operations:
//!
//! | Method | Path        | Body                                              |
//! |--------|-------------|---------------------------------------------------|
//! | POST   | `/solve`    | `{"algorithm"?, "seed"?, "topology"?, "workloads": [{"ids": […]}…]}` or `{"ids": […]}`; tiered form replaces `algorithm` with `"quality"` (`fast`/`balanced`/`best`) and/or `"deadline_us"` |
//! | POST   | `/evaluate` | `{"ids": […], "placement": […], "ports"?, "tape_length"?}` |
//! | POST   | `/simulate` | `{"ids": […], "domains_per_track"?, "tracks"?, "dbcs"?, "ports"?}` |
//! | GET    | `/stats`    | —                                                 |
//! | GET    | `/health`   | —                                                 |
//!
//! Streaming sessions add five more (see [`crate::session`]):
//!
//! | Method | Path                      | Body                                   |
//! |--------|---------------------------|----------------------------------------|
//! | POST   | `/session`                | `{"window"?, "phase_threshold"?, "confirm_windows"?, "hysteresis"?, "migration_shifts_per_item"?, "horizon_windows"?, "refreeze_edges"?, "topology"?}` (or empty for defaults) |
//! | POST   | `/session/{id}/accesses`  | `{"ids": […]}`                         |
//! | GET    | `/session/{id}/placement` | —                                      |
//! | GET    | `/session/{id}/stats`     | —                                      |
//! | DELETE | `/session/{id}`           | —                                      |
//!
//! Session ids look like `s-7`; unknown, closed, evicted, and expired
//! ids all answer 404.
//!
//! `ids` is the access sequence as item ids (reads; the placement
//! problem is read/write agnostic). Workloads are canonicalized server-
//! side (`Trace::normalize`), so two id sequences with the same
//! canonical access graph share a cache entry.

use dwm_core::anytime::Quality;
use dwm_device::Topology;
use dwm_foundation::json::{Object, Value};

/// A protocol-level failure: HTTP status plus a one-line message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// HTTP status to answer with (400 for client mistakes).
    pub status: u16,
    /// Human-readable reason, sent as `{"error": …}`.
    pub message: String,
}

impl ProtocolError {
    /// A 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtocolError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for ProtocolError {}

/// Hard cap on accesses per workload (keeps one request from pinning a
/// worker for minutes).
pub const MAX_ACCESSES: usize = 4_000_000;
/// Hard cap on workloads per solve request.
pub const MAX_WORKLOADS: usize = 256;

/// Parses the request body as a JSON object.
///
/// # Errors
///
/// 400 with the parser's line/column message on malformed JSON, or
/// when the top level is not an object.
pub fn parse_body(body: &[u8]) -> Result<Object, ProtocolError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ProtocolError::bad_request("body is not UTF-8"))?;
    let value = dwm_foundation::json::parse(text)
        .map_err(|e| ProtocolError::bad_request(format!("invalid JSON: {e}")))?;
    match value {
        Value::Obj(obj) => Ok(obj),
        other => Err(ProtocolError::bad_request(format!(
            "expected a JSON object, got {}",
            other.type_name()
        ))),
    }
}

/// String field with a default.
pub fn opt_str(obj: &Object, key: &str, default: &str) -> Result<String, ProtocolError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default.to_owned()),
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a string, got {}",
            other.type_name()
        ))),
    }
}

/// Numeric field with a default, as `f64` (integers are accepted and
/// widened; used for session thresholds and hysteresis factors).
pub fn opt_f64(obj: &Object, key: &str, default: f64) -> Result<f64, ProtocolError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Num(n)) => Ok(n.as_f64()),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a number, got {}",
            other.type_name()
        ))),
    }
}

/// Nonnegative integer field with a default.
pub fn opt_u64(obj: &Object, key: &str, default: u64) -> Result<u64, ProtocolError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Num(n)) => n.as_u64().ok_or_else(|| {
            ProtocolError::bad_request(format!("field {key:?} must be a nonnegative integer"))
        }),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a number, got {}",
            other.type_name()
        ))),
    }
}

/// Required `ids` array: the workload's access sequence.
pub fn parse_ids(obj: &Object) -> Result<Vec<u32>, ProtocolError> {
    let Some(value) = obj.get("ids") else {
        return Err(ProtocolError::bad_request("missing field \"ids\""));
    };
    let Value::Arr(arr) = value else {
        return Err(ProtocolError::bad_request("field \"ids\" must be an array"));
    };
    if arr.is_empty() {
        return Err(ProtocolError::bad_request(
            "field \"ids\" must be non-empty",
        ));
    }
    if arr.len() > MAX_ACCESSES {
        return Err(ProtocolError::bad_request(format!(
            "workload too large: {} accesses (max {MAX_ACCESSES})",
            arr.len()
        )));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            let n = match v {
                Value::Num(n) => n.as_u64(),
                _ => None,
            };
            n.and_then(|n| u32::try_from(n).ok()).ok_or_else(|| {
                ProtocolError::bad_request(format!("ids[{i}] must be a u32 item id"))
            })
        })
        .collect()
}

/// Array of `usize` under `key` (used for `placement` offsets).
pub fn parse_usize_array(obj: &Object, key: &str) -> Result<Vec<usize>, ProtocolError> {
    let Some(value) = obj.get(key) else {
        return Err(ProtocolError::bad_request(format!("missing field {key:?}")));
    };
    let Value::Arr(arr) = value else {
        return Err(ProtocolError::bad_request(format!(
            "field {key:?} must be an array"
        )));
    };
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            let n = match v {
                Value::Num(n) => n.as_u64(),
                _ => None,
            };
            n.and_then(|n| usize::try_from(n).ok()).ok_or_else(|| {
                ProtocolError::bad_request(format!("{key}[{i}] must be a nonnegative integer"))
            })
        })
        .collect()
}

/// The `workloads` array of a solve request: each entry an object with
/// an `ids` array. A top-level `ids` field is accepted as shorthand
/// for a single workload.
pub fn parse_workloads(obj: &Object) -> Result<Vec<Vec<u32>>, ProtocolError> {
    if obj.get("ids").is_some() {
        return Ok(vec![parse_ids(obj)?]);
    }
    let Some(value) = obj.get("workloads") else {
        return Err(ProtocolError::bad_request(
            "missing field \"workloads\" (or shorthand \"ids\")",
        ));
    };
    let Value::Arr(arr) = value else {
        return Err(ProtocolError::bad_request(
            "field \"workloads\" must be an array",
        ));
    };
    if arr.is_empty() {
        return Err(ProtocolError::bad_request(
            "field \"workloads\" must be non-empty",
        ));
    }
    if arr.len() > MAX_WORKLOADS {
        return Err(ProtocolError::bad_request(format!(
            "too many workloads: {} (max {MAX_WORKLOADS})",
            arr.len()
        )));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| match v {
            Value::Obj(w) => parse_ids(w)
                .map_err(|e| ProtocolError::bad_request(format!("workloads[{i}]: {}", e.message))),
            _ => Err(ProtocolError::bad_request(format!(
                "workloads[{i}] must be an object"
            ))),
        })
        .collect()
}

/// The tiered-solve knobs of a solve request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierKnobs {
    /// Requested quality level.
    pub quality: Quality,
    /// Latency budget in microseconds, if the caller stated one.
    pub deadline_us: Option<u64>,
}

/// Parses the optional tiered-solve knobs (`quality`, `deadline_us`).
///
/// Returns `Ok(None)` when neither field is present — the request is a
/// legacy algorithm-addressed solve and must keep its exact historical
/// response shape. A `deadline_us` without `quality` implies
/// `"balanced"`.
///
/// # Errors
///
/// 400 on an unknown quality string, a malformed `deadline_us`, or a
/// request mixing `algorithm` with the tier knobs (the two addressing
/// schemes are mutually exclusive).
pub fn parse_tier_knobs(obj: &Object) -> Result<Option<TierKnobs>, ProtocolError> {
    let quality_raw = quality_field(obj)?;
    let deadline_us = deadline_field(obj, "deadline_us")?;
    if quality_raw.is_none() && deadline_us.is_none() {
        return Ok(None);
    }
    if !matches!(obj.get("algorithm"), None | Some(Value::Null)) {
        return Err(ProtocolError::bad_request(
            "\"algorithm\" cannot be combined with \"quality\"/\"deadline_us\" \
             (tier selection picks the solver)",
        ));
    }
    let quality = match quality_raw {
        None => Quality::Balanced,
        Some(s) => parse_quality(s)?,
    };
    Ok(Some(TierKnobs {
        quality,
        deadline_us,
    }))
}

/// Parses the optional session re-placement tier knobs (`quality`,
/// `replace_deadline_us`) of a session-create body. `(None, None)`
/// keeps the legacy hybrid re-placement solver; a
/// `replace_deadline_us` without `quality` implies `"balanced"`, like
/// `deadline_us` on `/solve`.
///
/// # Errors
///
/// 400 on an unknown quality string, a malformed deadline, or
/// `quality:"exact"` — a session's item set grows past
/// [`EXACT_PLAN_LIMIT`](dwm_core::anytime::EXACT_PLAN_LIMIT) at any
/// ingest, so exactness is not a promise a long-lived session can keep.
pub fn parse_session_knobs(obj: &Object) -> Result<(Option<Quality>, Option<u64>), ProtocolError> {
    let quality_raw = quality_field(obj)?;
    let deadline = deadline_field(obj, "replace_deadline_us")?;
    let quality = match quality_raw {
        None if deadline.is_some() => Some(Quality::Balanced),
        None => None,
        Some(s) => Some(parse_quality(s)?),
    };
    if quality == Some(Quality::Exact) {
        return Err(ProtocolError::bad_request(
            "sessions do not support quality \"exact\" (the item set can outgrow \
             the exact solver at any ingest); use \"best\"",
        ));
    }
    Ok((quality, deadline))
}

/// Parses the optional `topology` field of a solve or session-create
/// body. Absent (or `null`) means [`Topology::linear`] — the legacy
/// geometry, whose responses and cache keys stay byte-identical to
/// before the field existed.
///
/// # Errors
///
/// 400 on a non-string value or a spec outside the
/// `linear | ring | grid2d:<rows>x<cols> | pirm[:<window>]` grammar.
pub fn parse_topology(obj: &Object) -> Result<Topology, ProtocolError> {
    match obj.get("topology") {
        None | Some(Value::Null) => Ok(Topology::linear()),
        Some(Value::Str(s)) => Topology::parse(s)
            .map_err(|e| ProtocolError::bad_request(format!("field \"topology\": {e}"))),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field \"topology\" must be a string, got {}",
            other.type_name()
        ))),
    }
}

fn quality_field(obj: &Object) -> Result<Option<&str>, ProtocolError> {
    match obj.get("quality") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.as_str())),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field \"quality\" must be a string, got {}",
            other.type_name()
        ))),
    }
}

fn parse_quality(s: &str) -> Result<Quality, ProtocolError> {
    Quality::parse(s).ok_or_else(|| {
        ProtocolError::bad_request(format!(
            "unknown quality {s:?} (expected \"fast\", \"balanced\", or \"best\")"
        ))
    })
}

fn deadline_field(obj: &Object, key: &str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) => n.as_u64().map(Some).ok_or_else(|| {
            ProtocolError::bad_request(format!("field {key:?} must be a nonnegative integer"))
        }),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a number, got {}",
            other.type_name()
        ))),
    }
}

/// Serializes an error as the canonical `{"error": …}` body.
pub fn error_body(message: &str) -> String {
    let mut obj = Object::new();
    obj.insert("error", Value::Str(message.to_owned()));
    Value::Obj(obj).to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_device::TrackTopology;

    fn obj(s: &str) -> Object {
        parse_body(s.as_bytes()).unwrap()
    }

    #[test]
    fn parses_workload_shorthand_and_array_forms() {
        let single = parse_workloads(&obj(r#"{"ids":[1,2,3]}"#)).unwrap();
        assert_eq!(single, vec![vec![1, 2, 3]]);
        let multi = parse_workloads(&obj(r#"{"workloads":[{"ids":[1]},{"ids":[2,2]}]}"#)).unwrap();
        assert_eq!(multi, vec![vec![1], vec![2, 2]]);
    }

    #[test]
    fn rejects_malformed_bodies_with_400() {
        assert_eq!(parse_body(b"not json").unwrap_err().status, 400);
        assert_eq!(parse_body(b"[1,2]").unwrap_err().status, 400);
        assert!(parse_workloads(&obj(r#"{}"#)).is_err());
        assert!(parse_workloads(&obj(r#"{"workloads":[]}"#)).is_err());
        assert!(parse_workloads(&obj(r#"{"workloads":[{"ids":[]}]}"#)).is_err());
        assert!(parse_workloads(&obj(r#"{"ids":[1,-2]}"#)).is_err());
        assert!(parse_workloads(&obj(r#"{"ids":["x"]}"#)).is_err());
    }

    #[test]
    fn typed_field_lookups_enforce_types_and_defaults() {
        let o = obj(r#"{"algorithm":"hybrid","seed":9,"bad":true}"#);
        assert_eq!(opt_str(&o, "algorithm", "x").unwrap(), "hybrid");
        assert_eq!(opt_str(&o, "absent", "x").unwrap(), "x");
        assert_eq!(opt_u64(&o, "seed", 1).unwrap(), 9);
        assert_eq!(opt_u64(&o, "absent", 1).unwrap(), 1);
        assert!(opt_str(&o, "seed", "x").is_err());
        assert!(opt_u64(&o, "algorithm", 1).is_err());
        assert!(opt_u64(&o, "bad", 1).is_err());
    }

    #[test]
    fn error_body_is_stable_json() {
        assert_eq!(error_body("nope"), r#"{"error":"nope"}"#);
    }

    #[test]
    fn tier_knobs_absent_means_legacy() {
        assert_eq!(
            parse_tier_knobs(&obj(r#"{"algorithm":"hybrid","ids":[1]}"#)).unwrap(),
            None
        );
        assert_eq!(parse_tier_knobs(&obj(r#"{"ids":[1]}"#)).unwrap(), None);
    }

    #[test]
    fn tier_knobs_parse_quality_and_deadline() {
        let k = parse_tier_knobs(&obj(r#"{"quality":"fast","ids":[1]}"#))
            .unwrap()
            .unwrap();
        assert_eq!(k.quality, Quality::Fast);
        assert_eq!(k.deadline_us, None);
        // deadline alone implies balanced.
        let k = parse_tier_knobs(&obj(r#"{"deadline_us":500,"ids":[1]}"#))
            .unwrap()
            .unwrap();
        assert_eq!(k.quality, Quality::Balanced);
        assert_eq!(k.deadline_us, Some(500));
        // Edge deadlines parse fine.
        let k = parse_tier_knobs(&obj(r#"{"quality":"best","deadline_us":0}"#))
            .unwrap()
            .unwrap();
        assert_eq!(k.deadline_us, Some(0));
        let k = parse_tier_knobs(&obj(r#"{"deadline_us":18446744073709551615}"#))
            .unwrap()
            .unwrap();
        assert_eq!(k.deadline_us, Some(u64::MAX));
    }

    #[test]
    fn session_knobs_reject_exact_quality() {
        let err = parse_session_knobs(&obj(r#"{"quality":"exact"}"#)).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("exact"), "{err:?}");
        // /solve still accepts it — only sessions refuse.
        let k = parse_tier_knobs(&obj(r#"{"quality":"exact","ids":[1]}"#))
            .unwrap()
            .unwrap();
        assert_eq!(k.quality, Quality::Exact);
    }

    #[test]
    fn topology_field_defaults_to_linear_and_rejects_garbage() {
        assert!(parse_topology(&obj(r#"{"ids":[1]}"#)).unwrap().is_linear());
        assert!(parse_topology(&obj(r#"{"topology":null}"#))
            .unwrap()
            .is_linear());
        assert!(parse_topology(&obj(r#"{"topology":"linear"}"#))
            .unwrap()
            .is_linear());
        let ring = parse_topology(&obj(r#"{"topology":"ring"}"#)).unwrap();
        assert_eq!(ring.canonical(), "ring");
        let grid = parse_topology(&obj(r#"{"topology":"grid2d:4x16"}"#)).unwrap();
        assert_eq!(grid.canonical(), "grid2d:4x16");
        for body in [
            r#"{"topology":"mobius"}"#,
            r#"{"topology":"grid2d:4"}"#,
            r#"{"topology":"grid2d:0x4"}"#,
            r#"{"topology":"pirm:0"}"#,
            r#"{"topology":7}"#,
        ] {
            let err = parse_topology(&obj(body)).unwrap_err();
            assert_eq!(err.status, 400, "{body} must 400, got {err:?}");
        }
    }

    #[test]
    fn tier_knobs_reject_bad_values_with_400() {
        for body in [
            r#"{"quality":"turbo"}"#,
            r#"{"quality":7}"#,
            r#"{"deadline_us":-3}"#,
            r#"{"deadline_us":"soon"}"#,
            r#"{"quality":"fast","algorithm":"hybrid"}"#,
            r#"{"deadline_us":100,"algorithm":"hybrid"}"#,
        ] {
            let err = parse_tier_knobs(&obj(body)).unwrap_err();
            assert_eq!(err.status, 400, "{body} must 400, got {err:?}");
        }
    }
}
