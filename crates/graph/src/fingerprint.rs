//! Stable 128-bit workload fingerprints over canonical CSR form.
//!
//! The solve cache in `dwm-serve` must recognize "the same workload"
//! across requests, processes, and machines. Hashing the request bytes
//! is wrong — two traces with differently-ordered but equivalent JSON,
//! or different access interleavings with the same adjacency structure,
//! would miss the cache even though every placement algorithm sees the
//! identical input. The canonical identity of a placement problem is
//! its access graph: algorithms consume only the weighted adjacency
//! structure plus per-item frequencies, so the fingerprint hashes
//! exactly that, in the frozen CSR order (which is itself canonical —
//! ascending neighbour lists per vertex).
//!
//! The hash is a fixed, dependency-free 2-lane construction over `u64`
//! words (SplitMix64 finalizers over distinct seeds, length-finalized),
//! chosen for speed and stability: the same graph produces the same
//! 128-bit value on every platform, every build, forever. It is *not*
//! cryptographic — cache keys need collision resistance against
//! accident, not adversaries.

use std::fmt;

use crate::csr::CsrGraph;
use crate::graph::AccessGraph;

/// A 128-bit stable hash of a workload's canonical access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Fingerprint {
    /// The fingerprint as one `u128`.
    pub fn as_u128(self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// Lower-case 32-character hex form (the wire / CLI spelling).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-character hex form.
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint { hi, lo })
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two independent accumulation lanes over a stream of `u64` words.
struct Lanes {
    a: u64,
    b: u64,
    words: u64,
}

impl Lanes {
    fn new() -> Self {
        // Arbitrary distinct seeds (digits of π and e).
        Lanes {
            a: 0x2436_3F84_A885_A308,
            b: 0xB7E1_5162_8AED_2A6A,
            words: 0,
        }
    }

    #[inline]
    fn feed(&mut self, w: u64) {
        self.a = mix(self.a ^ w);
        self.b = mix(self.b.rotate_left(23) ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.words += 1;
    }

    fn finish(mut self) -> Fingerprint {
        let n = self.words;
        self.feed(n ^ 0x5349_4E47_4C45_5452); // length finalization
        Fingerprint {
            hi: mix(self.a ^ self.b.rotate_left(32)),
            lo: mix(self.b ^ self.a.rotate_left(17)),
        }
    }
}

/// Fingerprints a frozen graph (see the module docs for what counts as
/// canonical). The stream is: item count, per-vertex neighbour lists
/// (vertex, neighbour, weight triples in CSR order), then per-item
/// frequencies.
pub fn fingerprint_csr(csr: &CsrGraph, frequencies: &[u64]) -> Fingerprint {
    let mut lanes = Lanes::new();
    lanes.feed(csr.num_items() as u64);
    for u in 0..csr.num_items() {
        let (vs, ws) = csr.neighbor_slices(u);
        lanes.feed(u as u64 ^ 0x8000_0000_0000_0000);
        for (&v, &w) in vs.iter().zip(ws) {
            lanes.feed(u64::from(v));
            lanes.feed(w);
        }
    }
    lanes.feed(0xF8E9_7A5B_3C2D_1E0F); // section separator
    for &f in frequencies {
        lanes.feed(f);
    }
    lanes.finish()
}

/// Fingerprints an [`AccessGraph`] by freezing it to canonical CSR
/// form first. Two graphs compare equal under this fingerprint exactly
/// when they have the same vertex count, edge weights, and item
/// frequencies — the full input every placement algorithm consumes.
pub fn fingerprint(graph: &AccessGraph) -> Fingerprint {
    fingerprint_csr(&CsrGraph::freeze(graph), graph.frequencies())
}

/// Fingerprints a graph *under a track topology*: the same adjacency
/// structure solved for different geometries is a different placement
/// problem, so cache keys must not alias across topologies.
///
/// `topology` is the canonical parameter string (`"linear"`,
/// `"ring"`, `"grid2d:4x16"`, `"pirm:4"` — see the topology subsystem
/// in `dwm-device`; this crate takes the string so it stays
/// device-agnostic). The linear topology is the identity: its
/// fingerprint equals [`fingerprint`], preserving every persisted cache
/// key and pinned hash from before topologies existed. Any other
/// canonical string remixes the base fingerprint with the string's
/// bytes, so distinct topologies (and distinct parameters of the same
/// topology) get distinct identities.
pub fn fingerprint_topology(graph: &AccessGraph, topology: &str) -> Fingerprint {
    fingerprint_retag(fingerprint(graph), topology)
}

/// The remix step of [`fingerprint_topology`], for callers that already
/// hold a base fingerprint (e.g. the incrementally maintained graphs in
/// `dwm-serve` sessions). `"linear"` is the identity.
pub fn fingerprint_retag(base: Fingerprint, topology: &str) -> Fingerprint {
    if topology == "linear" {
        return base;
    }
    let mut lanes = Lanes::new();
    lanes.feed(base.hi);
    lanes.feed(base.lo);
    lanes.feed(0x544F_504F_4C4F_4759); // section separator ("TOPOLOGY")
    for chunk in topology.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        lanes.feed(u64::from_le_bytes(word));
    }
    lanes.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_trace::synth::{TraceGenerator, ZipfGen};
    use dwm_trace::Trace;

    fn graph_of(ids: &[u32]) -> AccessGraph {
        AccessGraph::from_trace(&Trace::from_ids(ids.iter().copied()).normalize())
    }

    #[test]
    fn equal_graphs_fingerprint_equal() {
        let a = graph_of(&[0, 1, 0, 2, 1, 2]);
        let b = graph_of(&[0, 1, 0, 2, 1, 2]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn any_structural_change_changes_the_fingerprint() {
        let base = fingerprint(&graph_of(&[0, 1, 0, 2, 1, 2]));
        // Different edge weight.
        assert_ne!(base, fingerprint(&graph_of(&[0, 1, 0, 2, 1, 2, 1])));
        // Same edges, different frequency split.
        let mut g1 = graph_of(&[0, 1, 0, 2, 1, 2]);
        g1.set_frequency(0, g1.frequency(0) + 1);
        assert_ne!(base, fingerprint(&g1));
        // Extra isolated vertex.
        let mut g2 = AccessGraph::with_items(4);
        g2.add_weight(0, 1, 2);
        g2.add_weight(0, 2, 1);
        g2.add_weight(1, 2, 2);
        let mut g3 = AccessGraph::with_items(3);
        g3.add_weight(0, 1, 2);
        g3.add_weight(0, 2, 1);
        g3.add_weight(1, 2, 2);
        assert_ne!(fingerprint(&g2), fingerprint(&g3));
    }

    #[test]
    fn access_order_within_the_same_graph_is_canonicalized() {
        // Two traces with different interleavings but identical
        // adjacency counts and frequencies hash equal.
        let a = graph_of(&[0, 1, 0, 1, 2, 0]);
        let b = graph_of(&[0, 1, 0, 1, 2, 0]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let fp = fingerprint(&graph_of(&[3, 1, 4, 1, 5, 9, 2, 6]));
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::parse_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::parse_hex("short"), None);
        assert_eq!(Fingerprint::parse_hex(&"g".repeat(32)), None);
        assert_eq!(format!("{fp}"), hex);
    }

    #[test]
    fn golden_value_is_stable_across_releases() {
        // Pinned fingerprint of a fixed workload: if this test fails,
        // the hash function changed and every persisted cache identity
        // (CLI `hash` outputs, cross-process cache keys) silently
        // broke. Bump intentionally or not at all.
        let trace = ZipfGen::new(16, 7).generate(500).normalize();
        let fp = fingerprint(&AccessGraph::from_trace(&trace));
        assert_eq!(fp.to_hex(), "d711d2669b304ba39425ee4d803d5b8c");
    }

    #[test]
    fn linear_topology_fingerprint_is_the_identity() {
        let g = graph_of(&[0, 1, 0, 2, 1, 2]);
        assert_eq!(fingerprint_topology(&g, "linear"), fingerprint(&g));
    }

    #[test]
    fn topologies_never_alias_each_other_or_the_base() {
        let g = graph_of(&[0, 1, 0, 2, 1, 2]);
        let tags = ["ring", "grid2d:4x16", "grid2d:8x8", "pirm:4", "pirm:8"];
        let mut fps: Vec<Fingerprint> = vec![fingerprint(&g)];
        for t in tags {
            fps.push(fingerprint_topology(&g, t));
        }
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "alias between entry {i} and {j}");
            }
        }
        // Deterministic: same graph + tag, same identity.
        assert_eq!(
            fingerprint_topology(&g, "ring"),
            fingerprint_topology(&g, "ring")
        );
        // Still sensitive to the graph.
        let other = graph_of(&[0, 1, 0, 2, 1, 2, 1]);
        assert_ne!(
            fingerprint_topology(&g, "ring"),
            fingerprint_topology(&other, "ring")
        );
    }

    #[test]
    fn empty_graph_has_a_fingerprint() {
        let fp = fingerprint(&AccessGraph::with_items(0));
        assert_ne!(fp.as_u128(), 0);
        assert_ne!(fp, fingerprint(&AccessGraph::with_items(1)));
    }
}
