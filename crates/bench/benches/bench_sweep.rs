//! F4/F5: cost-model replay across tape lengths and port counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dwm_bench::markov_fixture;
use dwm_core::cost::{CostModel, MultiPortCost, SinglePortCost};
use dwm_core::{Hybrid, PlacementAlgorithm};

fn replay_vs_tape_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_tape_length");
    for l in [16usize, 64, 256] {
        let (trace, graph) = markov_fixture(l);
        let placement = Hybrid::default().place(&graph);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(l),
            &(trace, placement),
            |b, (t, p)| {
                let model = SinglePortCost::new();
                b.iter(|| model.trace_cost(std::hint::black_box(p), std::hint::black_box(t)))
            },
        );
    }
    group.finish();
}

fn replay_vs_ports(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_ports");
    let (trace, graph) = markov_fixture(64);
    let placement = Hybrid::default().place(&graph);
    for ports in [1usize, 2, 4, 8] {
        let model = MultiPortCost::evenly_spaced(ports, 64);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ports), &model, |b, m| {
            b.iter(|| m.trace_cost(std::hint::black_box(&placement), &trace))
        });
    }
    group.finish();
}

criterion_group!(benches, replay_vs_tape_length, replay_vs_ports);
criterion_main!(benches);
