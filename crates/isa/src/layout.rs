use crate::cfg::{BlockId, Cfg};

/// A permutation of basic blocks along the instruction tape, with the
/// cumulative start offset of each block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockOrder {
    /// `order[k]` = block at tape position `k`.
    order: Vec<BlockId>,
    /// `start[b]` = first instruction offset of block `b`.
    start: Vec<usize>,
    /// `end[b]` = one past the last instruction offset of block `b`.
    end: Vec<usize>,
}

dwm_foundation::json_struct!(BlockOrder { order, start, end });

impl BlockOrder {
    /// Lays blocks out in the given order, computing offsets from the
    /// CFG's block sizes.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the CFG's blocks.
    pub fn from_order(cfg: &Cfg, order: Vec<BlockId>) -> Self {
        let n = cfg.num_blocks();
        assert_eq!(order.len(), n, "order must cover every block");
        let mut start = vec![usize::MAX; n];
        let mut end = vec![usize::MAX; n];
        let mut offset = 0usize;
        for &b in &order {
            assert!(start[b.0] == usize::MAX, "block {b:?} placed twice");
            start[b.0] = offset;
            offset += cfg.block_len(b);
            end[b.0] = offset;
        }
        BlockOrder { order, start, end }
    }

    /// The program-order (declaration-order) baseline layout.
    pub fn program_order(cfg: &Cfg) -> Self {
        BlockOrder::from_order(cfg, (0..cfg.num_blocks()).map(BlockId).collect())
    }

    /// The block at tape position `k`.
    pub fn block_at(&self, k: usize) -> BlockId {
        self.order[k]
    }

    /// The layout order.
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// First instruction offset of `b`.
    pub fn start_of(&self, b: BlockId) -> usize {
        self.start[b.0]
    }

    /// Fetch-shift cost of this layout: for every edge, `frequency ×
    /// |end(from) − start(to)|`, except that a *fallthrough* (the
    /// destination starts exactly where the source ends) is free —
    /// sequential fetch advances the tape anyway.
    pub fn cost(&self, cfg: &Cfg) -> u64 {
        cfg.edges()
            .iter()
            .map(|e| {
                let from_end = self.end[e.from.0] as i64;
                let to_start = self.start[e.to.0] as i64;
                e.frequency * from_end.abs_diff(to_start)
            })
            .sum()
    }
}

/// Hottest-edge chaining (Pettis–Hansen adapted to tape distance):
/// process edges in descending frequency; an edge glues its source
/// chain's tail to its destination chain's head when possible, making
/// the hottest transfers fallthroughs. Remaining chains are emitted in
/// descending heat.
///
/// Unlike the data-placement chain growth, instruction chains are
/// *directed* — a block may only fall through to one successor — so
/// the merge condition is "`from` is a chain tail and `to` is a chain
/// head of a different chain".
pub fn chain_layout(cfg: &Cfg) -> BlockOrder {
    let n = cfg.num_blocks();
    let mut edges: Vec<_> = cfg.edges().to_vec();
    edges.sort_by_key(|e| (std::cmp::Reverse(e.frequency), e.from, e.to));

    // chain_of[b] = chain index; chains stored as Vec<BlockId>.
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<BlockId>> = (0..n).map(|b| vec![BlockId(b)]).collect();

    for e in &edges {
        let (cf, ct) = (chain_of[e.from.0], chain_of[e.to.0]);
        if cf == ct {
            continue;
        }
        let tail_ok = chains[cf].last() == Some(&e.from);
        let head_ok = chains[ct].first() == Some(&e.to);
        if !(tail_ok && head_ok) {
            continue;
        }
        let moved = std::mem::take(&mut chains[ct]);
        for b in &moved {
            chain_of[b.0] = cf;
        }
        chains[cf].extend(moved);
    }

    // Heat of a chain = total frequency of its blocks' outgoing edges.
    let mut heat = vec![0u64; chains.len()];
    for e in cfg.edges() {
        heat[chain_of[e.from.0]] += e.frequency;
    }
    let mut live: Vec<usize> = (0..chains.len())
        .filter(|&c| !chains[c].is_empty())
        .collect();
    live.sort_by_key(|&c| (std::cmp::Reverse(heat[c]), c));

    let order: Vec<BlockId> = live.into_iter().flat_map(|c| chains[c].clone()).collect();
    BlockOrder::from_order(cfg, order)
}

/// The full layout pipeline: the better of program order and
/// hottest-edge chaining, refined by adjacent-swap local search —
/// never worse than program order, by construction.
///
/// Compilers emit loops contiguously, so program order is often near-
/// optimal already (exactly like first-touch order on the data side);
/// chaining wins when profile-hot paths cross the source layout.
pub fn best_layout(cfg: &Cfg) -> BlockOrder {
    let program = BlockOrder::program_order(cfg);
    let chained = chain_layout(cfg);
    let start = if chained.cost(cfg) < program.cost(cfg) {
        chained
    } else {
        program
    };
    refine_order(cfg, &start, 30)
}

/// Local refinement: first-improvement passes of adjacent block swaps
/// until no swap helps (cost recomputed exactly; CFGs are small).
/// Never increases cost.
pub fn refine_order(cfg: &Cfg, layout: &BlockOrder, max_passes: usize) -> BlockOrder {
    let mut order = layout.order().to_vec();
    let mut best = BlockOrder::from_order(cfg, order.clone());
    let mut best_cost = best.cost(cfg);
    for _ in 0..max_passes {
        let mut improved = false;
        for k in 0..order.len().saturating_sub(1) {
            order.swap(k, k + 1);
            let candidate = BlockOrder::from_order(cfg, order.clone());
            let cost = candidate.cost(cfg);
            if cost < best_cost {
                best = candidate;
                best_cost = cost;
                improved = true;
            } else {
                order.swap(k, k + 1); // revert
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cfg {
        // a → b (hot), a → c (cold), b → d, c → d.
        let mut cfg = Cfg::new();
        let a = cfg.block(2);
        let b = cfg.block(3);
        let c = cfg.block(3);
        let d = cfg.block(1);
        cfg.edge(a, b, 90);
        cfg.edge(a, c, 10);
        cfg.edge(b, d, 90);
        cfg.edge(c, d, 10);
        cfg
    }

    #[test]
    fn offsets_are_cumulative() {
        let cfg = diamond();
        let layout = BlockOrder::program_order(&cfg);
        assert_eq!(layout.start_of(BlockId(0)), 0);
        assert_eq!(layout.start_of(BlockId(1)), 2);
        assert_eq!(layout.start_of(BlockId(2)), 5);
        assert_eq!(layout.start_of(BlockId(3)), 8);
    }

    #[test]
    fn fallthrough_is_free() {
        let mut cfg = Cfg::new();
        let a = cfg.block(4);
        let b = cfg.block(4);
        cfg.edge(a, b, 1000);
        let layout = BlockOrder::program_order(&cfg);
        assert_eq!(layout.cost(&cfg), 0, "a falls through to b");
        // Reversed: b sits first, the jump spans b's body.
        let reversed = BlockOrder::from_order(&cfg, vec![b, a]);
        assert_eq!(reversed.cost(&cfg), 1000 * 8);
    }

    #[test]
    fn chain_layout_prefers_hot_fallthroughs() {
        let cfg = diamond();
        let tuned = chain_layout(&cfg);
        // The hot path a→b→d must be consecutive.
        let pos = |b: usize| {
            tuned
                .order()
                .iter()
                .position(|&x| x == BlockId(b))
                .expect("block placed")
        };
        assert_eq!(pos(1), pos(0) + 1, "a→b is a fallthrough");
        assert_eq!(pos(3), pos(1) + 1, "b→d is a fallthrough");
        assert!(tuned.cost(&cfg) < BlockOrder::program_order(&cfg).cost(&cfg));
    }

    #[test]
    fn best_layout_never_loses_to_program_order() {
        for seed in 0..10 {
            let cfg = Cfg::random(20, 3, seed);
            let naive = BlockOrder::program_order(&cfg).cost(&cfg);
            let tuned = best_layout(&cfg).cost(&cfg);
            assert!(tuned <= naive, "seed {seed}: {tuned} > {naive}");
        }
    }

    #[test]
    fn refine_never_increases_cost() {
        let cfg = Cfg::random(16, 4, 3);
        let start = BlockOrder::program_order(&cfg);
        let refined = refine_order(&cfg, &start, 30);
        assert!(refined.cost(&cfg) <= start.cost(&cfg));
    }

    #[test]
    fn layout_is_a_permutation() {
        let cfg = Cfg::random(24, 3, 7);
        let layout = chain_layout(&cfg);
        let mut seen = [false; 24];
        for k in 0..24 {
            let b = layout.block_at(k);
            assert!(!seen[b.0]);
            seen[b.0] = true;
        }
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_blocks_rejected() {
        let cfg = diamond();
        let _ = BlockOrder::from_order(&cfg, vec![BlockId(0); 4]);
    }

    #[test]
    fn structured_cfg_layout_keeps_loops_tight() {
        // Compilers already lay loops contiguously: program order is
        // strong here, and best_layout must match or beat it (the raw
        // chain layout alone can lose by separating loops from glue —
        // which is exactly why best_layout is a portfolio).
        let cfg = Cfg::structured(3, 4, 1000);
        let naive = BlockOrder::program_order(&cfg).cost(&cfg);
        let tuned = best_layout(&cfg).cost(&cfg);
        assert!(tuned <= naive);
    }
}
