use dwm_device::{Dbc, DeviceConfig, DeviceError, ShiftStats};

/// A bank of bit-level DBCs forming a scratchpad memory.
///
/// Addressing is `(dbc, offset)`; each DBC shifts independently. The
/// scratchpad aggregates activity counters across its DBCs.
///
/// # Example
///
/// ```
/// use dwm_device::DeviceConfig;
/// use dwm_sim::Scratchpad;
///
/// let config = DeviceConfig::builder().dbcs(2).domains_per_track(8).build()?;
/// let mut spm = Scratchpad::new(&config);
/// spm.write(1, 3, 0xFF)?;
/// assert_eq!(spm.read(1, 3)?, 0xFF);
/// assert_eq!(spm.read(0, 0)?, 0); // untouched DBC is zero-filled
/// # Ok::<(), dwm_device::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scratchpad {
    dbcs: Vec<Dbc>,
    config: DeviceConfig,
}

impl Scratchpad {
    /// Creates a zero-filled scratchpad with `config.dbcs()` DBCs.
    pub fn new(config: &DeviceConfig) -> Self {
        Scratchpad {
            dbcs: (0..config.dbcs()).map(|_| Dbc::new(config)).collect(),
            config: config.clone(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Number of DBCs.
    pub fn num_dbcs(&self) -> usize {
        self.dbcs.len()
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.config.capacity_words()
    }

    fn dbc_mut(&mut self, dbc: usize) -> Result<&mut Dbc, DeviceError> {
        let n = self.dbcs.len();
        self.dbcs.get_mut(dbc).ok_or(DeviceError::OffsetOutOfRange {
            offset: dbc,
            capacity: n,
        })
    }

    /// Reads the word at `(dbc, offset)`, shifting that DBC as needed.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceError`] for an unknown DBC or offset.
    pub fn read(&mut self, dbc: usize, offset: usize) -> Result<u64, DeviceError> {
        self.dbc_mut(dbc)?.read(offset)
    }

    /// Writes the word at `(dbc, offset)`, shifting that DBC as needed.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceError`] for an unknown DBC, bad offset, or a
    /// word wider than the track count.
    pub fn write(&mut self, dbc: usize, offset: usize, word: u64) -> Result<(), DeviceError> {
        self.dbc_mut(dbc)?.write(offset, word)
    }

    /// Mutable access to the DBC bank, for the simulator's parallel
    /// per-DBC replay (DBCs shift independently, so disjoint `&mut`
    /// borrows commute).
    pub(crate) fn dbcs_mut(&mut self) -> &mut [Dbc] {
        &mut self.dbcs
    }

    /// Counters of one DBC.
    pub fn dbc_stats(&self, dbc: usize) -> &ShiftStats {
        self.dbcs[dbc].stats()
    }

    /// Aggregated counters across all DBCs.
    pub fn total_stats(&self) -> ShiftStats {
        let mut total = ShiftStats::new();
        for d in &self.dbcs {
            total.merge(d.stats());
        }
        total
    }

    /// Resets all activity counters (contents preserved).
    pub fn reset_stats(&mut self) {
        for d in &mut self.dbcs {
            d.reset_stats();
        }
    }

    /// Fault-injection passthrough: slips DBC `dbc` by `delta`
    /// positions (see [`Dbc::inject_displacement_error`]).
    ///
    /// # Panics
    ///
    /// Panics if `dbc` is out of range (injection is driven by the
    /// simulator, which only uses valid indices).
    pub fn inject_displacement_error(&mut self, dbc: usize, delta: i64) {
        self.dbcs[dbc].inject_displacement_error(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(dbcs: usize) -> DeviceConfig {
        DeviceConfig::builder()
            .dbcs(dbcs)
            .domains_per_track(16)
            .tracks_per_dbc(16)
            .build()
            .unwrap()
    }

    #[test]
    fn dbcs_are_independent() {
        let mut spm = Scratchpad::new(&config(2));
        spm.write(0, 10, 7).unwrap();
        // DBC 1 never moved.
        assert_eq!(spm.dbc_stats(1).accesses(), 0);
        assert_eq!(spm.dbc_stats(0).shifts, 10);
        // Accessing DBC 1 offset 10 pays its own alignment.
        spm.read(1, 10).unwrap();
        assert_eq!(spm.dbc_stats(1).shifts, 10);
    }

    #[test]
    fn total_stats_aggregates() {
        let mut spm = Scratchpad::new(&config(3));
        spm.write(0, 5, 1).unwrap();
        spm.write(1, 3, 2).unwrap();
        spm.read(2, 8).unwrap();
        let total = spm.total_stats();
        assert_eq!(total.accesses(), 3);
        assert_eq!(total.shifts, 5 + 3 + 8);
        assert_eq!(total.max_shift, 8);
    }

    #[test]
    fn unknown_dbc_is_an_error() {
        let mut spm = Scratchpad::new(&config(2));
        assert!(spm.read(2, 0).is_err());
        assert!(spm.write(5, 0, 0).is_err());
    }

    #[test]
    fn reset_preserves_contents() {
        let mut spm = Scratchpad::new(&config(1));
        spm.write(0, 4, 99).unwrap();
        spm.reset_stats();
        assert_eq!(spm.total_stats().accesses(), 0);
        assert_eq!(spm.read(0, 4).unwrap(), 99);
    }
}
