//! Frozen CSR graph and incremental arrangement evaluation.
//!
//! [`AccessGraph`] stores adjacency as one `BTreeMap` per vertex —
//! right for construction (incremental weight updates from a trace),
//! wrong for search: every placement heuristic walks neighbour lists
//! millions of times, and tree walks are pointer-chasing cache misses.
//! [`CsrGraph`] is the read-only counterpart: the same graph flattened
//! into three arrays (compressed sparse row), built once at solver
//! entry and immutable thereafter. Mutation stays on [`AccessGraph`];
//! freezing is a one-way, one-time step.
//!
//! [`ArrangementEval`] layers incremental cost evaluation on top: it
//! tracks a placement and its arrangement cost, answers
//! `O(deg(a) + deg(b))` swap deltas and `O(deg(x))` relocate deltas,
//! and applies/undoes moves while keeping the running total exact —
//! no full recompute ever. The arithmetic matches the historical
//! per-algorithm delta code term for term, so rewiring a solver onto
//! the evaluator cannot change its decisions (see
//! `tests/csr_equivalence.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::graph::{AccessGraph, Edge};

/// Global counter of incremental delta evaluations (swap, half-swap,
/// relocate) answered by [`ArrangementEval`] — the denominator of
/// every solver's moves-per-evaluation story. Evaluators count into a
/// per-evaluator relaxed atomic (uncontended unless the *same*
/// evaluator is shared across threads) and flush to the global striped
/// counter once on drop.
pub(crate) fn delta_eval_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_graph_eval_delta_evals_total",
        "Incremental cost-delta evaluations (swap/half-swap/relocate) answered by ArrangementEval"
    )
}

/// Frozen compressed-sparse-row view of an [`AccessGraph`].
///
/// Neighbour lists are stored contiguously in ascending vertex order —
/// the same order [`AccessGraph::neighbors`] yields — so iteration
/// order, and therefore every tie-break downstream, is unchanged.
/// Weighted degrees and the total edge weight are cached at build
/// time; `degree` drops from `O(deg)` to `O(1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `row_offsets[u]..row_offsets[u + 1]` indexes `u`'s slice of
    /// `neighbors`/`weights`.
    row_offsets: Vec<u32>,
    /// Concatenated neighbour lists, ascending within each vertex.
    neighbors: Vec<u32>,
    /// Edge weights, parallel to `neighbors`.
    weights: Vec<u64>,
    /// Cached weighted degree per vertex.
    degree: Vec<u64>,
    /// Cached sum of all (undirected) edge weights.
    total_weight: u64,
    /// Per-edge endpoint bitmasks `(1 << u) | (1 << v)` with weights,
    /// for cut queries without re-deriving endpoints. Only built for
    /// `n ≤ 64` (the exact DP's domain); empty otherwise.
    cut_pairs: Vec<(u64, u64)>,
    /// Interleaved `(weight << 32) | neighbor` rows, parallel to
    /// `neighbors`, built when every weight fits in 32 bits (always
    /// true for trace-derived counts). The swap-delta walk then reads
    /// one 8-byte word per neighbour instead of two parallel streams.
    /// Empty when some weight overflows u32.
    packed: Vec<u64>,
}

impl CsrGraph {
    /// Freezes `graph` into CSR form. `O(n + E)`.
    pub fn freeze(graph: &AccessGraph) -> Self {
        let n = graph.num_items();
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        let mut weights = Vec::new();
        row_offsets.push(0);
        for u in 0..n {
            for (v, w) in graph.neighbors(u) {
                neighbors.push(u32::try_from(v).expect("vertex id exceeds u32"));
                weights.push(w);
            }
            row_offsets.push(u32::try_from(neighbors.len()).expect("edge count exceeds u32"));
        }
        CsrGraph::from_parts(row_offsets, neighbors, weights)
    }

    /// Assembles a CSR graph from already-flattened rows (ascending
    /// neighbours per vertex, each undirected edge present from both
    /// endpoints). All caches — degrees, total weight, cut masks, the
    /// interleaved rows — are derived here, exactly as [`freeze`] would,
    /// so two routes to the same adjacency produce equal graphs. Used by
    /// [`freeze`] and by [`crate::delta::DeltaGraph::refreeze`].
    ///
    /// [`freeze`]: CsrGraph::freeze
    pub(crate) fn from_parts(
        row_offsets: Vec<u32>,
        neighbors: Vec<u32>,
        weights: Vec<u64>,
    ) -> Self {
        let n = row_offsets.len() - 1;
        let mut degree = Vec::with_capacity(n);
        let mut total_weight = 0u64;
        for u in 0..n {
            let (lo, hi) = (row_offsets[u] as usize, row_offsets[u + 1] as usize);
            let mut deg = 0u64;
            for (&v, &w) in neighbors[lo..hi].iter().zip(&weights[lo..hi]) {
                deg += w;
                if (u as u32) < v {
                    total_weight += w;
                }
            }
            degree.push(deg);
        }
        let cut_pairs = if n <= 64 {
            (0..n)
                .flat_map(|u| {
                    let (lo, hi) = (row_offsets[u] as usize, row_offsets[u + 1] as usize);
                    neighbors[lo..hi]
                        .iter()
                        .zip(&weights[lo..hi])
                        .filter(move |(&v, _)| (u as u32) < v)
                        .map(move |(&v, &w)| ((1u64 << u) | (1u64 << v), w))
                })
                .collect()
        } else {
            Vec::new()
        };
        let packed = if weights.iter().all(|&w| w <= u64::from(u32::MAX)) {
            neighbors
                .iter()
                .zip(&weights)
                .map(|(&v, &w)| (w << 32) | u64::from(v))
                .collect()
        } else {
            Vec::new()
        };
        CsrGraph {
            row_offsets,
            neighbors,
            weights,
            degree,
            total_weight,
            cut_pairs,
            packed,
        }
    }

    /// Number of items (vertices).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.degree.len()
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Weighted degree of vertex `u`, from the build-time cache. `O(1)`.
    #[inline]
    pub fn degree(&self, u: usize) -> u64 {
        self.degree[u]
    }

    /// Sum of all edge weights, from the build-time cache. `O(1)`.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// `u`'s neighbour ids and weights as parallel slices, ascending by
    /// vertex — the zero-overhead form for hot loops.
    #[inline]
    pub fn neighbor_slices(&self, u: usize) -> (&[u32], &[u64]) {
        let lo = self.row_offsets[u] as usize;
        let hi = self.row_offsets[u + 1] as usize;
        (&self.neighbors[lo..hi], &self.weights[lo..hi])
    }

    /// Neighbours of `u` with edge weights, in ascending vertex order
    /// (same order as [`AccessGraph::neighbors`]).
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        let (vs, ws) = self.neighbor_slices(u);
        vs.iter().zip(ws).map(|(&v, &w)| (v as usize, w))
    }

    /// `u`'s interleaved `(weight << 32) | neighbor` row, when built.
    #[inline]
    fn packed_row(&self, u: usize) -> Option<&[u64]> {
        if self.packed.len() != self.neighbors.len() {
            return None;
        }
        let lo = self.row_offsets[u] as usize;
        let hi = self.row_offsets[u + 1] as usize;
        Some(&self.packed[lo..hi])
    }

    /// Weight of edge `{u, v}` (0 if absent). `O(log deg(u))`.
    pub fn weight(&self, u: usize, v: usize) -> u64 {
        let (vs, ws) = self.neighbor_slices(u);
        match vs.binary_search(&(v as u32)) {
            Ok(i) => ws[i],
            Err(_) => 0,
        }
    }

    /// All edges, each reported once with `u < v`, in lexicographic
    /// order (same order as [`AccessGraph::edges`]).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_items()).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, weight)| Edge { u, v, weight })
        })
    }

    /// Linear arrangement cost `Σ w(u,v)·|position[u] − position[v]|`;
    /// identical to [`AccessGraph::arrangement_cost`].
    ///
    /// # Panics
    ///
    /// Panics if `position.len() < num_items()`.
    pub fn arrangement_cost(&self, position: &[usize]) -> u64 {
        assert!(
            position.len() >= self.num_items(),
            "position vector shorter than item count"
        );
        let mut cost = 0u64;
        for u in 0..self.num_items() {
            let pu = position[u];
            let (vs, ws) = self.neighbor_slices(u);
            for (&v, &w) in vs.iter().zip(ws) {
                let v = v as usize;
                if u < v {
                    cost += w * pu.abs_diff(position[v]) as u64;
                }
            }
        }
        cost
    }

    /// Weight of the cut between `set` (a bitmask over vertices, valid
    /// for `n ≤ 64`) and its complement.
    ///
    /// Uses the per-edge endpoint masks precomputed at freeze time: an
    /// edge crosses the cut iff exactly one of its endpoint bits is in
    /// `set`, so each edge costs two bit ops instead of the per-edge
    /// shift-and-compare of [`AccessGraph::cut_weight_mask`].
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 64 items.
    pub fn cut_weight_mask(&self, set: u64) -> u64 {
        assert!(
            self.num_items() <= 64,
            "cut_weight_mask requires n <= 64 (bitmask domain)"
        );
        let mut cut = 0;
        for &(mask, w) in &self.cut_pairs {
            if (set & mask).count_ones() == 1 {
                cut += w;
            }
        }
        cut
    }
}

/// One reversible move recorded by [`ArrangementEval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// Items `a` and `b` exchanged slots; cost changed by `delta`.
    Swap { a: usize, b: usize, delta: i64 },
    /// The item that was at slot `from` moved to slot `to` (the block
    /// in between shifted by one); cost changed by `delta`.
    Relocate { from: usize, to: usize, delta: i64 },
}

/// Incremental arrangement-cost evaluator over a frozen [`CsrGraph`].
///
/// Holds a position assignment (item → slot, plus the inverse), the
/// exact running arrangement cost, and an undo log. Deltas are queries
/// ([`swap_delta`], [`relocate_delta`]); `apply_*` commits a move and
/// updates the total without re-walking the graph; [`undo`] reverses
/// the most recent move. The running total always equals
/// `graph.arrangement_cost(positions())` — enforced by the property
/// suite — so a full recompute is never needed after construction.
///
/// Relocation deltas use the *cut identity*: the arrangement cost
/// equals the sum over slot boundaries `i` of the weight crossing
/// between slots `≤ i` and `> i`. The boundary-cut array is built
/// lazily on the first relocation query (`O(n + E)`), kept current
/// across relocations in `O(deg + span)`, and simply dropped by swaps
/// — swap-only consumers such as annealing never pay for it.
///
/// [`swap_delta`]: ArrangementEval::swap_delta
/// [`relocate_delta`]: ArrangementEval::relocate_delta
/// [`undo`]: ArrangementEval::undo
#[derive(Debug)]
pub struct ArrangementEval<'g> {
    graph: &'g CsrGraph,
    /// Slot of each item, padded with zeros to a power-of-two length
    /// (entries `num_items()..` are never read). The padding lets the
    /// hot delta walks index with `pos[v & (pos.len() - 1)]`, which
    /// the compiler can prove in-bounds — no per-neighbour check.
    pos: Vec<usize>,
    /// Item at each slot (inverse of `pos`).
    item_at: Vec<usize>,
    /// Exact running arrangement cost.
    total: u64,
    /// Boundary cuts (`cuts[i]` = weight crossing boundary `i`),
    /// lazily materialised for relocation queries.
    cuts: Option<Vec<u64>>,
    /// Applied moves, most recent last.
    log: Vec<Move>,
    /// Delta evaluations not yet flushed to [`delta_eval_counter`].
    /// Atomic (not `Cell`) so read-only delta queries may be shared
    /// across threads; relaxed and usually uncontended.
    delta_evals: AtomicU64,
}

impl Clone for ArrangementEval<'_> {
    fn clone(&self) -> Self {
        ArrangementEval {
            graph: self.graph,
            pos: self.pos.clone(),
            item_at: self.item_at.clone(),
            total: self.total,
            cuts: self.cuts.clone(),
            log: self.log.clone(),
            // The original still owns (and will flush) its pending
            // count; the clone starts a tally of its own.
            delta_evals: AtomicU64::new(0),
        }
    }
}

impl Drop for ArrangementEval<'_> {
    fn drop(&mut self) {
        let n = *self.delta_evals.get_mut();
        if n > 0 {
            delta_eval_counter().add(n);
        }
    }
}

impl<'g> ArrangementEval<'g> {
    /// Starts evaluating from `position` (item → slot, a permutation of
    /// `0..n`). One full `O(n + E)` cost computation — the last one.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not a permutation of `0..num_items()`.
    pub fn new(graph: &'g CsrGraph, position: &[usize]) -> Self {
        let n = graph.num_items();
        assert_eq!(position.len(), n, "position length != item count");
        let mut item_at = vec![usize::MAX; n];
        for (item, &slot) in position.iter().enumerate() {
            assert!(slot < n, "slot out of range");
            assert_eq!(item_at[slot], usize::MAX, "duplicate slot in position");
            item_at[slot] = item;
        }
        let total = graph.arrangement_cost(position);
        let mut pos = position.to_vec();
        pos.resize(n.next_power_of_two().max(1), 0);
        ArrangementEval {
            graph,
            pos,
            item_at,
            total,
            cuts: None,
            log: Vec::new(),
            delta_evals: AtomicU64::new(0),
        }
    }

    /// The underlying frozen graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The exact arrangement cost of the current positions.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current slot of `item`.
    #[inline]
    pub fn position_of(&self, item: usize) -> usize {
        self.pos[item]
    }

    /// Item currently at `slot`.
    #[inline]
    pub fn item_at(&self, slot: usize) -> usize {
        self.item_at[slot]
    }

    /// The full item → slot assignment.
    #[inline]
    pub fn positions(&self) -> &[usize] {
        &self.pos[..self.item_at.len()]
    }

    /// Number of applied moves available to [`undo`](Self::undo).
    #[inline]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Cost change of swapping the slots of items `a` and `b`.
    /// `O(deg(a) + deg(b))`. Term-for-term the arithmetic of the
    /// historical per-algorithm delta functions.
    #[inline]
    pub fn swap_delta(&self, a: usize, b: usize) -> i64 {
        self.delta_evals.fetch_add(1, Ordering::Relaxed);
        let (pa, pb) = (self.pos[a] as i64, self.pos[b] as i64);
        // Fast path over the interleaved rows: one 8-byte load per
        // neighbour. The weight fits u32 there, so `(e >> 32) as i64`
        // is the exact weight and the sum is identical to the
        // two-stream walk below.
        if let (Some(ra), Some(rb)) = (self.graph.packed_row(a), self.graph.packed_row(b)) {
            return self.packed_half_delta(ra, b, pa, pb) + self.packed_half_delta(rb, a, pb, pa);
        }
        let mut delta = 0i64;
        let (vs, ws) = self.graph.neighbor_slices(a);
        for (&v, &w) in vs.iter().zip(ws) {
            let v = v as usize;
            if v == b {
                continue; // the (a,b) edge length is unchanged by a swap
            }
            let pv = self.pos[v] as i64;
            delta += w as i64 * ((pb - pv).abs() - (pa - pv).abs());
        }
        let (vs, ws) = self.graph.neighbor_slices(b);
        for (&v, &w) in vs.iter().zip(ws) {
            let v = v as usize;
            if v == a {
                continue;
            }
            let pv = self.pos[v] as i64;
            delta += w as i64 * ((pa - pv).abs() - (pb - pv).abs());
        }
        delta
    }

    /// One endpoint's contribution to a swap delta, over its
    /// interleaved row: the item moves from slot `p_old` to `p_new`,
    /// and the edge to `skip` (the swap partner) keeps its length.
    ///
    /// The masked index is a no-op (`v < num_items() ≤ pos.len()`, a
    /// power of two), but makes the in-bounds proof trivial, so the
    /// inner loop carries no bounds check. The partner edge is
    /// excluded by an arithmetic select rather than a `continue`: the
    /// loop body is branch-free, so the compiler can unroll and
    /// vectorize the accumulation.
    #[inline]
    fn packed_half_delta(&self, row: &[u64], skip: usize, p_old: i64, p_new: i64) -> i64 {
        let pos = self.pos.as_slice();
        let mask = pos.len() - 1;
        let mut delta = 0i64;
        for &e in row {
            let v = (e as u32) as usize;
            let keep = i64::from(v != skip);
            let pv = pos[v & mask] as i64;
            delta += keep * (e >> 32) as i64 * ((p_new - pv).abs() - (p_old - pv).abs());
        }
        delta
    }

    /// One item's half of a swap delta, plus its edge weight to the
    /// swap partner: returns `(Σ_{v∈N(item)} w·(|to − pos[v]| −
    /// |from − pos[v]|), w(item, partner))` in a single row walk.
    ///
    /// Callers that already know the other half — e.g. a windowed
    /// scan holding a precomputed profile of the anchor item — combine
    /// the pieces as `other_half + half + 2·w(item, partner)·|from −
    /// to|` to get exactly [`swap_delta`](Self::swap_delta) (the
    /// partner edge is double-counted once from each side, and a swap
    /// preserves its length).
    #[inline]
    pub fn half_swap_delta(
        &self,
        item: usize,
        from: usize,
        to: usize,
        partner: usize,
    ) -> (i64, i64) {
        self.delta_evals.fetch_add(1, Ordering::Relaxed);
        let (p_old, p_new) = (from as i64, to as i64);
        let pos = self.pos.as_slice();
        let mask = pos.len() - 1;
        let mut delta = 0i64;
        let mut w_partner = 0i64;
        // The partner weight is picked up with an arithmetic select
        // (at most one row entry matches), keeping both loop bodies
        // branch-free for unrolling and vectorization.
        if let Some(row) = self.graph.packed_row(item) {
            for &e in row {
                let v = (e as u32) as usize;
                let w = (e >> 32) as i64;
                w_partner += i64::from(v == partner) * w;
                let pv = pos[v & mask] as i64;
                delta += w * ((p_new - pv).abs() - (p_old - pv).abs());
            }
        } else {
            let (vs, ws) = self.graph.neighbor_slices(item);
            for (&v, &w) in vs.iter().zip(ws) {
                let v = v as usize;
                let w = w as i64;
                w_partner += i64::from(v == partner) * w;
                let pv = pos[v & mask] as i64;
                delta += w * ((p_new - pv).abs() - (p_old - pv).abs());
            }
        }
        (delta, w_partner)
    }

    /// Batched candidate evaluation: fills `ga[q − lo] = Σ_{v∈N(item)}
    /// w(item,v)·|q − pos[v]|` for every candidate slot `q ∈ [lo, hi]`
    /// in **one walk** of `item`'s row — the own-edge cost of parking
    /// `item` at each of up to `hi − lo + 1` candidate slots, which is
    /// the anchor's half of that many swap deltas per row walk.
    ///
    /// Neighbours strictly outside the window contribute a linear ramp
    /// (`q·W − S` from weight and moment sums on the left, mirrored on
    /// the right), accumulated branch-free via arithmetic selects;
    /// only the few neighbours *inside* the window (staged in `mid`, a
    /// caller-owned scratch buffer reused across calls) need per-slot
    /// absolute values, and that tail loop is a fixed-stride
    /// accumulation over the `ga` array the compiler can vectorize.
    ///
    /// All-integer arithmetic: combining two profiles as
    /// `(ga_a[j − lo] − ga_a[from − lo]) + half_b + 2·w(a,b)·(j − from)`
    /// reproduces [`swap_delta`](Self::swap_delta) exactly, bit for
    /// bit — the identity windowed local search is built on.
    ///
    /// # Panics
    ///
    /// Panics if `ga.len() < hi − lo + 1` or `lo > hi`.
    pub fn window_half_costs(
        &self,
        item: usize,
        lo: usize,
        hi: usize,
        ga: &mut [i64],
        mid: &mut Vec<(i64, i64)>,
    ) {
        self.delta_evals.fetch_add(1, Ordering::Relaxed);
        let pos = self.pos.as_slice();
        let mask = pos.len() - 1;
        let (ki, hii) = (lo as i64, hi as i64);
        let (mut wl, mut sl, mut wr, mut sr) = (0i64, 0i64, 0i64, 0i64);
        mid.clear();
        if let Some(row) = self.graph.packed_row(item) {
            for &e in row {
                let v = (e as u32) as usize;
                let pv = pos[v & mask] as i64;
                let wt = (e >> 32) as i64;
                let left = i64::from(pv <= ki);
                let right = i64::from(pv >= hii);
                wl += left * wt;
                sl += left * wt * pv;
                wr += right * wt;
                sr += right * wt * pv;
                if left + right == 0 {
                    mid.push((pv, wt));
                }
            }
        } else {
            let (vs, ws) = self.graph.neighbor_slices(item);
            for (&v, &wt) in vs.iter().zip(ws) {
                let pv = pos[(v as usize) & mask] as i64;
                let wt = wt as i64;
                let left = i64::from(pv <= ki);
                let right = i64::from(pv >= hii);
                wl += left * wt;
                sl += left * wt * pv;
                wr += right * wt;
                sr += right * wt * pv;
                if left + right == 0 {
                    mid.push((pv, wt));
                }
            }
        }
        let ga = &mut ga[..=hi - lo];
        for (i, g) in ga.iter_mut().enumerate() {
            let q = ki + i as i64;
            *g = (q * wl - sl) + (sr - q * wr);
        }
        for &(pv, wt) in mid.iter() {
            for (i, g) in ga.iter_mut().enumerate() {
                *g += wt * (ki + i as i64 - pv).abs();
            }
        }
    }

    /// Commits the swap of items `a` and `b`, taking the caller's
    /// already-computed [`swap_delta`](Self::swap_delta) so the accept
    /// path does not re-walk the neighbour lists. `O(1)`.
    #[inline]
    pub fn apply_swap_with_delta(&mut self, a: usize, b: usize, delta: i64) {
        debug_assert_eq!(delta, self.swap_delta(a, b), "stale swap delta");
        self.pos.swap(a, b);
        self.item_at.swap(self.pos[a], self.pos[b]);
        self.total = self
            .total
            .checked_add_signed(delta)
            .expect("cost underflow");
        // Every boundary cut between the two slots changes; drop the
        // lazy array instead of re-walking the span (swap consumers
        // never query cuts, relocate consumers rebuild on demand).
        self.cuts = None;
        self.log.push(Move::Swap { a, b, delta });
    }

    /// Computes the swap delta, commits the swap, and returns the
    /// delta. `O(deg(a) + deg(b))`.
    pub fn apply_swap(&mut self, a: usize, b: usize) -> i64 {
        let delta = self.swap_delta(a, b);
        self.apply_swap_with_delta(a, b, delta);
        delta
    }

    /// Cost change of moving the item at slot `from` to slot `to`,
    /// shifting the block in between by one slot towards `from`.
    /// `O(deg(item))` once the boundary-cut array is materialised
    /// (first call after construction or a swap: `O(n + E)`).
    pub fn relocate_delta(&mut self, from: usize, to: usize) -> i64 {
        if from == to {
            return 0;
        }
        self.delta_evals.fetch_add(1, Ordering::Relaxed);
        self.ensure_cuts();
        let x = self.item_at[from];
        let (lo, hi) = (from.min(to), from.max(to));
        // Own edges of x: recompute each incident distance directly,
        // accounting for the block's one-slot shift towards `from`.
        let mut own = 0i64;
        // x's weight to the two unshifted regions (slots < lo, > hi).
        let (mut w_before, mut w_after) = (0i64, 0i64);
        let (vs, ws) = self.graph.neighbor_slices(x);
        for (&v, &w) in vs.iter().zip(ws) {
            let pv = self.pos[v as usize];
            if pv < lo {
                w_before += w as i64;
            } else if pv > hi {
                w_after += w as i64;
            }
            let pv_new = if to > from && pv > from && pv <= to {
                pv - 1
            } else if to < from && pv >= to && pv < from {
                pv + 1
            } else {
                pv
            } as i64;
            own += w as i64 * ((to as i64 - pv_new).abs() - (from as i64 - pv as i64).abs());
        }
        // Block term: every block item shifts one slot towards `from`,
        // so in-block distances are preserved and only edges leaving
        // the span [lo, hi] change, by ±1 each. Their net weight
        // telescopes to two boundary cuts minus x's own crossings:
        //   Σ_{y∈block} (w(y, far side) − w(y, near side))
        //     = cut(hi) − cut(lo − 1) − w(x, > hi) + w(x, < lo),
        // signed by the direction of the move.
        let cuts = self.cuts.as_ref().expect("materialised above");
        let outer = cut_at(cuts, hi as i64) as i64;
        let inner = cut_at(cuts, lo as i64 - 1) as i64;
        let block = outer - inner - w_after + w_before;
        own + if to > from { block } else { -block }
    }

    /// Commits the relocation of the item at slot `from` to slot `to`
    /// with the caller's already-computed delta. `O(deg(item) + span)`.
    pub fn apply_relocate_with_delta(&mut self, from: usize, to: usize, delta: i64) {
        debug_assert_eq!(delta, self.relocate_delta(from, to), "stale relocate delta");
        self.commit_relocate(from, to, delta);
        self.log.push(Move::Relocate { from, to, delta });
    }

    /// Computes the relocation delta, commits it, and returns the
    /// delta. `O(deg(item) + span)` once cuts are materialised.
    pub fn apply_relocate(&mut self, from: usize, to: usize) -> i64 {
        let delta = self.relocate_delta(from, to);
        self.apply_relocate_with_delta(from, to, delta);
        delta
    }

    /// Reverses the most recently applied move. Returns `false` when
    /// the log is empty.
    pub fn undo(&mut self) -> bool {
        match self.log.pop() {
            Some(Move::Swap { a, b, delta }) => {
                self.pos.swap(a, b);
                self.item_at.swap(self.pos[a], self.pos[b]);
                self.total = self
                    .total
                    .checked_add_signed(-delta)
                    .expect("cost underflow");
                self.cuts = None;
                true
            }
            Some(Move::Relocate { from, to, delta }) => {
                // The inverse relocation: the moved item now sits at
                // `to`; send it back to `from`.
                self.commit_relocate(to, from, -delta);
                true
            }
            None => false,
        }
    }

    /// Boundary cut at `i`: total weight crossing between slots `≤ i`
    /// and `> i` (valid `i`: `0..n − 1`). Materialises the cut array on
    /// first use. The cut identity gives `Σ_i boundary_cut(i) ==
    /// total()`, which the property suite checks.
    pub fn boundary_cut(&mut self, i: usize) -> u64 {
        self.ensure_cuts();
        self.cuts.as_ref().expect("materialised above")[i]
    }

    fn ensure_cuts(&mut self) {
        if self.cuts.is_some() {
            return;
        }
        let n = self.graph.num_items();
        // cut(i) − cut(i − 1) = deg(u_i) − 2·w(u_i, slots < i): the item
        // entering the prefix adds its outward weight and converts its
        // inward weight from crossing to internal.
        let mut cuts = vec![0u64; n.saturating_sub(1)];
        let mut running = 0i64;
        for (i, cut) in cuts.iter_mut().enumerate() {
            let u = self.item_at[i];
            let mut w_in = 0i64;
            let (vs, ws) = self.graph.neighbor_slices(u);
            for (&v, &w) in vs.iter().zip(ws) {
                if self.pos[v as usize] < i {
                    w_in += w as i64;
                }
            }
            running += self.graph.degree(u) as i64 - 2 * w_in;
            *cut = u64::try_from(running).expect("negative cut");
        }
        self.cuts = Some(cuts);
    }

    /// Moves `item_at[from]` to `to`, rotating the block in between,
    /// and updates positions, total, and (when materialised) the cut
    /// array. Does not touch the log.
    fn commit_relocate(&mut self, from: usize, to: usize, delta: i64) {
        if let Some(cuts) = self.cuts.take() {
            self.cuts = Some(self.shifted_cuts(cuts, from, to));
        }
        let x = self.item_at[from];
        if to > from {
            for slot in from..to {
                self.item_at[slot] = self.item_at[slot + 1];
                self.pos[self.item_at[slot]] = slot;
            }
        } else {
            for slot in (to..from).rev() {
                self.item_at[slot + 1] = self.item_at[slot];
                self.pos[self.item_at[slot + 1]] = slot + 1;
            }
        }
        self.item_at[to] = x;
        self.pos[x] = to;
        self.total = self
            .total
            .checked_add_signed(delta)
            .expect("cost underflow");
    }

    /// The boundary-cut array after relocating `item_at[from]` to `to`.
    /// Called with *pre-move* positions. Only boundaries inside the
    /// span change: for `to > from`, the new prefix at boundary
    /// `i ∈ [from, to)` is the old prefix at `i + 1` minus the moved
    /// item, so `cut'(i) = cut(i + 1) − deg(x) + 2·w(x, old slots ≤
    /// i + 1, minus x)`; symmetrically for `to < from`. `O(deg(x) +
    /// span)` via one incremental sweep over x's neighbour slots.
    fn shifted_cuts(&self, mut cuts: Vec<u64>, from: usize, to: usize) -> Vec<u64> {
        let x = self.item_at[from];
        let degx = self.graph.degree(x) as i64;
        let (lo, hi) = (from.min(to), from.max(to));
        // Bucket x's neighbour weights by old slot across the span.
        let mut at_slot = vec![0i64; hi - lo + 1];
        let mut w_below = 0i64; // w(x, slots < lo)
        let (vs, ws) = self.graph.neighbor_slices(x);
        for (&v, &w) in vs.iter().zip(ws) {
            let pv = self.pos[v as usize];
            if pv < lo {
                w_below += w as i64;
            } else if pv <= hi {
                at_slot[pv - lo] += w as i64;
            }
        }
        if to > from {
            // wx tracks w(x, old slots ≤ i + 1, minus x) as i sweeps up.
            let mut wx = w_below;
            for i in from..to {
                wx += at_slot[i + 1 - lo];
                let old = cut_at(&cuts, i as i64 + 1) as i64;
                cuts[i] = u64::try_from(old - degx + 2 * wx).expect("negative cut");
            }
        } else {
            // wx tracks w(x, old slots ≤ i − 1) as i sweeps down; at
            // the top of the span that is w(x, old slots < from).
            let mut wx: i64 = w_below + at_slot.iter().sum::<i64>() - at_slot[from - lo];
            for i in (to..from).rev() {
                wx -= at_slot[i - lo];
                let old = cut_at(&cuts, i as i64 - 1) as i64;
                cuts[i] = u64::try_from(old + degx - 2 * wx).expect("negative cut");
            }
        }
        cuts
    }
}

/// Boundary-cut lookup with the natural out-of-range extension
/// (`cut(−1) = cut(n − 1) = 0`: empty side, nothing crosses).
fn cut_at(cuts: &[u64], i: i64) -> u64 {
    if i < 0 || i as usize >= cuts.len() {
        0
    } else {
        cuts[i as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_foundation::Rng;

    fn diamond() -> AccessGraph {
        let mut g = AccessGraph::with_items(4);
        g.add_weight(0, 1, 5);
        g.add_weight(1, 2, 1);
        g.add_weight(2, 3, 1);
        g.add_weight(0, 3, 1);
        g
    }

    fn random_graph(n: usize, seed: u64) -> AccessGraph {
        let mut rng = Rng::seed_from_u64(seed);
        let mut g = AccessGraph::with_items(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.4) {
                    g.add_weight(u, v, rng.gen_range(1u64..9));
                }
            }
        }
        g
    }

    fn random_positions(n: usize, rng: &mut Rng) -> Vec<usize> {
        let mut slots: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            slots.swap(i, rng.gen_range(0..i + 1));
        }
        slots
    }

    #[test]
    fn freeze_preserves_graph_queries() {
        let g = random_graph(17, 3);
        let csr = CsrGraph::freeze(&g);
        assert_eq!(csr.num_items(), g.num_items());
        assert_eq!(csr.num_edges(), g.num_edges());
        assert_eq!(csr.total_weight(), g.total_weight());
        for u in 0..g.num_items() {
            assert_eq!(csr.degree(u), g.degree(u));
            let a: Vec<_> = csr.neighbors(u).collect();
            let b: Vec<_> = g.neighbors(u).collect();
            assert_eq!(a, b, "neighbour list of {u}");
            for v in 0..g.num_items() {
                assert_eq!(csr.weight(u, v), g.weight(u, v));
            }
        }
        let ea: Vec<_> = csr.edges().collect();
        let eb: Vec<_> = g.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn arrangement_cost_matches_access_graph() {
        let g = random_graph(23, 5);
        let csr = CsrGraph::freeze(&g);
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10 {
            let pos = random_positions(23, &mut rng);
            assert_eq!(csr.arrangement_cost(&pos), g.arrangement_cost(&pos));
        }
    }

    #[test]
    fn cut_weight_mask_matches_access_graph() {
        let g = random_graph(14, 7);
        let csr = CsrGraph::freeze(&g);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let set = rng.next_u64() & ((1 << 14) - 1);
            assert_eq!(csr.cut_weight_mask(set), g.cut_weight_mask(set));
        }
        assert_eq!(csr.cut_weight_mask(0), 0);
        assert_eq!(csr.cut_weight_mask((1 << 14) - 1), 0);
    }

    #[test]
    fn swap_delta_matches_recomputation() {
        let g = random_graph(15, 11);
        let csr = CsrGraph::freeze(&g);
        let mut rng = Rng::seed_from_u64(2);
        let pos = random_positions(15, &mut rng);
        let eval = ArrangementEval::new(&csr, &pos);
        for a in 0..15 {
            for b in (a + 1)..15 {
                let mut moved = pos.clone();
                moved.swap(a, b);
                let expect = csr.arrangement_cost(&moved) as i64 - eval.total() as i64;
                assert_eq!(eval.swap_delta(a, b), expect, "swap {a},{b}");
            }
        }
    }

    #[test]
    fn relocate_delta_matches_recomputation() {
        let g = random_graph(13, 13);
        let csr = CsrGraph::freeze(&g);
        let mut rng = Rng::seed_from_u64(4);
        let pos = random_positions(13, &mut rng);
        let mut eval = ArrangementEval::new(&csr, &pos);
        for from in 0..13 {
            for to in 0..13 {
                // Reference: rebuild the moved position vector.
                let mut order: Vec<usize> = (0..13).map(|s| eval.item_at(s)).collect();
                let x = order.remove(from);
                order.insert(to, x);
                let mut moved = vec![0usize; 13];
                for (slot, &item) in order.iter().enumerate() {
                    moved[item] = slot;
                }
                let expect = csr.arrangement_cost(&moved) as i64 - eval.total() as i64;
                assert_eq!(eval.relocate_delta(from, to), expect, "move {from}->{to}");
            }
        }
    }

    #[test]
    fn apply_and_undo_round_trip() {
        let g = random_graph(19, 17);
        let csr = CsrGraph::freeze(&g);
        let mut rng = Rng::seed_from_u64(6);
        let pos = random_positions(19, &mut rng);
        let mut eval = ArrangementEval::new(&csr, &pos);
        let mut totals = vec![eval.total()];
        for step in 0..60 {
            if step % 3 == 0 {
                let from = rng.gen_range(0usize..19);
                let to = rng.gen_range(0usize..19);
                eval.apply_relocate(from, to);
            } else {
                let a = rng.gen_range(0usize..19);
                let b = rng.gen_range(0usize..19);
                if a != b {
                    eval.apply_swap(a, b);
                } else {
                    eval.apply_relocate(a, b);
                }
            }
            assert_eq!(eval.total(), csr.arrangement_cost(eval.positions()));
            totals.push(eval.total());
        }
        while eval.undo() {
            totals.pop();
            assert_eq!(eval.total(), *totals.last().unwrap());
            assert_eq!(eval.total(), csr.arrangement_cost(eval.positions()));
        }
        assert_eq!(eval.positions(), &pos[..]);
        assert_eq!(eval.log_len(), 0);
    }

    #[test]
    fn boundary_cuts_sum_to_total() {
        let g = random_graph(21, 19);
        let csr = CsrGraph::freeze(&g);
        let mut rng = Rng::seed_from_u64(8);
        let pos = random_positions(21, &mut rng);
        let mut eval = ArrangementEval::new(&csr, &pos);
        let sum: u64 = (0..20).map(|i| eval.boundary_cut(i)).sum();
        assert_eq!(sum, eval.total());
        // And the array stays consistent across relocations.
        for _ in 0..20 {
            let from = rng.gen_range(0usize..21);
            let to = rng.gen_range(0usize..21);
            eval.apply_relocate(from, to);
            let sum: u64 = (0..20).map(|i| eval.boundary_cut(i)).sum();
            assert_eq!(sum, eval.total());
        }
    }

    #[test]
    fn eval_on_diamond_matches_hand_costs() {
        let g = diamond();
        let csr = CsrGraph::freeze(&g);
        let eval = ArrangementEval::new(&csr, &[0, 1, 2, 3]);
        assert_eq!(eval.total(), 10);
        assert_eq!(eval.item_at(2), 2);
        assert_eq!(eval.position_of(3), 3);
    }

    #[test]
    fn trivial_graphs() {
        for n in 0..2usize {
            let g = AccessGraph::with_items(n);
            let csr = CsrGraph::freeze(&g);
            assert_eq!(csr.num_items(), n);
            assert_eq!(csr.num_edges(), 0);
            let pos: Vec<usize> = (0..n).collect();
            let mut eval = ArrangementEval::new(&csr, &pos);
            assert_eq!(eval.total(), 0);
            assert!(!eval.undo());
        }
    }
}
