//! The event-loop server core: per-shard epoll loops own nonblocking
//! connections as explicit state machines, and a bounded worker pool
//! runs request handlers so CPU-heavy solves never stall the loops.
//!
//! ```text
//!            ┌────────────── per-shard event loop ──────────────┐
//!  accept ──▶│ Reading ──parse──▶ Handling ──complete──▶ Writing │──▶ close
//!            │    ▲  (incremental)   (queued to          (flush, │
//!            │    └──────────────── worker pool)   may block on  │
//!            │          keep-alive / pipelined tail   EPOLLOUT) ─┘
//!            └──────────────────────────────────────────────────┘
//! ```
//!
//! Each shard binds its own `SO_REUSEPORT` listener, so the kernel
//! spreads incoming connections across loops with no shared accept
//! lock. A connection belongs to exactly one shard for its lifetime;
//! only that loop touches its buffers, which is what keeps responses
//! on one connection strictly in request order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::parser::{self, NetError, Parsed, Request, Response};
use super::poller::{Interest, PollEvent, Poller, Waker};
use super::sys;
use super::BoundedQueue;

/// Poller token of a shard's listener.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of a shard's cross-thread waker.
const TOKEN_WAKER: u64 = 1;
/// First token handed to accepted connections.
const FIRST_CONN_TOKEN: u64 = 2;
/// Bytes read from a ready socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;
/// Poll timeout while draining, bounding shutdown-detection latency.
const DRAIN_POLL: Duration = Duration::from_millis(20);
/// Ceiling for auto-selected shard count (`ServerConfig::shards` = 0).
const MAX_AUTO_SHARDS: usize = 8;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads running request handlers.
    pub workers: usize,
    /// Handler-queue capacity; beyond it requests get `503`.
    pub queue_capacity: usize,
    /// Acceptor shards, each an event loop with its own
    /// `SO_REUSEPORT` listener. 0 = auto (CPU threads, capped at 8);
    /// forced to 1 where `SO_REUSEPORT` is unavailable.
    pub shards: usize,
    /// How long a connection may sit on a partially received request
    /// before being closed with `408` (slow-header defense). Idle
    /// keep-alive connections with nothing buffered are exempt.
    pub read_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: crate::par::num_threads(),
            queue_capacity: 128,
            shards: 0,
            read_deadline: Duration::from_secs(10),
        }
    }
}

/// Counters the server keeps while running (monotonic except
/// `open_connections`).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted across all shards.
    pub accepted: AtomicU64,
    /// Requests refused with `503` because the handler queue was full.
    pub rejected: AtomicU64,
    /// Requests answered (any status).
    pub requests: AtomicU64,
    /// Requests that failed to parse (answered `400`).
    pub malformed: AtomicU64,
    /// Connections currently open.
    pub open_connections: AtomicU64,
    /// Connections closed with `408` after the read deadline expired
    /// mid-request.
    pub timed_out: AtomicU64,
}

/// One handler invocation in flight from a loop to the worker pool.
struct Job {
    shard: usize,
    token: u64,
    request: Request,
}

/// A finished handler invocation on its way back to the owning loop.
struct Completion {
    token: u64,
    response: Response,
}

/// Per-shard mailbox: workers push completions and ring the waker.
struct ShardState {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

struct Shared {
    shutdown: AtomicBool,
    queue: BoundedQueue<Job>,
    stats: ServerStats,
    handler: Box<dyn Fn(&Request) -> Response + Send + Sync>,
    shards: Vec<ShardState>,
    read_deadline: Duration,
}

/// Accessors for the transport metrics in the [`crate::obs::global`]
/// registry. Called once at server start so a scrape shows the full
/// family at zero, then reused per event via the macro's call-site
/// cache.
mod metrics {
    use crate::obs;

    pub(super) fn accepted() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_connections_accepted_total",
            "Connections accepted across all acceptor shards"
        )
    }

    pub(super) fn rejected() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_connections_rejected_total",
            "Requests refused with 503 because the handler queue was full"
        )
    }

    pub(super) fn requests() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_requests_total",
            "Requests parsed off connections and answered (any status)"
        )
    }

    pub(super) fn malformed() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_malformed_requests_total",
            "Requests that failed to parse and were answered 400"
        )
    }

    pub(super) fn queue_depth() -> &'static obs::Gauge {
        crate::obs_gauge!(
            "dwm_net_queue_depth",
            "Requests currently waiting for a handler worker"
        )
    }

    pub(super) fn handler_latency() -> &'static obs::Histogram {
        crate::obs_histogram!(
            "dwm_net_handler_latency_ns",
            "Wall-clock nanoseconds spent inside the request handler"
        )
    }

    pub(super) fn wakeups() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_loop_wakeups_total",
            "Event-loop wakeups that delivered at least one readiness event"
        )
    }

    pub(super) fn readiness_depth() -> &'static obs::Gauge {
        crate::obs_gauge!(
            "dwm_net_readiness_queue_depth",
            "Readiness events delivered by the most recent event-loop wakeup"
        )
    }

    pub(super) fn open_conns() -> &'static obs::Gauge {
        crate::obs_gauge!(
            "dwm_net_open_connections",
            "Connections currently open across all acceptor shards"
        )
    }

    pub(super) fn timeouts() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_read_timeouts_total",
            "Connections closed with 408 after the read deadline expired mid-request"
        )
    }

    /// Touches every transport metric so they exist before traffic.
    pub(super) fn register() {
        let _ = (
            accepted(),
            rejected(),
            requests(),
            malformed(),
            queue_depth(),
            handler_latency(),
            wakeups(),
            readiness_depth(),
            open_conns(),
            timeouts(),
        );
    }
}

/// Where a connection's state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes (also the idle keep-alive state).
    Reading,
    /// A parsed request is with the worker pool; the loop only
    /// watches for hangup.
    Handling,
    /// A serialized response is being flushed, possibly across
    /// several `EPOLLOUT` rounds.
    Writing,
}

/// One nonblocking connection owned by a shard's event loop.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    /// The in-flight request carried `connection: close`.
    close_request: bool,
    /// The staged response is the last one on this connection.
    close_after: bool,
    /// A hangup event was observed (peer closed or reset).
    peer_closed: bool,
    /// The fd is currently registered in the poller.
    registered: bool,
    /// The currently registered interest (skip redundant syscalls).
    interest: Interest,
    /// Read deadline, armed only while a partial request is buffered.
    deadline: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, interest: Interest) -> Self {
        Conn {
            stream,
            state: ConnState::Reading,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            close_request: false,
            close_after: false,
            peer_closed: false,
            registered: true,
            interest,
            deadline: None,
        }
    }
}

/// What an event handler decided about a connection's future.
enum Flow {
    Keep,
    Close,
}

/// Flushes as much of the staged response as the socket accepts.
/// `Ok(true)` = fully flushed, `Ok(false)` = socket buffer full.
fn flush_outbuf(conn: &mut Conn) -> io::Result<bool> {
    while conn.outpos < conn.outbuf.len() {
        match (&conn.stream).write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.outpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// One shard: an epoll loop owning a `SO_REUSEPORT` listener, a waker,
/// and every connection the kernel routed to this shard.
struct EventLoop {
    shard: usize,
    shared: Arc<Shared>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Min-heap of `(deadline, token)`, lazily invalidated: an entry
    /// only fires if the conn still carries that exact deadline.
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    shard_accepted: Arc<crate::obs::Counter>,
    shard_open: Arc<crate::obs::Gauge>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(256);
        loop {
            let draining = self.shared.shutdown.load(Ordering::SeqCst);
            if draining {
                self.begin_drain();
                if self.conns.is_empty() {
                    break;
                }
            }
            let timeout = self.next_timeout(draining);
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller cannot make progress; exiting beats
                // spinning. (Never observed outside fd exhaustion.)
                break;
            }
            if !events.is_empty() {
                metrics::wakeups().inc();
                metrics::readiness_depth().set_always(events.len() as i64);
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.on_accept(),
                    TOKEN_WAKER => self.on_wake(),
                    token => self.on_conn_event(token, *ev),
                }
            }
            self.expire_deadlines();
        }
    }

    /// Accepts until the listener runs dry (level-triggered, so any
    /// leftover backlog re-fires on the next wait).
    fn on_accept(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = Interest::readable();
                    if self
                        .poller
                        .register(sys::raw_fd(&stream), token, interest)
                        .is_err()
                    {
                        continue; // dropping the stream closes it
                    }
                    self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    metrics::accepted().inc();
                    self.shard_accepted.inc();
                    self.shared
                        .stats
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    metrics::open_conns().add_always(1);
                    self.shard_open.add_always(1);
                    self.conns.insert(token, Conn::new(stream, interest));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Drains the waker and applies completions workers published.
    fn on_wake(&mut self) {
        self.shared.shards[self.shard].waker.drain();
        let completions = {
            let mut pending = self.shared.shards[self.shard]
                .completions
                .lock()
                .expect("completions lock poisoned");
            std::mem::take(&mut *pending)
        };
        for c in completions {
            self.on_completion(c.token, c.response);
        }
    }

    /// A handler finished: stage and flush its response.
    fn on_completion(&mut self, token: u64, response: Response) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // connection died while the handler ran
        };
        debug_assert_eq!(conn.state, ConnState::Handling);
        self.stage_response(&mut conn, &response, false);
        match self.pump(token, &mut conn) {
            Flow::Keep => {
                self.conns.insert(token, conn);
            }
            Flow::Close => self.drop_conn(conn),
        }
    }

    /// Readiness on a connection fd.
    fn on_conn_event(&mut self, token: u64, ev: PollEvent) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // stale event for an already-closed token
        };
        if ev.hangup {
            conn.peer_closed = true;
        }
        let mut flow = Flow::Keep;
        if ev.readable && conn.state == ConnState::Reading {
            flow = self.fill_inbuf(token, &mut conn);
        }
        if matches!(flow, Flow::Keep) && ev.writable && conn.state == ConnState::Writing {
            flow = self.pump(token, &mut conn);
        }
        if matches!(flow, Flow::Keep) && ev.hangup {
            flow = self.on_hangup(token, &mut conn);
        }
        match flow {
            Flow::Keep => {
                self.conns.insert(token, conn);
            }
            Flow::Close => self.drop_conn(conn),
        }
    }

    /// The peer hung up. Readable data (a request raced with the FIN)
    /// has already been drained by the readable branch.
    fn on_hangup(&mut self, token: u64, conn: &mut Conn) -> Flow {
        match conn.state {
            // Read path observes EOF and closes.
            ConnState::Reading => self.fill_inbuf(token, conn),
            // Try to flush what remains; a reset surfaces as EPIPE.
            ConnState::Writing => self.pump(token, conn),
            // Handler still running: stop watching the fd (a
            // level-triggered hangup would wake every iteration); the
            // completion's write discovers the dead peer.
            ConnState::Handling => {
                if conn.registered {
                    let _ = self.poller.deregister(sys::raw_fd(&conn.stream));
                    conn.registered = false;
                }
                Flow::Keep
            }
        }
    }

    /// Reads until the socket runs dry, feeding the state machine
    /// after every chunk; stops early once a request is dispatched
    /// (one in flight per connection).
    fn fill_inbuf(&mut self, token: u64, conn: &mut Conn) -> Flow {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            if conn.state != ConnState::Reading {
                return Flow::Keep;
            }
            match (&conn.stream).read(&mut buf) {
                // EOF: clean keep-alive teardown if idle; a torn
                // request otherwise — either way nothing more arrives.
                Ok(0) => {
                    conn.peer_closed = true;
                    return Flow::Close;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&buf[..n]);
                    if let Flow::Close = self.pump(token, conn) {
                        return Flow::Close;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flow::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Flow::Close,
            }
        }
    }

    /// Advances the state machine until it blocks: parses buffered
    /// bytes, dispatches complete requests, flushes staged responses,
    /// and loops through the pipelined tail after each response.
    fn pump(&mut self, token: u64, conn: &mut Conn) -> Flow {
        loop {
            match conn.state {
                ConnState::Reading => match parser::try_parse_request(&conn.inbuf) {
                    Ok(Parsed::Incomplete) => {
                        if conn.inbuf.is_empty() {
                            conn.deadline = None;
                        } else if conn.deadline.is_none() {
                            // Partial request buffered: arm the
                            // slow-header deadline. Idle keep-alive
                            // (empty buffer) is deliberately exempt.
                            let deadline = Instant::now() + self.shared.read_deadline;
                            conn.deadline = Some(deadline);
                            self.deadlines.push(Reverse((deadline, token)));
                        }
                        self.update_interest(token, conn, Interest::readable());
                        return Flow::Keep;
                    }
                    Ok(Parsed::Complete(request, consumed)) => {
                        conn.inbuf.drain(..consumed);
                        conn.deadline = None;
                        conn.close_request = request.header("connection") == Some("close");
                        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                        metrics::requests().inc();
                        let job = Job {
                            shard: self.shard,
                            token,
                            request,
                        };
                        match self.shared.queue.try_push(job) {
                            Ok(()) => {
                                metrics::queue_depth().add_always(1);
                                conn.state = ConnState::Handling;
                                // Park read interest; only hangup
                                // matters until the handler returns.
                                self.update_interest(
                                    token,
                                    conn,
                                    Interest {
                                        rdhup: true,
                                        ..Interest::default()
                                    },
                                );
                                return Flow::Keep;
                            }
                            Err(_) => {
                                // Backpressure: answer 503 in-line and
                                // keep the connection unless the
                                // client asked to close.
                                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                                metrics::rejected().inc();
                                self.stage_response(
                                    conn,
                                    &Response::text(503, "server overloaded\n"),
                                    false,
                                );
                            }
                        }
                    }
                    Err(NetError::Malformed(m)) => {
                        self.shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                        metrics::malformed().inc();
                        self.stage_response(conn, &Response::text(400, format!("{m}\n")), true);
                    }
                    // The incremental parser never does I/O.
                    Err(NetError::Io(_)) => return Flow::Close,
                },
                ConnState::Handling => return Flow::Keep,
                ConnState::Writing => match flush_outbuf(conn) {
                    Ok(true) => {
                        if conn.close_after
                            || conn.peer_closed
                            || self.shared.shutdown.load(Ordering::SeqCst)
                        {
                            return Flow::Close;
                        }
                        conn.state = ConnState::Reading;
                        conn.outbuf.clear();
                        conn.outpos = 0;
                        conn.close_request = false;
                        // Loop: parse the pipelined tail, if any.
                    }
                    Ok(false) => {
                        self.update_interest(
                            token,
                            conn,
                            Interest {
                                writable: true,
                                rdhup: !conn.peer_closed,
                                ..Interest::default()
                            },
                        );
                        return Flow::Keep;
                    }
                    Err(_) => return Flow::Close,
                },
            }
        }
    }

    /// Serializes `response` into the connection's output buffer and
    /// moves it to `Writing`. The `connection:` header closes when the
    /// request or server lifecycle demands it.
    fn stage_response(&self, conn: &mut Conn, response: &Response, force_close: bool) {
        let close = force_close
            || conn.close_request
            || conn.peer_closed
            || self.shared.shutdown.load(Ordering::SeqCst);
        conn.outbuf.clear();
        conn.outpos = 0;
        response
            .write_to(&mut conn.outbuf, close)
            .expect("serializing a response into a Vec cannot fail");
        conn.close_after = close;
        conn.state = ConnState::Writing;
    }

    /// Registers or re-registers the fd so its watched interest
    /// matches `want`, skipping redundant syscalls.
    fn update_interest(&mut self, token: u64, conn: &mut Conn, want: Interest) {
        if conn.registered && conn.interest == want {
            return;
        }
        let fd = sys::raw_fd(&conn.stream);
        let result = if conn.registered {
            self.poller.reregister(fd, token, want)
        } else {
            self.poller.register(fd, token, want)
        };
        if result.is_ok() {
            conn.registered = true;
            conn.interest = want;
        }
    }

    /// Fires `408` on connections whose read deadline passed. Entries
    /// are lazily invalidated: a completed parse clears
    /// `conn.deadline`, orphaning its heap entry.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        while let Some(&Reverse((when, token))) = self.deadlines.peek() {
            if when > now {
                break;
            }
            self.deadlines.pop();
            let live = self
                .conns
                .get(&token)
                .is_some_and(|c| c.deadline == Some(when));
            if !live {
                continue;
            }
            let mut conn = self.conns.remove(&token).expect("conn exists");
            conn.deadline = None;
            self.shared.stats.timed_out.fetch_add(1, Ordering::Relaxed);
            metrics::timeouts().inc();
            self.stage_response(
                &mut conn,
                &Response::text(408, "request header timeout\n"),
                true,
            );
            match self.pump(token, &mut conn) {
                Flow::Keep => {
                    self.conns.insert(token, conn);
                }
                Flow::Close => self.drop_conn(conn),
            }
        }
    }

    /// How long the next wait may block: until the nearest live read
    /// deadline, bounded by [`DRAIN_POLL`] while draining.
    fn next_timeout(&mut self, draining: bool) -> Option<Duration> {
        let pending = loop {
            match self.deadlines.peek() {
                Some(&Reverse((when, token))) => {
                    let live = self
                        .conns
                        .get(&token)
                        .is_some_and(|c| c.deadline == Some(when));
                    if live {
                        break Some(when);
                    }
                    self.deadlines.pop();
                }
                None => break None,
            }
        };
        let until = pending.map(|when| when.saturating_duration_since(Instant::now()));
        if draining {
            Some(until.map_or(DRAIN_POLL, |d| d.min(DRAIN_POLL)))
        } else {
            until
        }
    }

    /// First drain step (idempotent): stop accepting and shed idle
    /// connections. In-flight requests (`Handling`/`Writing`) complete
    /// naturally — their responses go out with `connection: close`.
    fn begin_drain(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(sys::raw_fd(&listener));
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Reading)
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            if let Some(conn) = self.conns.remove(&token) {
                self.drop_conn(conn);
            }
        }
    }

    /// Deregisters and drops a connection, keeping the gauges honest.
    fn drop_conn(&mut self, conn: Conn) {
        if conn.registered {
            let _ = self.poller.deregister(sys::raw_fd(&conn.stream));
        }
        self.shared
            .stats
            .open_connections
            .fetch_sub(1, Ordering::Relaxed);
        metrics::open_conns().add_always(-1);
        self.shard_open.add_always(-1);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    // `pop` returns `None` only once the queue is closed and drained,
    // so every dispatched request is answered even across shutdown.
    while let Some(job) = shared.queue.pop() {
        metrics::queue_depth().add_always(-1);
        let response = {
            let _span = metrics::handler_latency().span();
            (shared.handler)(&job.request)
        };
        let shard = &shared.shards[job.shard];
        shard
            .completions
            .lock()
            .expect("completions lock poisoned")
            .push(Completion {
                token: job.token,
                response,
            });
        shard.waker.wake();
    }
}

/// A running TCP server; dropping the handle without calling
/// [`ServerHandle::join`] detaches the threads.
pub struct Server;

/// Handle to a running [`Server`]: address, stats, shutdown, join.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `config.addr` (one `SO_REUSEPORT` listener per shard) and
    /// starts the event loops plus handler workers. `handler` must be
    /// a pure function of the request for the service's determinism
    /// guarantee to hold end to end.
    ///
    /// # Errors
    ///
    /// Propagates bind/poller-setup failures;
    /// `io::ErrorKind::Unsupported` on non-Linux targets (the kqueue
    /// backend is stub-gated).
    pub fn start<H>(config: ServerConfig, handler: H) -> io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        metrics::register();
        // Connections cost one fd each and nothing else; make sure the
        // fd budget — not a 1024 default soft limit — is the ceiling,
        // or a C10k hold would die at accept long before memory.
        sys::raise_nofile_limit();
        let shard_count = if !sys::REUSEPORT {
            1
        } else if config.shards == 0 {
            crate::par::num_threads().clamp(1, MAX_AUTO_SHARDS)
        } else {
            config.shards
        };

        let addr =
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?;
        let first = sys::bind_listener(&addr)?;
        first.set_nonblocking(true)?;
        let local_addr = first.local_addr()?;
        let mut listeners = vec![first];
        // Shard 0 resolved any ephemeral port; the rest share it.
        for _ in 1..shard_count {
            let listener = sys::bind_listener(&local_addr)?;
            listener.set_nonblocking(true)?;
            listeners.push(listener);
        }

        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(ShardState {
                completions: Mutex::new(Vec::new()),
                waker: Waker::new()?,
            });
        }
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            queue: BoundedQueue::new(config.queue_capacity),
            stats: ServerStats::default(),
            handler: Box::new(handler),
            shards,
            read_deadline: config.read_deadline,
        });

        let mut threads = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let poller = Poller::new()?;
            poller.register(sys::raw_fd(&listener), TOKEN_LISTENER, Interest::readable())?;
            poller.register(
                shared.shards[i].waker.fd(),
                TOKEN_WAKER,
                Interest {
                    readable: true,
                    edge: true,
                    ..Interest::default()
                },
            )?;
            let shard_label = i.to_string();
            let event_loop = EventLoop {
                shard: i,
                shared: Arc::clone(&shared),
                poller,
                listener: Some(listener),
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                deadlines: BinaryHeap::new(),
                shard_accepted: crate::obs::global().counter_with(
                    "dwm_net_shard_accepted_total",
                    &[("shard", &shard_label)],
                    "Connections accepted by this acceptor shard",
                ),
                shard_open: crate::obs::global().gauge_with(
                    "dwm_net_shard_open_connections",
                    &[("shard", &shard_label)],
                    "Connections currently open on this acceptor shard",
                ),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dwm-net-loop-{i}"))
                    .spawn(move || event_loop.run())?,
            );
        }
        for i in 0..config.workers.max(1) {
            let worker = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dwm-net-worker-{i}"))
                    .spawn(move || worker_loop(&worker))?,
            );
        }
        Ok(ServerHandle {
            local_addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Signals graceful shutdown: stop accepting, shed idle
    /// connections, drain queued and in-flight requests. Returns
    /// immediately; pair with [`join`](Self::join).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for shard in &self.shared.shards {
            shard.waker.wake();
        }
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for every event loop and worker to exit. Call
    /// [`shutdown`](Self::shutdown) first, or this blocks forever.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
