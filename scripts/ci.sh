#!/usr/bin/env bash
# The full CI gate, runnable locally. Entirely offline: the workspace
# has no registry dependencies (tests/hermetic.rs enforces this), so
# CARGO_NET_OFFLINE=1 must never cause a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== README quickstart smoke"
bash scripts/doc_smoke.sh

echo "== bench regression gate"
bash scripts/bench_gate.sh

echo "CI gate passed"
