//! A lightweight timing harness — the in-tree criterion replacement.
//!
//! Each benchmark auto-calibrates an iteration count so one sample
//! takes roughly a millisecond, runs a warmup, then collects N timed
//! samples and reports min / median / p95 / mean per-iteration times.
//! Results print as an aligned table and can be written as JSON for
//! machine consumption.
//!
//! Environment knobs:
//!
//! * `DWM_BENCH_SAMPLES` — samples per benchmark (default 30)
//! * `DWM_BENCH_WARMUP_MS` — warmup time per benchmark (default 100)
//! * `DWM_BENCH_JSON` — where to write the JSON report: a file path,
//!   or an existing directory (the report lands at `<dir>/<suite>.json`
//!   so one `cargo bench` run with several suites keeps them all)
//!
//! A single positional CLI argument acts as a substring filter on
//! benchmark ids, mirroring `cargo bench <filter>`.
//!
//! [`Harness::bench_threads`] times the same closure at 1 thread and at
//! [`THREAD_POINTS`]`[1]` threads (via [`crate::par::override_threads`])
//! and records both, so parallel speedup is visible in every report.

use std::time::Instant;

use crate::json::{Object, ToJson, Value};

/// Re-export of [`std::hint::black_box`] so benches need no extra
/// imports.
pub use std::hint::black_box;

/// Timing summary of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id (e.g. `placement/chain-growth/fft`).
    pub id: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// 99th-percentile sample. With few samples this degenerates to
    /// the maximum, which is exactly what a tail-latency gate wants.
    pub p99_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
}

crate::json_struct!(BenchResult {
    id,
    iters_per_sample,
    samples,
    min_ns,
    median_ns,
    p95_ns,
    p99_ns,
    mean_ns
});

/// The benchmark harness: collects [`BenchResult`]s and reports them.
///
/// # Example
///
/// ```no_run
/// use dwm_foundation::bench::{black_box, Harness};
///
/// let mut h = Harness::from_env("demo");
/// h.bench("sum/1k", || (0..1000u64).map(black_box).sum::<u64>());
/// h.finish();
/// ```
#[derive(Debug)]
pub struct Harness {
    suite: String,
    samples: usize,
    warmup_ms: u64,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

/// The thread counts [`Harness::bench_threads`] records, low to high.
/// Fixed (rather than `available_parallelism`) so benchmark ids — and
/// therefore the checked-in regression baseline — are machine-stable.
pub const THREAD_POINTS: [usize; 2] = [1, 4];

impl Harness {
    /// A harness configured from the environment and CLI arguments
    /// (see the module docs for the knobs).
    pub fn from_env(suite: &str) -> Self {
        // `cargo bench` invokes bench binaries with `--bench` (and
        // test-harness flags); the first non-flag argument is a
        // substring filter, criterion-style.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self::from_lookup(suite, |key| std::env::var(key).ok(), filter)
    }

    /// [`Harness::from_env`] with the environment abstracted behind
    /// `lookup`, so the knob parsing is testable without mutating the
    /// process environment.
    pub fn from_lookup<L: Fn(&str) -> Option<String>>(
        suite: &str,
        lookup: L,
        filter: Option<String>,
    ) -> Self {
        let samples = lookup("DWM_BENCH_SAMPLES")
            .and_then(|v| v.parse().ok())
            .unwrap_or(30)
            .max(3);
        let warmup_ms = lookup("DWM_BENCH_WARMUP_MS")
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Harness {
            suite: suite.to_owned(),
            samples,
            warmup_ms,
            filter,
            results: Vec::new(),
        }
    }

    /// Overrides the sample count (primarily for tests).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(3);
        self
    }

    /// Overrides the warmup budget in milliseconds.
    pub fn with_warmup_ms(mut self, warmup_ms: u64) -> Self {
        self.warmup_ms = warmup_ms;
        self
    }

    /// Whether a CLI filter is set and `id` does not contain it.
    fn filtered_out(&self, id: &str) -> bool {
        self.filter
            .as_ref()
            .is_some_and(|f| !id.contains(f.as_str()))
    }

    /// Sorts `sample_ns`, derives the summary statistics, prints the
    /// table row, and records the result under `id`.
    fn record(&mut self, id: &str, iters: u64, mut sample_ns: Vec<f64>) {
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| sample_ns[((sample_ns.len() - 1) as f64 * q).round() as usize];
        let result = BenchResult {
            id: id.to_owned(),
            iters_per_sample: iters,
            samples: sample_ns.len(),
            min_ns: sample_ns[0],
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            p99_ns: pick(0.99),
            mean_ns: sample_ns.iter().sum::<f64>() / sample_ns.len() as f64,
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            result.id,
            format_ns(result.median_ns),
            format_ns(result.p95_ns),
            format_ns(result.min_ns),
        );
        self.results.push(result);
    }

    /// Times `f`, recording the result under `id`. Skipped (silently)
    /// when a CLI filter is set and `id` does not contain it.
    pub fn bench<R, F: FnMut() -> R>(&mut self, id: &str, mut f: F) {
        if self.filtered_out(id) {
            return;
        }
        let iters = calibrate(&mut f);

        let warmup_deadline = Instant::now();
        while warmup_deadline.elapsed().as_millis() < self.warmup_ms as u128 {
            black_box(f());
        }

        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            sample_ns.push(time_sample(&mut f, iters));
        }
        self.record(id, iters, sample_ns);
    }

    /// Times `fa` and `fb` with *alternating* samples, recording them
    /// under `id_a` and `id_b`.
    ///
    /// Both closures share one iteration count (calibrated on `fa`),
    /// and every sample of one side is taken immediately next to a
    /// sample of the other — so machine-load drift over the run lands
    /// on both sides roughly equally instead of inflating whichever
    /// side happened to run during a spike. Use this when a gate
    /// bounds the *ratio* of the two results tightly (e.g. the
    /// observability-overhead pair in `scripts/bench_gate.sh`, bounded
    /// at 5% — far below the run-to-run noise a sequential A-then-B
    /// layout exhibits on a shared machine).
    ///
    /// A CLI filter applies per id: a side whose id does not match is
    /// still timed (the alternation is the point) but not recorded.
    pub fn bench_pair<RA, RB, FA: FnMut() -> RA, FB: FnMut() -> RB>(
        &mut self,
        id_a: &str,
        id_b: &str,
        mut fa: FA,
        mut fb: FB,
    ) {
        if self.filtered_out(id_a) && self.filtered_out(id_b) {
            return;
        }
        let iters = calibrate(&mut fa);

        let warmup_deadline = Instant::now();
        while warmup_deadline.elapsed().as_millis() < self.warmup_ms as u128 {
            black_box(fa());
            black_box(fb());
        }

        let mut a_ns = Vec::with_capacity(self.samples);
        let mut b_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            a_ns.push(time_sample(&mut fa, iters));
            b_ns.push(time_sample(&mut fb, iters));
        }
        if !self.filtered_out(id_a) {
            self.record(id_a, iters, a_ns);
        }
        if !self.filtered_out(id_b) {
            self.record(id_b, iters, b_ns);
        }
    }

    /// Times `f` once per entry of [`THREAD_POINTS`], recording
    /// `{id}/t{n}` under a [`crate::par::override_threads`] guard for
    /// each, so the report shows sequential-vs-parallel medians side by
    /// side. The closure should run a `par_*`-based workload for the
    /// comparison to mean anything.
    pub fn bench_threads<R, F: FnMut() -> R>(&mut self, id: &str, mut f: F) {
        for threads in THREAD_POINTS {
            let _guard = crate::par::override_threads(threads);
            self.bench(&format!("{id}/t{threads}"), &mut f);
        }
    }

    /// The collected results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The whole run as a JSON value (`{"suite": …, "results": […]}`).
    pub fn to_json(&self) -> Value {
        let mut obj = Object::new();
        obj.insert("suite", Value::Str(self.suite.clone()));
        obj.insert("results", self.results.to_json());
        Value::Obj(obj)
    }

    /// Prints the footer and, when `DWM_BENCH_JSON` is set, writes the
    /// JSON report there. A directory value receives
    /// `<dir>/<suite>.json`; anything else is treated as a file path.
    pub fn finish(self) {
        println!(
            "{} benchmark(s) in suite '{}' (median/p95/min per iteration)",
            self.results.len(),
            self.suite
        );
        if let Ok(path) = std::env::var("DWM_BENCH_JSON") {
            let target = if std::path::Path::new(&path).is_dir() {
                format!("{path}/{}.json", self.suite)
            } else {
                path
            };
            let json = self.to_json().to_pretty();
            if let Err(e) = std::fs::write(&target, json) {
                eprintln!("warning: could not write {target}: {e}");
            }
        }
    }
}

/// Grows the per-sample iteration count until one sample costs ≳ 1 ms
/// (so timer resolution is negligible).
fn calibrate<R, F: FnMut() -> R>(f: &mut F) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed.as_micros() >= 1000 || iters >= 1 << 30 {
            break;
        }
        // Aim straight at 1.2 ms instead of stepping by doubling.
        let per_iter = elapsed.as_nanos().max(1) as u64 / iters;
        iters = (1_200_000 / per_iter.max(1)).max(iters * 2).min(1 << 30);
    }
    iters
}

/// One timed sample: `iters` calls of `f`, returned as ns/iteration.
fn time_sample<R, F: FnMut() -> R>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A log-bucketed latency histogram over `u64` values (nanoseconds by
/// convention).
///
/// Values are binned into buckets of the form `2^e · (64 + m) / 64`
/// (64 sub-buckets per power of two), giving ≤ ~1.6% relative
/// quantization error across the full `u64` range in a fixed 4 KiB-ish
/// footprint — enough resolution for p50/p95/p99 reporting without
/// keeping every sample. Used by the `serve_load` load generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

/// Sub-buckets per power of two in [`Histogram`].
const HIST_SUB: u64 = 64;

/// Total bucket count (64 exponents × [`HIST_SUB`] sub-buckets covers
/// all of `u64`). Shared with [`crate::obs`], whose atomic histogram
/// uses the same layout.
pub(crate) const HIST_BUCKETS: usize = 64 * HIST_SUB as usize;

/// The bucket index `value` falls in — exposed crate-internally so
/// [`crate::obs::Histogram`] bins identically to [`Histogram`].
#[inline]
pub(crate) fn hist_bucket(value: u64) -> usize {
    Histogram::bucket(value)
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // 64 exponents × 64 sub-buckets covers all of u64.
        Histogram {
            counts: vec![0; 64 * HIST_SUB as usize],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(value: u64) -> usize {
        let v = value.max(1);
        let e = 63 - v.leading_zeros() as u64; // floor(log2 v)
        let sub = if e >= 6 {
            (v >> (e - 6)) - HIST_SUB // top 6 mantissa bits after the leader
        } else {
            (v << (6 - e)) - HIST_SUB
        };
        (e * HIST_SUB + sub) as usize
    }

    /// Rebuilds a histogram from a raw bucket snapshot — how
    /// [`crate::obs::Histogram::snapshot`] converts its atomic counts
    /// into a queryable value. `counts` must use the [`HIST_BUCKETS`]
    /// layout; `min`/`max` keep their empty-state sentinels
    /// (`u64::MAX`/`0`) when `total` is zero.
    pub(crate) fn from_raw(counts: Vec<u64>, total: u64, min: u64, max: u64) -> Self {
        debug_assert_eq!(counts.len(), HIST_BUCKETS);
        Histogram {
            counts,
            total,
            min,
            max,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a representative bucket
    /// value, or `None` when empty. Exact at the bucket resolution.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((self.total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, self.total);
        if rank == self.total {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Representative value: lower edge of the bucket.
                let e = i as u64 / HIST_SUB;
                let sub = i as u64 % HIST_SUB;
                let lower = if e >= 6 {
                    (HIST_SUB + sub) << (e - 6)
                } else {
                    (HIST_SUB + sub) >> (6 - e)
                };
                return Some(lower.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::from_str;

    fn tiny() -> Harness {
        Harness {
            suite: "test".into(),
            samples: 5,
            warmup_ms: 0,
            filter: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_produces_ordered_statistics() {
        let mut h = tiny();
        h.bench("noop", || black_box(1u64 + 1));
        let r = &h.results()[0];
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.p99_ns);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut h = tiny();
        h.filter = Some("keep".into());
        h.bench("keep/this", || black_box(0u8));
        h.bench("drop/this", || black_box(0u8));
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].id, "keep/this");
    }

    #[test]
    fn bench_pair_records_both_sides_with_shared_iters() {
        let mut h = tiny();
        h.bench_pair(
            "pair/a",
            "pair/b",
            || black_box(1u64 + 1),
            || black_box(2u64 + 2),
        );
        let ids: Vec<&str> = h.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["pair/a", "pair/b"]);
        assert_eq!(
            h.results()[0].iters_per_sample,
            h.results()[1].iters_per_sample,
            "pair sides must be sampled at the same iteration count"
        );
        assert_eq!(h.results()[0].samples, 5);
        assert_eq!(h.results()[1].samples, 5);
    }

    #[test]
    fn bench_pair_filter_applies_per_side() {
        let mut h = tiny();
        h.filter = Some("keep".into());
        h.bench_pair("keep/a", "drop/b", || black_box(0u8), || black_box(0u8));
        h.bench_pair("drop/c", "drop/d", || black_box(0u8), || black_box(0u8));
        let ids: Vec<&str> = h.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["keep/a"]);
    }

    #[test]
    fn json_report_round_trips() {
        let mut h = tiny();
        h.bench("a", || black_box(2u32 * 2));
        let json = h.to_json().to_compact();
        let v = crate::json::parse(&json).unwrap();
        let results = v.as_object().unwrap().get("results").unwrap();
        let back: Vec<BenchResult> = from_str::<Vec<BenchResult>>(&results.to_compact()).unwrap();
        assert_eq!(back, h.results());
    }

    #[test]
    fn from_lookup_parses_env_knobs() {
        let env = |key: &str| match key {
            "DWM_BENCH_SAMPLES" => Some("12".to_string()),
            "DWM_BENCH_WARMUP_MS" => Some("7".to_string()),
            _ => None,
        };
        let h = Harness::from_lookup("suite", env, Some("flt".into()));
        assert_eq!(h.samples, 12);
        assert_eq!(h.warmup_ms, 7);
        assert_eq!(h.filter.as_deref(), Some("flt"));
    }

    #[test]
    fn from_lookup_defaults_and_clamps() {
        // No knobs set: defaults.
        let h = Harness::from_lookup("s", |_| None, None);
        assert_eq!(h.samples, 30);
        assert_eq!(h.warmup_ms, 100);
        assert_eq!(h.filter, None);
        // Garbage values fall back; tiny sample counts clamp to 3.
        let env = |key: &str| match key {
            "DWM_BENCH_SAMPLES" => Some("1".to_string()),
            "DWM_BENCH_WARMUP_MS" => Some("banana".to_string()),
            _ => None,
        };
        let h = Harness::from_lookup("s", env, None);
        assert_eq!(h.samples, 3);
        assert_eq!(h.warmup_ms, 100);
    }

    #[test]
    fn substring_filter_applies_to_thread_variants_too() {
        let _l = crate::par::TEST_OVERRIDE_LOCK.lock().unwrap();
        let mut h = tiny();
        h.filter = Some("keep".into());
        h.bench_threads("keep/job", || black_box(1u8));
        h.bench_threads("drop/job", || black_box(1u8));
        let ids: Vec<&str> = h.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["keep/job/t1", "keep/job/t4"]);
    }

    #[test]
    fn bench_threads_records_every_thread_point() {
        let _l = crate::par::TEST_OVERRIDE_LOCK.lock().unwrap();
        let mut h = tiny();
        h.bench_threads("tp", || {
            crate::par::par_map(&[1u64, 2, 3], |&x| black_box(x + 1))
        });
        let ids: Vec<&str> = h.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["tp/t1", "tp/t4"]);
    }

    #[test]
    fn histogram_percentiles_track_recorded_values() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in ns
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1000));
        assert_eq!(h.max(), Some(1_000_000));
        // Log-bucketing quantizes to ≤ ~1.6%; allow 5% slack.
        let p50 = h.percentile(0.5).unwrap() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50 {p50}");
        let p99 = h.percentile(0.99).unwrap() as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99 {p99}");
        assert_eq!(h.percentile(0.0), Some(1000));
        assert_eq!(h.percentile(1.0), Some(1_000_000));
    }

    #[test]
    fn histogram_merge_and_empty_behaviour() {
        let empty = Histogram::new();
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(empty.min(), None);
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
        // Extreme values (0 maps to the bottom bucket) stay in range.
        let mut z = Histogram::new();
        z.record(0);
        z.record(u64::MAX);
        assert_eq!(z.count(), 2);
        assert!(z.percentile(0.5).is_some());
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(1500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.00 s");
    }
}
