//! F7: algorithm runtime scaling with item count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dwm_bench::{markov_fixture, BENCH_SEED};
use dwm_core::algorithms::{
    ChainGrowth, GroupedChainGrowth, Hybrid, OrganPipe, PlacementAlgorithm, SimulatedAnnealing,
    Spectral,
};

fn algorithm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_scaling");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let (_, graph) = markov_fixture(n);
        let algs: Vec<Box<dyn PlacementAlgorithm>> = vec![
            Box::new(OrganPipe),
            Box::new(ChainGrowth),
            Box::new(GroupedChainGrowth),
            Box::new(Spectral::default()),
            Box::new(Hybrid::default()),
            Box::new(SimulatedAnnealing::new(BENCH_SEED).with_iterations(5_000)),
        ];
        for alg in algs {
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &graph, |b, g| {
                b.iter(|| alg.place(std::hint::black_box(g)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, algorithm_scaling);
criterion_main!(benches);
