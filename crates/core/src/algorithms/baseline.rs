use dwm_foundation::Rng;

use dwm_graph::AccessGraph;

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Naive baseline: items are laid out in the order the program first
/// touches them (the identity placement on a normalized trace).
///
/// This is what a bump allocator or a compiler with no DWM awareness
/// produces, and it is the normalization baseline of every figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrderOfAppearance;

impl PlacementAlgorithm for OrderOfAppearance {
    fn name(&self) -> String {
        "naive".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        Placement::identity(graph.num_items())
    }
}

/// Randomized baseline: a uniformly random permutation (seeded).
///
/// Random placement is the expected behaviour of hash-based allocation
/// and bounds how much structure the other algorithms actually exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomPlacement {
    /// RNG seed; the same seed always yields the same permutation.
    pub seed: u64,
}

impl RandomPlacement {
    /// A random placement with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPlacement { seed }
    }
}

impl PlacementAlgorithm for RandomPlacement {
    fn name(&self) -> String {
        "random".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut order: Vec<usize> = (0..graph.num_items()).collect();
        Rng::seed_from_u64(self.seed).shuffle(&mut order);
        Placement::from_order(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_identity() {
        let g = AccessGraph::with_items(5);
        let p = OrderOfAppearance.place(&g);
        assert_eq!(p, Placement::identity(5));
        assert_eq!(OrderOfAppearance.name(), "naive");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let g = AccessGraph::with_items(20);
        assert_eq!(
            RandomPlacement::new(9).place(&g),
            RandomPlacement::new(9).place(&g)
        );
        assert_ne!(
            RandomPlacement::new(9).place(&g),
            RandomPlacement::new(10).place(&g)
        );
    }

    #[test]
    fn random_handles_tiny_graphs() {
        for n in 0..3 {
            let g = AccessGraph::with_items(n);
            assert_eq!(RandomPlacement::new(1).place(&g).num_items(), n);
        }
    }
}
