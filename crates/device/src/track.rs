/// A single magnetic nanowire holding one bit per domain.
///
/// The track models the *physical* layout: a data region of `L` domains
/// flanked by padding domains so the data can shift under the ports
/// without falling off either end. The track's state is the bit value
/// of every physical domain plus the current *displacement* — how far
/// the domain train has been moved from its rest position. Displacement
/// `s` means the bit logically at data index `i` is physically under
/// position `i - s` relative to the rest-position origin.
///
/// [`Dbc`](crate::Dbc) shifts `W` tracks in lockstep; `Track` exists so
/// bit-level behaviour (and wear) can be tested in isolation.
///
/// # Example
///
/// ```
/// use dwm_device::Track;
///
/// let mut track = Track::new(8, 7);
/// track.set_bit(3, true);
/// assert!(track.bit(3));
/// track.shift_to(3 - 0); // align data index 3 with a port at position 0
/// assert_eq!(track.displacement(), 3);
/// assert!(track.bit(3)); // logical content is unchanged by shifting
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Logical data bits, indexed by data offset. Shifting moves the
    /// whole train physically, so logical content never changes; we
    /// model the physical motion with `displacement` and a wear vector.
    bits: Vec<bool>,
    /// Current displacement of the domain train from rest.
    displacement: i64,
    /// Minimum / maximum displacement allowed by the padding domains.
    min_displacement: i64,
    max_displacement: i64,
    /// Total single-domain shift steps performed (wear proxy).
    shift_steps: u64,
}

dwm_foundation::json_struct!(Track {
    bits,
    displacement,
    min_displacement,
    max_displacement,
    shift_steps
});

impl Track {
    /// Creates a track with `data_len` data domains and enough padding
    /// for displacements in `[-(data_len - 1 - first_port), last_port]`
    /// expressed here as a symmetric bound of `padding` domains on each
    /// side. The caller ([`Dbc`](crate::Dbc)) computes the padding from
    /// the port layout.
    pub fn new(data_len: usize, padding: usize) -> Self {
        Track {
            bits: vec![false; data_len],
            displacement: 0,
            min_displacement: -(padding as i64),
            max_displacement: padding as i64,
            shift_steps: 0,
        }
    }

    /// Number of data domains.
    pub fn data_len(&self) -> usize {
        self.bits.len()
    }

    /// Current displacement of the domain train.
    pub fn displacement(&self) -> i64 {
        self.displacement
    }

    /// Total single-domain shift steps performed so far.
    pub fn shift_steps(&self) -> u64 {
        self.shift_steps
    }

    /// Reads the bit at logical data index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= data_len` (the DBC validates offsets first).
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Writes the bit at logical data index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= data_len`.
    pub fn set_bit(&mut self, i: usize, v: bool) {
        self.bits[i] = v;
    }

    /// Shifts the train to displacement `target`, clamped to the range
    /// the padding allows, and returns the number of single-domain steps
    /// taken.
    pub fn shift_to(&mut self, target: i64) -> u64 {
        let target = target.clamp(self.min_displacement, self.max_displacement);
        let steps = target.abs_diff(self.displacement);
        self.displacement = target;
        self.shift_steps += steps;
        steps
    }

    /// Resets displacement to rest without counting wear (models a
    /// power-down park operation used between workload phases).
    pub fn park(&mut self) {
        self.displacement = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_track_is_zeroed_and_at_rest() {
        let t = Track::new(16, 15);
        assert_eq!(t.data_len(), 16);
        assert_eq!(t.displacement(), 0);
        assert_eq!(t.shift_steps(), 0);
        assert!((0..16).all(|i| !t.bit(i)));
    }

    #[test]
    fn shifting_accumulates_steps() {
        let mut t = Track::new(8, 7);
        assert_eq!(t.shift_to(5), 5);
        assert_eq!(t.shift_to(2), 3);
        assert_eq!(t.shift_to(2), 0);
        assert_eq!(t.shift_steps(), 8);
        assert_eq!(t.displacement(), 2);
    }

    #[test]
    fn shifting_is_clamped_by_padding() {
        let mut t = Track::new(8, 3);
        assert_eq!(t.shift_to(100), 3);
        assert_eq!(t.displacement(), 3);
        assert_eq!(t.shift_to(-100), 6);
        assert_eq!(t.displacement(), -3);
    }

    #[test]
    fn logical_bits_survive_shifting() {
        let mut t = Track::new(4, 3);
        t.set_bit(0, true);
        t.set_bit(3, true);
        t.shift_to(3);
        t.shift_to(-2);
        assert!(t.bit(0));
        assert!(!t.bit(1));
        assert!(t.bit(3));
    }

    #[test]
    fn park_resets_without_wear() {
        let mut t = Track::new(4, 3);
        t.shift_to(2);
        let wear = t.shift_steps();
        t.park();
        assert_eq!(t.displacement(), 0);
        assert_eq!(t.shift_steps(), wear);
    }
}
