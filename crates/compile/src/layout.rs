//! The data-layout pass: program → trace → placement → per-array map.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{Placement, PlacementAlgorithm};
use dwm_graph::AccessGraph;
use dwm_trace::Trace;

use crate::exec::{execute, ExecError};
use crate::ir::{ArrayId, Program};

/// A computed layout: the placement over the program's data items plus
/// its predicted cost against the naive declaration-order layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    /// The trace the layout was derived from.
    pub trace: Trace,
    /// Item placement (items are array blocks in declaration order).
    pub placement: Placement,
    /// Shift count of the naive declaration-order layout.
    pub naive_shifts: u64,
    /// Shift count of the computed layout.
    pub tuned_shifts: u64,
    /// Item bases per array (for [`DataLayout::offset_of`]).
    array_bases: Vec<usize>,
    /// Block size per array.
    array_blocks: Vec<usize>,
}

impl DataLayout {
    /// Tape offset assigned to element `index` of `array`.
    ///
    /// # Panics
    ///
    /// Panics if the array id or element index is out of range.
    pub fn offset_of(&self, array: ArrayId, index: usize) -> usize {
        let item = self.array_bases[array.0] + index / self.array_blocks[array.0];
        self.placement.offset_of(item)
    }

    /// Fractional shift reduction over the naive layout (0.0 when the
    /// naive layout was already optimal).
    pub fn reduction(&self) -> f64 {
        if self.naive_shifts == 0 {
            0.0
        } else {
            (self.naive_shifts as f64 - self.tuned_shifts as f64) / self.naive_shifts as f64
        }
    }
}

/// Runs the full pass: execute `program`, build the access graph, place
/// with `algorithm`, and cost both layouts.
///
/// # Errors
///
/// Propagates [`ExecError`] from program execution.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn assign_layout(
    program: &Program,
    algorithm: &dyn PlacementAlgorithm,
) -> Result<DataLayout, ExecError> {
    let trace = execute(program)?;
    // Items are dense by construction (array blocks in declaration
    // order), but a program need not touch every block; pad the graph
    // to the program's full item count so untouched blocks still get
    // offsets.
    let mut graph = AccessGraph::with_items(program.total_items());
    for pair in trace.accesses().windows(2) {
        let (u, v) = (pair[0].item.index(), pair[1].item.index());
        if u != v {
            graph.add_weight(u, v, 1);
        }
    }
    for a in trace.iter() {
        let i = a.item.index();
        graph.set_frequency(i, graph.frequency(i) + 1);
    }
    let placement = algorithm.place(&graph);
    let model = SinglePortCost::new();
    let naive_shifts = model
        .trace_cost(&Placement::identity(program.total_items()), &trace)
        .stats
        .shifts;
    let tuned_shifts = model.trace_cost(&placement, &trace).stats.shifts;
    Ok(DataLayout {
        trace,
        placement,
        naive_shifts,
        tuned_shifts,
        array_bases: (0..program.arrays().len())
            .map(|a| program.array_base(ArrayId(a)))
            .collect(),
        array_blocks: program.arrays().iter().map(|a| a.block).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AffineExpr;
    use dwm_core::Hybrid;

    /// y[i] += a[i] * x[col(i)] with a strided gather.
    fn gather_program() -> Program {
        let mut p = Program::new();
        let a = p.array("a", 16, 2);
        let x = p.array("x", 32, 2);
        let y = p.array("y", 16, 2);
        let i = p.loop_var("i");
        p.for_loop(i, 0, 16, |b| {
            b.read(y, AffineExpr::var(i));
            b.read(a, AffineExpr::var(i));
            b.read(x, AffineExpr::var(i).scale(5).modulo(32));
            b.write(y, AffineExpr::var(i));
        });
        p
    }

    #[test]
    fn layout_improves_on_naive() {
        let layout = assign_layout(&gather_program(), &Hybrid::default()).unwrap();
        assert!(layout.tuned_shifts <= layout.naive_shifts);
        assert!(layout.reduction() >= 0.0);
    }

    #[test]
    fn every_element_gets_a_unique_block_offset() {
        let p = gather_program();
        let layout = assign_layout(&p, &Hybrid::default()).unwrap();
        let mut offsets = std::collections::HashSet::new();
        for (aid, decl) in p.arrays().iter().enumerate() {
            for block in 0..decl.items() {
                let off = layout.offset_of(ArrayId(aid), block * decl.block);
                assert!(offsets.insert(off), "offset {off} assigned twice");
            }
        }
        assert_eq!(offsets.len(), p.total_items());
    }

    #[test]
    fn elements_in_same_block_share_an_offset() {
        let p = gather_program();
        let layout = assign_layout(&p, &Hybrid::default()).unwrap();
        let a = ArrayId(0); // block = 2
        assert_eq!(layout.offset_of(a, 0), layout.offset_of(a, 1));
        assert_ne!(layout.offset_of(a, 0), layout.offset_of(a, 2));
    }

    #[test]
    fn untouched_blocks_still_get_offsets() {
        let mut p = Program::new();
        let a = p.array("a", 8, 1);
        // Touch only element 0.
        p.access(a, AffineExpr::constant(0), false);
        let layout = assign_layout(&p, &Hybrid::default()).unwrap();
        assert_eq!(layout.placement.num_items(), 8);
        let _ = layout.offset_of(a, 7); // must not panic
    }

    #[test]
    fn exec_errors_propagate() {
        let mut p = Program::new();
        let a = p.array("a", 2, 1);
        p.access(a, AffineExpr::constant(5), false);
        assert!(assign_layout(&p, &Hybrid::default()).is_err());
    }
}
