//! The compiler view: build a loop nest, run the data-layout pass.
//!
//! Writes a small linear-algebra program in the affine IR, executes it
//! to its exact access trace, and lets the layout pass assign every
//! array block a tape offset.
//!
//! ```text
//! cargo run --release --example layout_pass
//! ```

use dwm_placement::compile::ir::{AffineExpr, Program};
use dwm_placement::compile::layout::assign_layout;
use dwm_placement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A banded matrix-vector product with a wrap-around gather:
    //   for i in 0..24:
    //     y[i] = y[i] + d[i]·x[i] + u[i]·x[(i+7) mod 24] + l[i]·x[(i+17) mod 24]
    let mut p = Program::new();
    let d = p.array("diag", 24, 2);
    let u = p.array("upper", 24, 2);
    let l = p.array("lower", 24, 2);
    let x = p.array("x", 24, 2);
    let y = p.array("y", 24, 2);
    let i = p.loop_var("i");
    p.for_loop(i, 0, 24, |b| {
        b.read(y, AffineExpr::var(i));
        b.read(d, AffineExpr::var(i));
        b.read(x, AffineExpr::var(i));
        b.read(u, AffineExpr::var(i));
        b.read(x, AffineExpr::var(i).offset(7).modulo(24));
        b.read(l, AffineExpr::var(i));
        b.read(x, AffineExpr::var(i).offset(17).modulo(24));
        b.write(y, AffineExpr::var(i));
    });

    let layout = assign_layout(&p, &Hybrid::default())?;
    println!(
        "program: {} accesses over {} blocks",
        layout.trace.len(),
        layout.placement.num_items()
    );
    println!(
        "layout pass: {} -> {} shifts ({:.1}% reduction)",
        layout.naive_shifts,
        layout.tuned_shifts,
        layout.reduction() * 100.0
    );

    // Where did the pass put things? Show x's blocks: the gather makes
    // them the hot set, so they should sit clustered mid-tape.
    let x_offsets: Vec<usize> = (0..12).map(|blk| layout.offset_of(x, blk * 2)).collect();
    println!("x block offsets: {x_offsets:?}");

    // Verify the layout on the bit-level simulator.
    let config = DeviceConfig::builder()
        .domains_per_track(layout.placement.num_items())
        .tracks_per_dbc(32)
        .build()?;
    let mut sim = SpmSimulator::new(&config, &layout.placement)?;
    let report = sim.run(&layout.trace)?;
    assert_eq!(report.stats.shifts, layout.tuned_shifts);
    println!("simulator confirms: {report}");
    Ok(())
}
