//! Minimal HTTP/1.1-style framing and a bounded-queue TCP server.
//!
//! The serving subsystem (`dwm-serve`) needs a long-running daemon, but
//! the workspace is hermetic — no tokio, no hyper. This module covers
//! exactly what a placement service requires with `std` only:
//!
//! * [`Request`]/[`Response`] — a request parser and response writer
//!   for the HTTP/1.1 subset the service speaks (request line, headers,
//!   `Content-Length` bodies, keep-alive connections);
//! * [`BoundedQueue`] — a capacity-limited MPMC handoff queue whose
//!   `try_push` refuses work when full, giving the server backpressure
//!   instead of unbounded memory growth;
//! * [`Server`] — an accept loop plus a fixed worker pool. Accepted
//!   connections are pushed onto the bounded queue; when the queue is
//!   full the acceptor answers `503` immediately and closes. Shutdown
//!   is graceful: the acceptor stops, queued and in-flight requests are
//!   drained to completion, and every worker joins.
//!
//! Determinism note: nothing here reorders requests *within* one
//! connection, so a single client always observes its responses in
//! request order; cross-connection scheduling is left to the OS, which
//! is fine because the service's response bodies are a pure function of
//! the request.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on header lines per request.
const MAX_HEADERS: usize = 64;
/// Hard cap on one header or request line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Hard cap on a request body, in bytes (64 MiB — a multi-million
/// access trace in JSON still fits comfortably).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// Error while reading or parsing a request.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error.
    Io(io::Error),
    /// The peer sent something that is not a well-formed request.
    Malformed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One parsed request: method, path, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path, verbatim (`/solve`).
    pub path: String,
    /// Header name/value pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// A request with no headers and no body (test/client helper).
    pub fn new(method: &str, path: &str) -> Self {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `POST` carrying `body` (client helper).
    pub fn post(path: &str, body: impl Into<Vec<u8>>) -> Self {
        Request {
            method: "POST".to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// First value of header `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Serializes the request in wire form (client side).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method, self.path)?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reads one line terminated by `\n`, stripping the optional `\r`.
/// Returns `Ok(None)` on clean EOF before the first byte.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, NetError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(NetError::Malformed("unexpected EOF in line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| NetError::Malformed("non-UTF-8 header line".into()));
                }
                if line.len() >= MAX_LINE {
                    return Err(NetError::Malformed("header line too long".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// Reads one request off `r`. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive teardown).
///
/// # Errors
///
/// [`NetError::Malformed`] on protocol violations (bad request line,
/// oversized headers/body, missing UTF-8), [`NetError::Io`] on socket
/// errors — including read timeouts, which surface as
/// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`].
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, NetError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(NetError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let Some(line) = read_line(r)? else {
            return Err(NetError::Malformed("EOF in headers".into()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(NetError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(NetError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| NetError::Malformed(format!("bad content-length {value:?}")))?;
            if content_length > MAX_BODY {
                return Err(NetError::Malformed("body too large".into()));
            }
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    }))
}

/// One response: status code plus headers and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 400, 404, 503, …).
    pub status: u16,
    /// Extra headers (content-length and connection are added by the
    /// writer).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: sets `content-type: application/json`.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: body.into(),
        }
    }

    /// Appends a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// First value of header `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response in wire form. `close` adds
    /// `connection: close` (sent on the last response before teardown).
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(
            w,
            "connection: {}\r\n\r\n",
            if close { "close" } else { "keep-alive" }
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reads one response off `r` (client side). `Ok(None)` on clean EOF.
///
/// # Errors
///
/// Same contract as [`read_request`].
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Option<Response>, NetError> {
    let Some(status_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = status_line.split_whitespace();
    let status = parts
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| NetError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let Some(line) = read_line(r)? else {
            return Err(NetError::Malformed("EOF in headers".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(NetError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| NetError::Malformed(format!("bad content-length {value:?}")))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Some(Response {
        status,
        headers,
        body,
    }))
}

/// A capacity-bounded MPMC queue with closing semantics.
///
/// `try_push` never blocks: a full (or closed) queue hands the item
/// straight back, which is how the accept loop converts overload into
/// an immediate `503` instead of queueing unboundedly. `pop` blocks
/// until an item arrives or the queue is closed *and* drained, so
/// workers naturally finish all accepted work before exiting.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    ///
    /// # Errors
    ///
    /// The rejected item itself, so the caller can dispose of it (e.g.
    /// answer `503` on the connection).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is open and
    /// empty. `None` means closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending items remain poppable, new pushes are
    /// rejected, and blocked `pop`s wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accept-queue capacity; beyond it new connections get `503`.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: crate::par::num_threads(),
            queue_capacity: 128,
        }
    }
}

/// Counters the server keeps while running (all monotonic).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted onto the work queue.
    pub accepted: AtomicU64,
    /// Connections refused with `503` because the queue was full.
    pub rejected: AtomicU64,
    /// Requests answered (any status).
    pub requests: AtomicU64,
    /// Requests that failed to parse (answered `400`).
    pub malformed: AtomicU64,
}

struct ServerShared {
    shutdown: AtomicBool,
    queue: BoundedQueue<TcpStream>,
    stats: ServerStats,
    handler: Box<dyn Fn(&Request) -> Response + Send + Sync>,
}

/// Accessors for the transport metrics in the [`crate::obs::global`]
/// registry. Called once at server start so a scrape shows the full
/// family at zero, then reused per event via the macro's call-site
/// cache.
mod metrics {
    use crate::obs;

    pub(super) fn accepted() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_connections_accepted_total",
            "Connections accepted onto the server work queue"
        )
    }

    pub(super) fn rejected() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_connections_rejected_total",
            "Connections refused with 503 because the accept queue was full"
        )
    }

    pub(super) fn requests() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_requests_total",
            "Requests parsed off connections and answered (any status)"
        )
    }

    pub(super) fn malformed() -> &'static obs::Counter {
        crate::obs_counter!(
            "dwm_net_malformed_requests_total",
            "Requests that failed to parse and were answered 400"
        )
    }

    pub(super) fn queue_depth() -> &'static obs::Gauge {
        crate::obs_gauge!(
            "dwm_net_queue_depth",
            "Connections currently waiting in the accept queue"
        )
    }

    pub(super) fn handler_latency() -> &'static obs::Histogram {
        crate::obs_histogram!(
            "dwm_net_handler_latency_ns",
            "Wall-clock nanoseconds spent inside the request handler"
        )
    }

    /// Touches every transport metric so they exist before traffic.
    pub(super) fn register() {
        let _ = (
            accepted(),
            rejected(),
            requests(),
            malformed(),
            queue_depth(),
            handler_latency(),
        );
    }
}

/// A running TCP server; dropping the handle without calling
/// [`ServerHandle::join`] detaches the threads.
pub struct Server;

/// Handle to a running [`Server`]: address, stats, shutdown, join.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `config.addr` and starts the accept loop plus workers.
    /// `handler` must be a pure function of the request for the
    /// service's determinism guarantee to hold end to end.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start<H>(config: ServerConfig, handler: H) -> io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        metrics::register();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            shutdown: AtomicBool::new(false),
            queue: BoundedQueue::new(config.queue_capacity),
            stats: ServerStats::default(),
            handler: Box::new(handler),
        });

        let mut threads = Vec::new();
        let acceptor = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("dwm-net-accept".into())
                .spawn(move || accept_loop(&listener, &acceptor))?,
        );
        for i in 0..config.workers.max(1) {
            let worker = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dwm-net-worker-{i}"))
                    .spawn(move || worker_loop(&worker))?,
            );
        }
        Ok(ServerHandle {
            local_addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Signals graceful shutdown: stop accepting, drain queued and
    /// in-flight requests. Returns immediately; pair with
    /// [`join`](Self::join).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop and all workers to exit. Call
    /// [`shutdown`](Self::shutdown) first, or this blocks forever.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// How long the acceptor sleeps when `accept` has nothing for it.
const ACCEPT_IDLE: Duration = Duration::from_millis(2);
/// Per-read socket timeout; also bounds shutdown-detection latency for
/// idle keep-alive connections.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(stream) = shared.queue.try_push(stream) {
                    // Backpressure: refuse rather than queue unboundedly.
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    metrics::rejected().inc();
                    let mut stream = stream;
                    let _ = Response::text(503, "server overloaded\n").write_to(&mut stream, true);
                } else {
                    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    metrics::accepted().inc();
                    metrics::queue_depth().add_always(1);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_IDLE),
            Err(_) => std::thread::sleep(ACCEPT_IDLE),
        }
    }
}

fn worker_loop(shared: &Arc<ServerShared>) {
    // `pop` returns `None` only once the queue is closed and drained,
    // so every accepted connection is served even across shutdown.
    while let Some(stream) = shared.queue.pop() {
        metrics::queue_depth().add_always(-1);
        handle_connection(stream, shared);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                metrics::requests().inc();
                let response = {
                    let _span = metrics::handler_latency().span();
                    (shared.handler)(&request)
                };
                // Drain semantics: the request that was already in
                // flight gets its response, then the connection closes.
                let closing = shared.shutdown.load(Ordering::SeqCst)
                    || request.header("connection") == Some("close");
                if response.write_to(&mut writer, closing).is_err() || closing {
                    return;
                }
            }
            Ok(None) => return, // clean keep-alive teardown
            Err(NetError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle between requests: drop the connection on
                // shutdown, otherwise keep waiting.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(NetError::Io(_)) => return,
            Err(NetError::Malformed(m)) => {
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                metrics::malformed().inc();
                let _ = Response::text(400, format!("{m}\n")).write_to(&mut writer, true);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, NetError> {
        read_request(&mut BufReader::new(Cursor::new(bytes.to_vec())))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /solve HTTP/1.1\r\ncontent-length: 4\r\nx-k: v\r\n\r\nabcd";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.header("X-K"), Some("v"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none_and_torn_requests_are_errors() {
        assert!(parse(b"").unwrap().is_none());
        assert!(parse(b"GET /x HTTP/1.1\r\n").is_err()); // EOF in headers
        assert!(parse(b"garbage\r\n\r\n").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\ncontent-length: pony\r\n\r\n").is_err());
    }

    #[test]
    fn request_and_response_round_trip_wire_form() {
        let mut wire = Vec::new();
        Request::post("/solve", "{}").write_to(&mut wire).unwrap();
        let back = parse(&wire).unwrap().unwrap();
        assert_eq!(back.path, "/solve");
        assert_eq!(back.body, b"{}");

        let mut wire = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("x-dwm-elapsed-us", "12")
            .write_to(&mut wire, false)
            .unwrap();
        let resp = read_response(&mut BufReader::new(Cursor::new(wire)))
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.header("X-DWM-Elapsed-Us"), Some("12"));
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert_eq!(resp.body_str(), Some("{\"ok\":true}"));
    }

    #[test]
    fn bounded_queue_backpressure_and_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        // Pending items stay poppable after close, then None.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn closed_queue_wakes_blocked_pops() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn server_round_trip_and_graceful_shutdown() {
        let handle = Server::start(ServerConfig::default(), |req| {
            Response::text(200, format!("echo:{}", req.path))
        })
        .unwrap();
        let addr = handle.local_addr();
        let mut responses = Vec::new();
        for i in 0..3 {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            Request::new("GET", &format!("/r{i}"))
                .write_to(&mut writer)
                .unwrap();
            let resp = read_response(&mut reader).unwrap().unwrap();
            responses.push(resp.body_str().unwrap().to_owned());
        }
        assert_eq!(responses, vec!["echo:/r0", "echo:/r1", "echo:/r2"]);
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 3);
        handle.shutdown();
        assert!(handle.is_shutting_down());
        handle.join();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let handle = Server::start(ServerConfig::default(), |req| {
            Response::json(200, format!("{{\"len\":{}}}", req.body.len()))
        })
        .unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for body in ["x", "yy", "zzz"] {
            Request::post("/b", body).write_to(&mut writer).unwrap();
            let resp = loop {
                match read_response(&mut reader) {
                    Ok(Some(r)) => break r,
                    Ok(None) => panic!("server closed keep-alive connection"),
                    Err(NetError::Io(e))
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(e) => panic!("read: {e}"),
                }
            };
            assert_eq!(
                resp.body_str().unwrap(),
                format!("{{\"len\":{}}}", body.len())
            );
        }
        handle.shutdown();
        handle.join();
    }
}
