use std::error::Error;
use std::fmt;

use crate::policy::{PromotionPolicy, ReplacementPolicy};

/// Error building a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfigError {
    /// Offending parameter.
    pub parameter: &'static str,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cache config: {}: {}",
            self.parameter, self.reason
        )
    }
}

impl Error for CacheConfigError {}

/// Geometry and policies of a DWM cache.
///
/// Each set's `ways` blocks live on one tape with a single port at way
/// 0; the tape state is the way currently under the port. Addresses
/// are block-granular (`block id = address`), index = `id % sets`, tag
/// = `id / sets`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    sets: usize,
    ways: usize,
    /// Victim selection policy.
    pub replacement: ReplacementPolicy,
    /// Hit-time block migration policy.
    pub promotion: PromotionPolicy,
    /// Extra shift steps charged for one promotion swap (the physical
    /// read-swap-write of two adjacent ways).
    pub promotion_swap_shifts: u64,
}

dwm_foundation::json_struct!(CacheConfig {
    sets,
    ways,
    replacement,
    promotion,
    promotion_swap_shifts
});

impl CacheConfig {
    /// A `sets × ways` cache with plain LRU and no promotion.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] when `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Result<Self, CacheConfigError> {
        if sets == 0 {
            return Err(CacheConfigError {
                parameter: "sets",
                reason: "must be nonzero".into(),
            });
        }
        if ways == 0 {
            return Err(CacheConfigError {
                parameter: "ways",
                reason: "must be nonzero".into(),
            });
        }
        Ok(CacheConfig {
            sets,
            ways,
            replacement: ReplacementPolicy::Lru,
            promotion: PromotionPolicy::None,
            promotion_swap_shifts: 2,
        })
    }

    /// Sets the replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Sets the promotion policy.
    pub fn with_promotion(mut self, promotion: PromotionPolicy) -> Self {
        self.promotion = promotion;
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set (tape length).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total block capacity.
    pub fn capacity_blocks(&self) -> usize {
        self.sets * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_geometry_accepted() {
        let c = CacheConfig::new(8, 4).unwrap();
        assert_eq!(c.sets(), 8);
        assert_eq!(c.ways(), 4);
        assert_eq!(c.capacity_blocks(), 32);
        assert_eq!(c.replacement, ReplacementPolicy::Lru);
        assert_eq!(c.promotion, PromotionPolicy::None);
    }

    #[test]
    fn zero_sets_rejected() {
        let err = CacheConfig::new(0, 4).unwrap_err();
        assert_eq!(err.parameter, "sets");
        assert!(err.to_string().contains("sets"));
    }

    #[test]
    fn zero_ways_rejected() {
        assert_eq!(CacheConfig::new(4, 0).unwrap_err().parameter, "ways");
    }

    #[test]
    fn builders_set_policies() {
        let c = CacheConfig::new(4, 4)
            .unwrap()
            .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 })
            .with_promotion(PromotionPolicy::SwapTowardPort);
        assert_eq!(
            c.replacement,
            ReplacementPolicy::ShiftAwareLru { window: 2 }
        );
        assert_eq!(c.promotion, PromotionPolicy::SwapTowardPort);
    }
}
