//! The placement algorithm suite.
//!
//! Every algorithm consumes an [`AccessGraph`] (edge weights = adjacent
//! co-access counts, vertex weights = access frequencies) and produces
//! a [`Placement`]. The suite mirrors the comparison set of the paper's
//! evaluation:
//!
//! | Algorithm | Role |
//! |-----------|------|
//! | [`OrderOfAppearance`] | naive baseline (first-touch order) |
//! | [`RandomPlacement`] | randomized baseline |
//! | [`OrganPipe`] | classic frequency-only placement (prior work) |
//! | [`ChainGrowth`] | adjacency-driven greedy chain merging |
//! | [`GreedyInsertion`] | best-position insertion (classic MinLA construction) |
//! | [`GroupedChainGrowth`] | chain growth + frequency-anchored group ordering (**the proposed algorithm**) |
//! | [`Spectral`] | Fiedler-vector ordering |
//! | [`SimulatedAnnealing`] | stochastic search comparator |
//! | [`LocalSearch`] | refinement pass composable with any of the above |
//! | [`Hybrid`] | **the full proposed pipeline**: best deterministic candidate + windowed local search (never worse than naive) |
//! | [`TraceRefiner`] | model-aware hill climbing — retunes a placement for multi-/typed-port tapes by replaying the trace |
//! | [`WindowedDp`] | sliding-window *exact* refinement: provably optimal reordering of each window, boundary-aware |

mod annealing;
mod baseline;
mod chain;
mod frequency;
mod hybrid;
mod insertion;
mod local_search;
mod multi_start;
mod spectral;
mod trace_refine;
mod window_dp;

pub use annealing::SimulatedAnnealing;
pub use baseline::{OrderOfAppearance, RandomPlacement};
pub use chain::{ChainGrowth, GroupedChainGrowth};
pub use frequency::OrganPipe;
pub use hybrid::Hybrid;
pub use insertion::GreedyInsertion;
pub use local_search::LocalSearch;
pub use multi_start::MultiStart;
pub use spectral::Spectral;
pub use trace_refine::TraceRefiner;
pub use window_dp::WindowedDp;

/// Touches every solver metric owned by this module so scrapes list
/// the full family (at zero) before any solve has run.
pub(crate) fn register_obs_metrics() {
    let _ = (
        annealing::moves_proposed_counter(),
        annealing::moves_accepted_counter(),
        local_search::window_passes_counter(),
        local_search::improving_swaps_counter(),
    );
}

use dwm_graph::AccessGraph;

use crate::placement::Placement;

/// A data-placement algorithm.
///
/// Implementations are cheap value types holding tuning parameters;
/// [`place`](PlacementAlgorithm::place) is a pure function of the
/// graph (seeded algorithms hold their seed, so results are
/// reproducible). The trait is object-safe: experiment sweeps iterate
/// over `&[&dyn PlacementAlgorithm]`. The `Send + Sync` bound lets
/// those sweeps fan algorithm×workload cells out over the
/// [`dwm_foundation::par`] workers; every implementor is a plain value
/// type, so the bound costs nothing.
pub trait PlacementAlgorithm: Send + Sync {
    /// Short, stable name for report tables.
    fn name(&self) -> String;

    /// Computes a placement of the graph's items onto offsets
    /// `0..num_items`.
    fn place(&self, graph: &AccessGraph) -> Placement;
}

/// The standard comparison suite used by the experiments, boxed for
/// uniform iteration. `seed` feeds the randomized algorithms.
pub fn standard_suite(seed: u64) -> Vec<Box<dyn PlacementAlgorithm>> {
    vec![
        Box::new(OrderOfAppearance),
        Box::new(RandomPlacement::new(seed)),
        Box::new(OrganPipe),
        Box::new(ChainGrowth),
        Box::new(GroupedChainGrowth),
        Box::new(GreedyInsertion),
        Box::new(Spectral::default()),
        Box::new(SimulatedAnnealing::new(seed)),
        Box::new(Hybrid::default()),
    ]
}

#[cfg(test)]
pub(crate) mod test_support {
    use dwm_graph::AccessGraph;
    use dwm_trace::Trace;

    /// Serializes tests that install `par::override_threads` guards —
    /// the override is process-global, so concurrent installs from
    /// parallel test threads would interleave.
    pub static PAR_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A small graph with an obvious good order: two heavy clusters.
    pub fn two_cluster_graph() -> AccessGraph {
        let mut g = AccessGraph::with_items(6);
        // Cluster {0,1,2} and {3,4,5}, heavy inside, light across.
        for &(u, v) in &[(0, 1), (1, 2), (0, 2)] {
            g.add_weight(u, v, 10);
        }
        for &(u, v) in &[(3, 4), (4, 5), (3, 5)] {
            g.add_weight(u, v, 10);
        }
        g.add_weight(2, 3, 1);
        for u in 0..6 {
            g.set_frequency(u, g.degree(u));
        }
        g
    }

    /// Graph of a short representative trace.
    pub fn kernel_graph() -> AccessGraph {
        let t = Trace::from_ids([0u32, 1, 2, 1, 0, 3, 4, 3, 0, 1, 5, 4, 3, 2, 1, 0]);
        AccessGraph::from_trace(&t)
    }

    /// Two heavy clusters whose members are *interleaved* in id space
    /// ({0,2,4} and {1,3,5}), so the identity placement scatters them —
    /// the case adjacency-driven placement exists to fix.
    pub fn interleaved_cluster_graph() -> AccessGraph {
        let mut g = AccessGraph::with_items(6);
        for &(u, v) in &[(0, 2), (2, 4), (0, 4)] {
            g.add_weight(u, v, 10);
        }
        for &(u, v) in &[(1, 3), (3, 5), (1, 5)] {
            g.add_weight(u, v, 10);
        }
        g.add_weight(4, 1, 1);
        for u in 0..6 {
            g.set_frequency(u, g.degree(u));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::{kernel_graph, two_cluster_graph};

    #[test]
    fn suite_produces_valid_placements_on_all_graphs() {
        for g in [
            two_cluster_graph(),
            kernel_graph(),
            AccessGraph::with_items(0),
            AccessGraph::with_items(1),
            AccessGraph::with_items(7), // edgeless
        ] {
            for alg in standard_suite(42) {
                let p = alg.place(&g);
                assert_eq!(p.num_items(), g.num_items(), "{}", alg.name());
                // Bijection: every item appears exactly once.
                let mut seen = vec![false; g.num_items()];
                for off in 0..g.num_items() {
                    let item = p.item_at(off);
                    assert!(!seen[item], "{} duplicated item {item}", alg.name());
                    seen[item] = true;
                }
            }
        }
    }

    #[test]
    fn suite_names_are_distinct() {
        let mut names: Vec<String> = standard_suite(1).iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn adjacency_algorithms_beat_naive_on_interleaved_clusters() {
        let g = test_support::interleaved_cluster_graph();
        let naive = OrderOfAppearance.place(&g);
        let naive_cost = g.arrangement_cost(naive.offsets());
        for alg in [
            &ChainGrowth as &dyn PlacementAlgorithm,
            &GroupedChainGrowth,
            &Spectral::default(),
        ] {
            let p = alg.place(&g);
            assert!(
                g.arrangement_cost(p.offsets()) <= naive_cost,
                "{} worse than naive",
                alg.name()
            );
        }
    }
}
