//! Cycle-approximate, self-checking scratchpad simulator for DWM.
//!
//! Where `dwm-core`'s cost models *count* shifts analytically, this
//! crate actually *performs* them: a [`Scratchpad`] instantiates
//! bit-level [`Dbc`](dwm_device::Dbc)s, and the [`SpmSimulator`] replays
//! a trace through a placement, moving real data. Each write stores a
//! deterministic token and each read checks it against a shadow model,
//! so a placement or shift-arithmetic bug surfaces as a data-integrity
//! failure, not just a wrong counter.
//!
//! The simulator's shift counters must agree exactly with the analytic
//! models — that is the V1 cross-validation experiment and an
//! integration test.
//!
//! # Example
//!
//! ```
//! use dwm_device::DeviceConfig;
//! use dwm_trace::kernels::Kernel;
//! use dwm_sim::SpmSimulator;
//!
//! let trace = Kernel::Fft { n: 32, block: 1 }.trace();
//! let config = DeviceConfig::builder()
//!     .domains_per_track(32)
//!     .tracks_per_dbc(32)
//!     .build()?;
//! let mut sim = SpmSimulator::with_identity_placement(&config, 32)?;
//! let report = sim.run(&trace)?;
//! assert!(report.stats.shifts > 0);
//! assert_eq!(report.integrity_errors, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod replay;
mod report;
mod scratchpad;
mod simulator;

pub use replay::{topology_layout_report, topology_report};
pub use report::SimReport;
pub use scratchpad::Scratchpad;
pub use simulator::{SimError, SpmSimulator};

/// Registers this crate's metrics in the
/// [`dwm_foundation::obs::global`] registry, so a scrape lists the
/// full family (at zero) before any simulation has run.
pub fn register_obs_metrics() {
    let _ = (
        simulator::accesses_counter(),
        simulator::shift_distance_histogram(),
    );
}

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        topology_layout_report, topology_report, Scratchpad, SimError, SimReport, SpmSimulator,
    };
}
