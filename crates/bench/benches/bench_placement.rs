//! T3/F3: placement construction time per algorithm per kernel.

use dwm_bench::suite_fixture;
use dwm_core::algorithms::standard_suite;
use dwm_foundation::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::from_env("placement");
    for (name, _, graph) in suite_fixture() {
        for alg in standard_suite(1) {
            // Annealing dominates wall clock; bench it separately in
            // bench_runtime at scale instead of per kernel.
            if alg.name() == "annealing" {
                continue;
            }
            h.bench(&format!("placement/{}/{name}", alg.name()), || {
                alg.place(black_box(&graph))
            });
        }
    }
    h.finish();
}
