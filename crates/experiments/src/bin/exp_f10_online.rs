//! Experiment F10 (extension): online adaptive placement.
//!
//! A phase-changing workload (four Markov phases whose hot clusters
//! live on disjoint, shuffled parts of the item space) is served by:
//!
//! * `static-naive` — identity placement, never changes;
//! * `static-oracle` — one hybrid placement computed offline from the
//!   *whole* trace (the best any static scheme can do with perfect
//!   profile knowledge);
//! * `online` — the windowed adaptive placer, paying explicit
//!   migration shifts at every re-placement.
//!
//! The point of the figure: adaptation beats even the oracle when
//! phases disagree, and its migration overhead stays a small fraction
//! of the access bill.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::online::{OnlineConfig, OnlinePlacer};
use dwm_core::{Hybrid, Placement, PlacementAlgorithm};
use dwm_experiments::{percent_reduction, Table, EXPERIMENT_SEED};
use dwm_graph::AccessGraph;
use dwm_trace::synth::{PhasedGen, TraceGenerator};

fn main() {
    println!("Figure 10: static vs. online placement on a 4-phase workload (64 items)\n");
    let trace = PhasedGen::new(64, 4, EXPERIMENT_SEED).generate(20_000);
    let model = SinglePortCost::new();
    let n = trace.num_items();

    let naive = model
        .trace_cost(&Placement::identity(n), &trace)
        .stats
        .shifts;
    let oracle_placement = Hybrid::default().place(&AccessGraph::from_trace(&trace));
    let oracle = model.trace_cost(&oracle_placement, &trace).stats.shifts;

    let report = OnlinePlacer::new(OnlineConfig {
        window: 1000,
        migration_shifts_per_item: 64,
        ..OnlineConfig::default()
    })
    .run(&trace);

    let mut t = Table::new([
        "scheme",
        "access shifts",
        "migration shifts",
        "total",
        "vs naive",
    ]);
    t.row([
        "static-naive".to_string(),
        naive.to_string(),
        "0".into(),
        naive.to_string(),
        "0.0%".into(),
    ]);
    t.row([
        "static-oracle".to_string(),
        oracle.to_string(),
        "0".into(),
        oracle.to_string(),
        percent_reduction(naive, oracle),
    ]);
    t.row([
        "online".to_string(),
        report.access_shifts.to_string(),
        report.migration_shifts.to_string(),
        report.total_shifts().to_string(),
        percent_reduction(naive, report.total_shifts()),
    ]);
    t.print();
    println!(
        "\nonline adaptations: {} ({} items moved in total)",
        report.migrations, report.items_moved
    );
}
