//! HTTP/1.1-subset framing: request/response types, the blocking
//! reader used by clients, and the incremental parser the event loop
//! feeds with whatever bytes the socket had.

use std::io::{self, BufRead, Write};

/// Hard cap on header lines per request.
pub(crate) const MAX_HEADERS: usize = 64;
/// Hard cap on one header or request line, in bytes.
pub(crate) const MAX_LINE: usize = 8 * 1024;
/// Hard cap on a request body, in bytes (64 MiB — a multi-million
/// access trace in JSON still fits comfortably).
pub(crate) const MAX_BODY: usize = 64 * 1024 * 1024;

/// Error while reading or parsing a request.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error.
    Io(io::Error),
    /// The peer sent something that is not a well-formed request.
    Malformed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One parsed request: method, path, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path, verbatim (`/solve`).
    pub path: String,
    /// Header name/value pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// A request with no headers and no body (test/client helper).
    pub fn new(method: &str, path: &str) -> Self {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `POST` carrying `body` (client helper).
    pub fn post(path: &str, body: impl Into<Vec<u8>>) -> Self {
        Request {
            method: "POST".to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// First value of header `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Serializes the request in wire form (client side).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method, self.path)?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reads one line terminated by `\n`, stripping the optional `\r`.
/// Returns `Ok(None)` on clean EOF before the first byte.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, NetError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(NetError::Malformed("unexpected EOF in line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| NetError::Malformed("non-UTF-8 header line".into()));
                }
                if line.len() >= MAX_LINE {
                    return Err(NetError::Malformed("header line too long".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// Parses a `name: value` header line, folding the name to lower case
/// and enforcing the `content-length` bounds shared by the blocking
/// and incremental parsers.
fn parse_header(line: &str, content_length: &mut usize) -> Result<(String, String), NetError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(NetError::Malformed(format!("bad header line {line:?}")));
    };
    let name = name.trim().to_ascii_lowercase();
    let value = value.trim().to_owned();
    if name == "content-length" {
        *content_length = value
            .parse()
            .map_err(|_| NetError::Malformed(format!("bad content-length {value:?}")))?;
        if *content_length > MAX_BODY {
            return Err(NetError::Malformed("body too large".into()));
        }
    }
    Ok((name, value))
}

/// Splits a request line into method and path.
fn parse_request_line(line: &str) -> Result<(String, String), NetError> {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some(method), Some(path)) => Ok((method.to_owned(), path.to_owned())),
        _ => Err(NetError::Malformed(format!("bad request line {line:?}"))),
    }
}

/// Reads one request off `r`. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive teardown).
///
/// # Errors
///
/// [`NetError::Malformed`] on protocol violations (bad request line,
/// oversized headers/body, missing UTF-8), [`NetError::Io`] on socket
/// errors — including read timeouts, which surface as
/// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`].
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, NetError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let (method, path) = parse_request_line(&request_line)?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let Some(line) = read_line(r)? else {
            return Err(NetError::Malformed("EOF in headers".into()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(NetError::Malformed("too many headers".into()));
        }
        headers.push(parse_header(&line, &mut content_length)?);
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Outcome of feeding buffered bytes to [`try_parse_request`].
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold one complete request.
    Incomplete,
    /// One complete request, and how many buffer bytes it consumed —
    /// the caller drains that prefix and keeps the rest (pipelining).
    Complete(Request, usize),
}

/// Returns the next line in `buf` starting at `start` (CR stripped),
/// or `Ok(None)` when no full line has arrived yet. The `MAX_LINE`
/// bound is enforced even on partial lines, so a peer trickling an
/// endless header cannot grow the buffer unboundedly.
fn take_line(buf: &[u8], start: usize) -> Result<Option<(&str, usize)>, NetError> {
    match buf[start..].iter().position(|&b| b == b'\n') {
        Some(i) => {
            let mut line = &buf[start..start + i];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.len() > MAX_LINE {
                return Err(NetError::Malformed("header line too long".into()));
            }
            std::str::from_utf8(line)
                .map(|s| Some((s, start + i + 1)))
                .map_err(|_| NetError::Malformed("non-UTF-8 header line".into()))
        }
        None if buf.len() - start > MAX_LINE => {
            Err(NetError::Malformed("header line too long".into()))
        }
        None => Ok(None),
    }
}

/// Incremental request parser for the event loop: inspects the bytes
/// buffered so far and reports [`Parsed::Incomplete`] until one whole
/// request (headers plus `content-length` body) has arrived. Protocol
/// limits are enforced on partial data too, so malformed or abusive
/// input fails as soon as it is detectable.
///
/// # Errors
///
/// [`NetError::Malformed`], with the same taxonomy as
/// [`read_request`]; never [`NetError::Io`].
pub fn try_parse_request(buf: &[u8]) -> Result<Parsed, NetError> {
    let Some((request_line, mut pos)) = take_line(buf, 0)? else {
        return Ok(Parsed::Incomplete);
    };
    let (method, path) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let Some((line, next)) = take_line(buf, pos)? else {
            return Ok(Parsed::Incomplete);
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(NetError::Malformed("too many headers".into()));
        }
        let line = line.to_owned();
        headers.push(parse_header(&line, &mut content_length)?);
    }
    if buf.len() < pos + content_length {
        return Ok(Parsed::Incomplete);
    }
    let body = buf[pos..pos + content_length].to_vec();
    Ok(Parsed::Complete(
        Request {
            method,
            path,
            headers,
            body,
        },
        pos + content_length,
    ))
}

/// One response: status code plus headers and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 400, 404, 503, …).
    pub status: u16,
    /// Extra headers (content-length and connection are added by the
    /// writer).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: sets `content-type: application/json`.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: body.into(),
        }
    }

    /// Appends a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// First value of header `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response in wire form. `close` adds
    /// `connection: close` (sent on the last response before teardown).
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(
            w,
            "connection: {}\r\n\r\n",
            if close { "close" } else { "keep-alive" }
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reads one response off `r` (client side). `Ok(None)` on clean EOF.
///
/// # Errors
///
/// Same contract as [`read_request`].
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Option<Response>, NetError> {
    let Some(status_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = status_line.split_whitespace();
    let status = parts
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| NetError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let Some(line) = read_line(r)? else {
            return Err(NetError::Malformed("EOF in headers".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(NetError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| NetError::Malformed(format!("bad content-length {value:?}")))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Some(Response {
        status,
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_parser_reports_incomplete_until_whole_request() {
        let wire = b"POST /solve HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        for cut in 0..wire.len() {
            assert!(
                matches!(try_parse_request(&wire[..cut]), Ok(Parsed::Incomplete)),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let Parsed::Complete(req, consumed) = try_parse_request(wire).unwrap() else {
            panic!("full request should parse");
        };
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn incremental_parser_leaves_pipelined_tail_in_place() {
        let mut wire = Vec::new();
        Request::new("GET", "/a").write_to(&mut wire).unwrap();
        let first_len = wire.len();
        Request::new("GET", "/b").write_to(&mut wire).unwrap();
        let Parsed::Complete(req, consumed) = try_parse_request(&wire).unwrap() else {
            panic!("first pipelined request should parse");
        };
        assert_eq!(req.path, "/a");
        assert_eq!(consumed, first_len);
        let Parsed::Complete(req, _) = try_parse_request(&wire[consumed..]).unwrap() else {
            panic!("second pipelined request should parse");
        };
        assert_eq!(req.path, "/b");
    }

    #[test]
    fn incremental_parser_enforces_limits_on_partial_data() {
        // An endless header line fails before any newline arrives.
        let trickle = vec![b'a'; MAX_LINE + 1];
        assert!(try_parse_request(&trickle).is_err());
        // Oversized declared body fails at the header, not after 64 MiB.
        let huge = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n", MAX_BODY + 1);
        assert!(try_parse_request(huge.as_bytes()).is_err());
        // Garbage request lines fail immediately.
        assert!(try_parse_request(b"garbage\r\n").is_err());
    }

    #[test]
    fn incremental_and_blocking_parsers_agree() {
        let mut wire = Vec::new();
        let mut req = Request::post("/solve", "{\"k\":1}");
        req.headers.push(("x-test".into(), "yes".into()));
        req.write_to(&mut wire).unwrap();
        let blocking = read_request(&mut std::io::BufReader::new(std::io::Cursor::new(
            wire.clone(),
        )))
        .unwrap()
        .unwrap();
        let Parsed::Complete(incremental, consumed) = try_parse_request(&wire).unwrap() else {
            panic!("should parse");
        };
        assert_eq!(blocking, incremental);
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn timeout_status_has_a_reason() {
        let mut wire = Vec::new();
        Response::text(408, "request header timeout\n")
            .write_to(&mut wire, true)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 408 Request Timeout\r\n"));
        assert!(text.contains("connection: close"));
    }
}
