//! F10/F11: online placement and wear-leveling replay throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dwm_bench::markov_fixture;
use dwm_core::online::{OnlineConfig, OnlinePlacer};
use dwm_core::wear::{RotatingEvaluator, WearConfig};
use dwm_core::{Hybrid, PlacementAlgorithm};

fn online_placer(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_placement");
    group.sample_size(10);
    for n in [64usize, 256] {
        let (trace, _) = markov_fixture(n);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, t| {
            b.iter(|| OnlinePlacer::new(OnlineConfig::default()).run(std::hint::black_box(t)))
        });
    }
    group.finish();
}

fn wear_evaluator(c: &mut Criterion) {
    let (trace, graph) = markov_fixture(64);
    let placement = Hybrid::default().place(&graph);
    let mut group = c.benchmark_group("wear_rotation");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for period in [0u64, 256, 64] {
        let config = if period == 0 {
            WearConfig::disabled()
        } else {
            WearConfig::every_writes(period, 64)
        };
        group.bench_with_input(BenchmarkId::from_parameter(period), &config, |b, cfg| {
            b.iter(|| {
                RotatingEvaluator::new(*cfg).evaluate(std::hint::black_box(&placement), &trace)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, online_placer, wear_evaluator);
criterion_main!(benches);
