#!/usr/bin/env bash
# Documentation smoke test: extracts the fenced ```sh blocks from the
# README's Quickstart, Trace profiling, Topologies, Sessions, and
# Cluster sections — plus the self-contained Tiers walkthrough inside
# Serving — and actually runs them, so the
# commands users copy-paste can never rot. (The Rust quickstart block
# is already compiled and run by rustdoc via the README doctest
# include.)
#
# Blocks run from a scratch directory under target/ so generated files
# (fft.trace, fft.placement.json, …) never land in the repo root;
# `cargo run` still resolves the workspace by walking up.
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

export CARGO_NET_OFFLINE=1

workdir="$repo_root/target/doc_smoke"
rm -rf "$workdir"
mkdir -p "$workdir"

# Pull every ```sh block between a covered heading ('## Quickstart',
# '## Trace profiling', '## Topologies', '## Sessions', '### Tiers',
# '## Cluster') and the next
# heading at the same or a higher level into numbered scripts. The rest of Serving is excluded
# on purpose: its blocks are illustrative fragments (bare `dwmplace`,
# curls against an unstated daemon), not runnable walkthroughs.
awk -v out="$workdir/block" '
  /^## Quickstart/ || /^## Sessions/ || /^### Tiers/ || /^## Trace profiling/ || /^## Topologies/ || /^## Cluster/ { in_section = 1; next }
  /^## / || /^### /  { in_section = 0 }
  !in_section        { next }
  /^```sh$/          { in_block = 1; n++; next }
  /^```$/            { in_block = 0; next }
  in_block           { print > (out n ".sh") }
' README.md

blocks=("$workdir"/block*.sh)
if [[ ! -e "${blocks[0]}" ]]; then
  echo "doc_smoke: no \`\`\`sh blocks found in the covered README sections" >&2
  exit 1
fi

cd "$workdir"
for block in "${blocks[@]}"; do
  echo "== doc_smoke: $(basename "$block")"
  sed 's/^/   | /' "$block"
  bash -euo pipefail "$block"
done

echo "doc_smoke: ${#blocks[@]} README block(s) ran clean"
