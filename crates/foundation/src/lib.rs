//! Hermetic, zero-dependency substrate for the DWM placement workspace.
//!
//! Every crate in this workspace used to pull `rand`, `serde`,
//! `serde_json`, `proptest`, and `criterion` from crates.io; in the
//! offline environments where the reproduction runs, dependency
//! resolution is the first thing to fail. This crate replaces all five
//! with four small, deterministic, in-tree modules:
//!
//! * [`rng`] — a SplitMix64-seeded xoshiro256\*\* generator with a
//!   `rand`-shaped API (`gen_range`, `gen_bool`, `shuffle`, `choose`)
//!   plus the [`rng::Zipf`] distribution helper the trace generators
//!   use. Same seed, same stream, on every platform, forever.
//! * [`json`] — a minimal JSON value type, serializer, and
//!   recursive-descent parser with line/column error reporting, plus
//!   [`json::ToJson`]/[`json::FromJson`] traits and the
//!   [`json_struct!`], [`json_newtype!`], and [`json_unit_enum!`]
//!   macros that replace `#[derive(Serialize, Deserialize)]`.
//! * [`mod@bench`] — a lightweight timing harness (warmup, N samples,
//!   median/p95, JSON emission) that the `dwm-bench` targets run
//!   instead of criterion.
//! * [`check`] — a seeded property-test harness (configurable case
//!   count, failing-seed replay) that the former proptest suites use.
//!
//! A fifth module, [`par`], is the workspace's parallel substrate: a
//! scoped work-stealing pool (std `thread`/atomics only) whose `par_*`
//! combinators return results in input order, so parallelized sweeps
//! and solvers stay byte-deterministic at any `DWM_THREADS` setting.
//!
//! A sixth module, [`net`], is the serving substrate: a minimal
//! HTTP/1.1-style request parser/response writer plus an epoll
//! event-loop TCP server (per-shard `SO_REUSEPORT` acceptors,
//! nonblocking per-connection state machines, a bounded handler pool,
//! backpressure via `503`, slow-header cutoff via `408`, graceful
//! drain on shutdown) that `dwm-serve` builds its
//! placement-as-a-service daemon on.
//!
//! A seventh module, [`obs`], is the observability substrate: a
//! sharded metrics registry (striped counters, gauges, atomic
//! histograms reusing the [`mod@bench`] bucketing) with span timers
//! and a `DWM_OBS` enable knob, exported as Prometheus text (the
//! daemon's `GET /metrics`) or JSON (the CLI's `--obs` dump). Solver
//! and simulator instrumentation throughout the workspace records
//! here; metrics never leak into response bodies or artifacts, so the
//! determinism contract below survives with observability on.
//!
//! The determinism here is load-bearing, not incidental: shift-count
//! comparisons between placement algorithms are only meaningful when
//! every workload is byte-for-byte reproducible from its seed.

#![deny(missing_docs)]

pub mod bench;
pub mod check;
pub mod json;
pub mod net;
pub mod obs;
pub mod par;
pub mod rng;

pub use check::Checker;
pub use json::{FromJson, JsonError, ToJson, Value};
pub use rng::Rng;
