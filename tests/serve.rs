//! End-to-end tests for the `dwm-serve` daemon over real loopback
//! sockets: the determinism contract at different thread counts, the
//! solve-cache hit path, graceful drain on shutdown, and the load
//! harness.

use std::io::Write as _;
use std::net::TcpStream;

use dwm_foundation::net::{read_response, Request, Response};
use dwm_foundation::par;
use dwm_serve::client::ClientConn;
use dwm_serve::load::{self, LoadConfig};
use dwm_serve::{start, ServeConfig};

fn ephemeral_server(workers: usize, cache_capacity: usize) -> dwm_serve::ServeHandle {
    start(ServeConfig {
        workers,
        cache_capacity,
        ..ServeConfig::ephemeral()
    })
    .expect("loopback server starts")
}

/// The request sequence used by the determinism test: two distinct
/// multi-workload solves, an evaluate, and a simulate.
fn request_sequence() -> Vec<(&'static str, String)> {
    let zig: Vec<String> = (0..600).map(|i| (i % 24).to_string()).collect();
    let pong: Vec<String> = (0..600).map(|i| ((i * 7) % 16).to_string()).collect();
    vec![
        (
            "/solve",
            format!(
                r#"{{"algorithm":"hybrid","workloads":[{{"ids":[{}]}},{{"ids":[{}]}}]}}"#,
                zig.join(","),
                pong.join(",")
            ),
        ),
        (
            "/solve",
            format!(r#"{{"algorithm":"organ-pipe","ids":[{}]}}"#, pong.join(",")),
        ),
        (
            "/evaluate",
            format!(
                r#"{{"ids":[{}],"placement":[{}],"ports":2,"tape_length":24}}"#,
                zig.join(","),
                (0..24).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
            ),
        ),
        (
            "/simulate",
            format!(r#"{{"ids":[{}],"domains_per_track":64}}"#, zig.join(",")),
        ),
    ]
}

/// Runs the request sequence against a fresh server and returns the
/// response bodies.
fn run_sequence(workers: usize) -> Vec<String> {
    let handle = ephemeral_server(workers, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).expect("connect");
    let bodies: Vec<String> = request_sequence()
        .iter()
        .map(|(path, body)| {
            let resp = conn.post_json(path, body.as_str()).expect("response");
            assert!(resp.is_success(), "{path}: status {}", resp.status);
            resp.body_str().expect("utf-8 body").to_owned()
        })
        .collect();
    handle.shutdown();
    handle.join();
    bodies
}

#[test]
fn response_bodies_are_byte_identical_across_thread_counts() {
    let single = {
        let _guard = par::override_threads(1);
        run_sequence(1)
    };
    let wide = {
        let _guard = par::override_threads(8);
        run_sequence(8)
    };
    assert_eq!(
        single, wide,
        "same requests must produce the same bytes at 1 and 8 threads"
    );
}

#[test]
fn repeated_solve_is_served_from_the_cache_with_identical_results() {
    let handle = ephemeral_server(2, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    let body = r#"{"algorithm":"hybrid","ids":[0,9,0,9,3,7,3,7,1,5]}"#;

    let first = conn.post_json("/solve", body).unwrap();
    assert_eq!(first.status, 200);
    assert!(
        first.header("x-dwm-elapsed-us").is_some(),
        "timing must travel in the header, not the body"
    );
    let first_body = first.body_str().unwrap().to_owned();
    assert!(first_body.contains(r#""cache":["miss"]"#), "{first_body}");

    let second = conn.post_json("/solve", body).unwrap();
    let second_body = second.body_str().unwrap().to_owned();
    assert!(second_body.contains(r#""cache":["hit"]"#), "{second_body}");

    // Everything after the cache field is byte-identical.
    let results = |b: &str| b.split_once(r#""results":"#).map(|(_, r)| r.to_owned());
    assert_eq!(results(&first_body), results(&second_body));
    assert!(results(&first_body).is_some());

    let stats = conn.get("/stats").unwrap();
    let stats_body = stats.body_str().unwrap();
    assert!(stats_body.contains(r#""hits":1"#), "{stats_body}");

    handle.shutdown();
    handle.join();
}

/// Pulls `name <value>` out of a Prometheus exposition body.
fn scrape_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} not in scrape:\n{exposition}"))
        .parse()
        .unwrap_or_else(|e| panic!("metric {name} not a u64: {e}"))
}

#[test]
fn metrics_scrape_is_valid_exposition_and_agrees_with_stats() {
    let handle = ephemeral_server(2, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    let body = r#"{"algorithm":"hybrid","ids":[2,8,2,8,4,6,4,6,0,5]}"#;
    // One miss, one hit, so the cache counters are nonzero.
    assert!(conn.post_json("/solve", body).unwrap().is_success());
    assert!(conn.post_json("/solve", body).unwrap().is_success());

    let stats = conn.get("/stats").unwrap();
    let stats_json = dwm_foundation::json::parse(stats.body_str().unwrap()).expect("stats is JSON");
    let metrics = conn.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "Prometheus exposition content type"
    );
    let text = metrics.body_str().unwrap().to_owned();

    // Every non-comment line is `name[{labels}] value`; names start
    // with our prefix and values parse as numbers.
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("exposition line without a value: {line:?}"));
        assert!(name.starts_with("dwm_"), "foreign metric {name:?}");
        assert!(
            value.parse::<f64>().is_ok() || value == "NaN",
            "unparseable sample value in {line:?}"
        );
    }

    // Server, cache, and solver families are all present — solver
    // metrics are registered eagerly, so they appear even if this
    // process's solves all hit the warm global registry.
    for family in [
        "dwm_serve_requests_total",
        "dwm_serve_endpoint_requests_total",
        "dwm_serve_request_latency_ns",
        "dwm_serve_cache_hits_total",
        "dwm_solver_annealing_moves_proposed_total",
        "dwm_solver_local_search_passes_total",
        "dwm_net_requests_total",
    ] {
        assert!(text.contains(family), "family {family} missing:\n{text}");
    }

    // /stats and /metrics are two renderings of the same counters and
    // must agree exactly. The cache numbers come from scrape-time
    // callbacks over the SolveCache itself, so no drift is possible;
    // requests differ only by the /stats+/metrics reads themselves.
    let stats_obj = stats_json.as_object().expect("stats is an object");
    let cache = stats_obj
        .get("cache")
        .and_then(|v| v.as_object())
        .expect("cache object");
    let num = |v: &dwm_foundation::json::Value| v.as_number().and_then(|n| n.as_u64());
    let stat = |k: &str| cache.get(k).and_then(&num).expect(k);
    assert_eq!(
        stat("hits"),
        scrape_value(&text, "dwm_serve_cache_hits_total")
    );
    assert_eq!(
        stat("misses"),
        scrape_value(&text, "dwm_serve_cache_misses_total")
    );
    assert_eq!(
        stat("entries"),
        scrape_value(&text, "dwm_serve_cache_entries")
    );
    assert_eq!(stat("hits"), 1, "miss-then-hit sequence");
    assert_eq!(stat("misses"), 1, "miss-then-hit sequence");
    assert_eq!(
        stats_obj.get("solves").and_then(&num),
        Some(scrape_value(
            &text,
            r#"dwm_serve_endpoint_requests_total{endpoint="solve"}"#
        )),
        "/stats and /metrics disagree on solve count"
    );
    // The scrape happened one request after /stats, so the request
    // counter is exactly one ahead.
    assert_eq!(
        stats_obj.get("requests").and_then(&num),
        Some(scrape_value(&text, "dwm_serve_requests_total") - 1)
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_drains_the_in_flight_request() {
    let handle = ephemeral_server(2, 16);
    let addr = handle.local_addr();

    // Prime the connection so a worker owns it in its keep-alive loop.
    let mut conn = ClientConn::connect(addr).unwrap();
    assert!(conn.get("/health").unwrap().is_success());

    // Hand-roll the second request so shutdown lands between the write
    // and the read: the daemon must still answer it before closing.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    Request::post("/solve", br#"{"ids":[0,3,0,3,1,2]}"#.to_vec())
        .write_to(&mut wire)
        .unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();
    // Give the worker time to pick the request up, then shut down.
    std::thread::sleep(std::time::Duration::from_millis(200));
    handle.shutdown();

    let mut reader = std::io::BufReader::new(stream);
    let resp: Response = read_response(&mut reader)
        .expect("readable response")
        .expect("a response, not EOF: shutdown must drain in-flight work");
    assert_eq!(resp.status, 200);

    // After the drain, the daemon closes the connection rather than
    // serving new requests (whether it marked the last response
    // `connection: close` depends on when shutdown was observed).
    handle.join();
    let eof = read_response(&mut reader).expect("clean teardown");
    assert!(eof.is_none(), "connection must close after shutdown");
}

/// Drives the full session lifecycle over a real socket and returns
/// every response body, in order — the fixture for both the lifecycle
/// assertions and the thread-count determinism check.
fn run_session_sequence(workers: usize) -> Vec<String> {
    let handle = ephemeral_server(workers, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).expect("connect");
    let mut bodies = Vec::new();
    let mut push = |resp: Response, what: &str| -> String {
        assert!(resp.is_success(), "{what}: status {}", resp.status);
        let body = resp.body_str().expect("utf-8 body").to_owned();
        bodies.push(body.clone());
        body
    };

    // Two phases: a 16-item sweep, then a ping-pong between the two
    // items the sweep placed at opposite ends — only a re-placement
    // fixes that, so the session must adapt.
    let sweep: Vec<String> = (0..2000).map(|i| (i % 16).to_string()).collect();
    let pong: Vec<String> = (0..2000).map(|i| [0, 15][i % 2].to_string()).collect();

    let create = conn
        .post_json(
            "/session",
            r#"{"window":100,"migration_shifts_per_item":2}"#,
        )
        .unwrap();
    let create_body = push(create, "create");
    assert!(create_body.contains(r#""session":"s-1""#), "{create_body}");
    assert!(create_body.contains(r#""window":100"#), "{create_body}");

    // Ingest phase 1 in two chunks, then phase 2 in one.
    for (i, chunk) in [&sweep[..1000], &sweep[1000..], &pong[..]]
        .iter()
        .enumerate()
    {
        let body = format!(r#"{{"ids":[{}]}}"#, chunk.join(","));
        let resp = conn.post_json("/session/s-1/accesses", body).unwrap();
        push(resp, &format!("ingest {i}"));
    }

    let placement = push(conn.get("/session/s-1/placement").unwrap(), "placement");
    assert!(placement.contains(r#""items":16"#), "{placement}");
    assert!(placement.contains(r#""accesses":4000"#), "{placement}");

    let stats = push(conn.get("/session/s-1/stats").unwrap(), "session stats");
    assert!(stats.contains(r#""phase_changes":"#), "{stats}");

    let global = push(conn.get("/stats").unwrap(), "global stats");
    assert!(global.contains(r#""sessions":"#), "{global}");

    let delete = push(
        conn.request(&Request::new("DELETE", "/session/s-1"))
            .unwrap(),
        "delete",
    );
    assert!(delete.contains(r#""closed":true"#), "{delete}");

    handle.shutdown();
    handle.join();
    bodies
}

#[test]
fn session_lifecycle_adapts_to_drift_and_closes_cleanly() {
    let bodies = run_session_sequence(2);
    // The phase switch at access 2000 must have been detected and the
    // re-placement adopted (migration cost 2 per item is cheap against
    // a 15-offset ping-pong).
    let stats = &bodies[5];
    assert!(
        !stats.contains(r#""phase_changes":0"#),
        "no phase change detected: {stats}"
    );
    assert!(
        !stats.contains(r#""replacements":0"#),
        "no re-placement adopted: {stats}"
    );
    // Adapting must have paid off, and the stats JSON says by how much.
    let saved: i64 = stats
        .split(r#""net_amortized_saved":"#)
        .nth(1)
        .and_then(|rest| rest.split(&['}', ','][..]).next())
        .expect("net_amortized_saved in stats")
        .parse()
        .expect("signed integer");
    assert!(saved > 0, "adaptation did not pay off: {stats}");
}

#[test]
fn session_bodies_are_byte_identical_across_thread_counts() {
    let single = {
        let _guard = par::override_threads(1);
        run_session_sequence(1)
    };
    let wide = {
        let _guard = par::override_threads(8);
        run_session_sequence(8)
    };
    assert_eq!(
        single, wide,
        "same session stream must produce the same bytes at 1 and 8 threads"
    );
}

#[test]
fn unknown_and_closed_sessions_answer_404() {
    let handle = ephemeral_server(2, 16);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    // Never-created, malformed, and non-session ids: all 404.
    for path in [
        "/session/s-99/stats",
        "/session/s-99/placement",
        "/session/nope/stats",
        "/session/s-/stats",
    ] {
        let resp = conn.request(&Request::new("GET", path)).unwrap();
        assert_eq!(resp.status, 404, "{path}");
    }
    assert_eq!(
        conn.request(&Request::new("DELETE", "/session/s-99"))
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        conn.post_json("/session/s-99/accesses", r#"{"ids":[1,2]}"#)
            .unwrap()
            .status,
        404
    );

    // A closed session is indistinguishable from an unknown one.
    let create = conn.post_json("/session", "").unwrap();
    assert_eq!(create.status, 200, "{:?}", create.body_str());
    assert!(create.body_str().unwrap().contains(r#""session":"s-1""#));
    assert!(conn
        .request(&Request::new("DELETE", "/session/s-1"))
        .unwrap()
        .is_success());
    assert_eq!(
        conn.request(&Request::new("GET", "/session/s-1/stats"))
            .unwrap()
            .status,
        404
    );

    // Wrong methods are 405, not 404: the resource space is known.
    assert_eq!(
        conn.request(&Request::new("GET", "/session"))
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        conn.post_json("/session/s-1/placement", "{}")
            .unwrap()
            .status,
        405
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn idle_sessions_expire_after_the_ttl() {
    let handle = start(ServeConfig {
        workers: 2,
        session_ttl: std::time::Duration::from_millis(50),
        ..ServeConfig::ephemeral()
    })
    .expect("loopback server starts");
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    assert!(conn.post_json("/session", "").unwrap().is_success());
    assert!(conn
        .request(&Request::new("GET", "/session/s-1/stats"))
        .unwrap()
        .is_success());

    std::thread::sleep(std::time::Duration::from_millis(120));
    assert_eq!(
        conn.request(&Request::new("GET", "/session/s-1/stats"))
            .unwrap()
            .status,
        404,
        "idle session must expire"
    );
    let stats = conn.get("/stats").unwrap();
    let body = stats.body_str().unwrap();
    assert!(body.contains(r#""expired":1"#), "{body}");
    assert!(body.contains(r#""active":0"#), "{body}");

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_drains_an_in_flight_session_ingest() {
    let handle = ephemeral_server(2, 16);
    let addr = handle.local_addr();

    // Create the session over a normal connection first.
    let mut conn = ClientConn::connect(addr).unwrap();
    assert!(conn.post_json("/session", "").unwrap().is_success());

    // Hand-roll an ingest so shutdown lands between the write and the
    // read: the daemon must answer it — and the session's state must
    // reflect the ingest — before closing.
    let ids: Vec<String> = (0..5000).map(|i| (i % 32).to_string()).collect();
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    Request::post(
        "/session/s-1/accesses",
        format!(r#"{{"ids":[{}]}}"#, ids.join(",")).into_bytes(),
    )
    .write_to(&mut wire)
    .unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    handle.shutdown();

    let mut reader = std::io::BufReader::new(stream);
    let resp: Response = read_response(&mut reader)
        .expect("readable response")
        .expect("a response, not EOF: shutdown must drain live sessions");
    assert_eq!(resp.status, 200);
    assert!(
        resp.body_str().unwrap().contains(r#""accepted":5000"#),
        "{:?}",
        resp.body_str()
    );

    handle.join();
    let eof = read_response(&mut reader).expect("clean teardown");
    assert!(eof.is_none(), "connection must close after shutdown");
}

/// The interleaved workload used by the tiered tests: a linear sweep
/// over six items, then `[0,2,4]` and `[1,3,5]` bursts. The greedy
/// tier-0 placement is good but beatable, so a tier-2 portfolio run
/// finds a strictly cheaper arrangement — exactly the gap background
/// upgrades exist to close.
fn interleaved_ids() -> String {
    let mut ids: Vec<u32> = (0..6).collect();
    for _ in 0..10 {
        ids.extend([0, 2, 4]);
    }
    for _ in 0..10 {
        ids.extend([1, 3, 5]);
    }
    ids.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Pulls the first workload's `cache` label object and `cost` out of a
/// tiered solve response body.
fn tiered_label_and_cost(body: &str) -> (dwm_foundation::json::Object, u64) {
    let parsed = dwm_foundation::json::parse(body).expect("response is JSON");
    let obj = parsed.as_object().expect("object body");
    let label = obj
        .get("cache")
        .and_then(|v| v.as_array())
        .and_then(|a| a.first())
        .and_then(|v| v.as_object())
        .unwrap_or_else(|| panic!("tiered cache label missing: {body}"))
        .clone();
    let cost = obj
        .get("results")
        .and_then(|v| v.as_array())
        .and_then(|a| a.first())
        .and_then(|v| v.as_object())
        .and_then(|r| r.get("cost"))
        .and_then(|v| v.as_number())
        .and_then(|n| n.as_u64())
        .unwrap_or_else(|| panic!("cost missing: {body}"));
    (label, cost)
}

fn label_u64(label: &dwm_foundation::json::Object, key: &str) -> u64 {
    label
        .get(key)
        .and_then(|v| v.as_number())
        .and_then(|n| n.as_u64())
        .unwrap_or_else(|| panic!("label field {key} missing: {label:?}"))
}

#[test]
fn tiered_protocol_edges_over_the_socket() {
    let handle = ephemeral_server(2, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    // A zero deadline can never be met — admission control refuses up
    // front with 503 instead of knowingly answering late, and the
    // connection stays usable. u64::MAX always fits.
    let zero = conn
        .post_json(
            "/solve",
            r#"{"quality":"fast","deadline_us":0,"ids":[0,1,0,2,1,3]}"#,
        )
        .unwrap();
    assert_eq!(zero.status, 503, "{:?}", zero.body_str());
    assert!(
        zero.body_str().unwrap().contains("infeasible"),
        "{:?}",
        zero.body_str()
    );

    // A structurally different workload — ids normalize to a dense
    // trace, so a mere relabeling of the first would be a cache hit.
    let huge = conn
        .post_json(
            "/solve",
            r#"{"deadline_us":18446744073709551615,"ids":[0,1,2,3,0,2,4,1,5,3]}"#,
        )
        .unwrap();
    assert_eq!(huge.status, 200, "{:?}", huge.body_str());
    let (label, _) = tiered_label_and_cost(huge.body_str().unwrap());
    assert_eq!(label.get("status").unwrap().as_str(), Some("miss"));
    assert_eq!(
        label_u64(&label, "tier"),
        1,
        "an unbounded deadline buys the refined tier"
    );

    // Unknown quality names, mixed legacy/tiered forms, and negative
    // deadlines are protocol errors — 400 with a JSON error body, and
    // the connection stays usable.
    for body in [
        r#"{"quality":"turbo","ids":[0,1]}"#,
        r#"{"algorithm":"hybrid","quality":"fast","ids":[0,1]}"#,
        r#"{"deadline_us":-3,"ids":[0,1]}"#,
    ] {
        let resp = conn.post_json("/solve", body).unwrap();
        assert_eq!(resp.status, 400, "{body}");
        assert!(resp.body_str().unwrap().contains("error"), "{body}");
    }
    assert!(conn.get("/health").unwrap().is_success());

    handle.shutdown();
    handle.join();
}

#[test]
fn exact_quality_over_the_socket_is_optimal_bounded_and_session_free() {
    let handle = ephemeral_server(2, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    // A 6-item workload is well within the exact plan limit: the solve
    // answers with the subset-DP optimum, labeled tier 3 / subset-dp.
    let req = format!(r#"{{"quality":"exact","ids":[{}]}}"#, interleaved_ids());
    let first = conn.post_json("/solve", req.as_str()).unwrap();
    assert_eq!(first.status, 200, "{:?}", first.body_str());
    let (label, exact_cost) = tiered_label_and_cost(first.body_str().unwrap());
    assert_eq!(label.get("status").unwrap().as_str(), Some("miss"));
    assert_eq!(label_u64(&label, "tier"), 3);
    assert_eq!(label.get("solver").unwrap().as_str(), Some("subset-dp"));

    // The optimum is a floor for every heuristic tier: a best-quality
    // read of the same workload hits the exact record and can never
    // improve on it, so no upgrade is enqueued.
    let best = format!(r#"{{"quality":"best","ids":[{}]}}"#, interleaved_ids());
    let warm = conn.post_json("/solve", best.as_str()).unwrap();
    let (label, warm_cost) = tiered_label_and_cost(warm.body_str().unwrap());
    assert_eq!(label.get("status").unwrap().as_str(), Some("hit"));
    assert_eq!(label_u64(&label, "tier"), 3);
    assert_eq!(warm_cost, exact_cost);
    assert_eq!(handle.engine().upgrade_queue_depth(), 0);

    // Thirteen distinct items exceeds the exact plan limit: 400, and
    // the connection stays usable.
    let ids: Vec<String> = (0..13u32).map(|i| i.to_string()).collect();
    let big = format!(r#"{{"quality":"exact","ids":[{}]}}"#, ids.join(","));
    let resp = conn.post_json("/solve", big.as_str()).unwrap();
    assert_eq!(resp.status, 400, "{:?}", resp.body_str());
    assert!(resp.body_str().unwrap().contains("exact"));

    // Sessions refuse the knob outright — their item set can outgrow
    // the exact solver at any ingest.
    let sess = conn
        .post_json("/session", r#"{"quality":"exact"}"#)
        .unwrap();
    assert_eq!(sess.status, 400, "{:?}", sess.body_str());
    assert!(sess.body_str().unwrap().contains("exact"));
    assert!(conn.get("/health").unwrap().is_success());

    handle.shutdown();
    handle.join();
}

#[test]
fn repeat_solve_after_background_upgrade_returns_the_upgraded_record() {
    let handle = ephemeral_server(2, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    let body = format!(
        r#"{{"quality":"best","deadline_us":45,"ids":[{}]}}"#,
        interleaved_ids()
    );

    // First solve: the 45 µs budget only fits tier 0, so the response
    // is the greedy answer and a tier-2 job is queued behind it.
    let first = conn.post_json("/solve", body.as_str()).unwrap();
    assert_eq!(first.status, 200, "{:?}", first.body_str());
    let (label, greedy_cost) = tiered_label_and_cost(first.body_str().unwrap());
    assert_eq!(label.get("status").unwrap().as_str(), Some("miss"));
    assert_eq!(label_u64(&label, "tier"), 0);
    assert_eq!(label_u64(&label, "version"), 1);

    assert!(
        handle
            .engine()
            .drain_upgrades(std::time::Duration::from_secs(60)),
        "background upgrade must land"
    );

    // Same request again: a cache hit, but the record underneath was
    // rewritten in place — higher tier, bumped version, strictly lower
    // cost. The client never re-sent anything to get the better answer.
    let second = conn.post_json("/solve", body.as_str()).unwrap();
    let (label, upgraded_cost) = tiered_label_and_cost(second.body_str().unwrap());
    assert_eq!(label.get("status").unwrap().as_str(), Some("hit"));
    assert_eq!(label_u64(&label, "tier"), 2);
    assert_eq!(label_u64(&label, "version"), 2);
    assert_eq!(label_u64(&label, "upgrades"), 1);
    assert!(
        upgraded_cost < greedy_cost,
        "upgrade must strictly improve: tier0 {greedy_cost}, tier2 {upgraded_cost}"
    );

    let stats = conn.get("/stats").unwrap();
    let stats_body = stats.body_str().unwrap();
    assert!(
        stats_body
            .contains(r#""upgrades":{"enqueued":1,"applied":1,"discarded":0,"queue_depth":0}"#),
        "{stats_body}"
    );

    handle.shutdown();
    handle.join();
}

/// Drives one workload through each tier's foreground solve path plus
/// a drained background upgrade, and returns every response body.
fn run_tiered_sequence(workers: usize) -> Vec<String> {
    let handle = ephemeral_server(workers, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).expect("connect");
    let mut bodies = Vec::new();

    // Distinct workloads per knob form: tiered solves share one cache
    // namespace, so reusing ids would turn later requests into hits of
    // the first record instead of exercising their own tier.
    let sweep: Vec<String> = (0..600).map(|i| (i % 24).to_string()).collect();
    for body in [
        format!(r#"{{"quality":"fast","ids":[{}]}}"#, sweep.join(",")),
        format!(
            r#"{{"quality":"balanced","deadline_us":18446744073709551615,"workloads":[{{"ids":[{}]}},{{"ids":[0,7,0,7,3,5]}}]}}"#,
            sweep.join(",")
        ),
        format!(
            r#"{{"quality":"best","deadline_us":45,"ids":[{}]}}"#,
            interleaved_ids()
        ),
    ] {
        let resp = conn.post_json("/solve", body.as_str()).expect("response");
        assert!(resp.is_success(), "{body}: status {}", resp.status);
        bodies.push(resp.body_str().expect("utf-8 body").to_owned());
    }

    // Drain the tier-2 job the best-quality solve queued, then re-read
    // it: the fourth body is the upgraded record's rendering.
    assert!(handle
        .engine()
        .drain_upgrades(std::time::Duration::from_secs(60)));
    let body = format!(
        r#"{{"quality":"best","deadline_us":45,"ids":[{}]}}"#,
        interleaved_ids()
    );
    let resp = conn.post_json("/solve", body.as_str()).expect("response");
    assert!(resp.is_success());
    bodies.push(resp.body_str().expect("utf-8 body").to_owned());

    handle.shutdown();
    handle.join();
    bodies
}

#[test]
fn tiered_bodies_are_byte_identical_across_thread_counts() {
    let single = {
        let _guard = par::override_threads(1);
        run_tiered_sequence(1)
    };
    let wide = {
        let _guard = par::override_threads(8);
        run_tiered_sequence(8)
    };
    assert_eq!(
        single, wide,
        "every tier — including the parallel tier-2 portfolio — must \
         produce the same bytes at 1 and 8 threads"
    );
}

#[test]
fn stats_and_metrics_agree_on_tier_upgrade_and_deadline_families() {
    let handle = ephemeral_server(2, 64);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    // Two tier-0 misses (one carrying a deadline), one upgrade cycle,
    // one hit — every new counter family ends up nonzero or provably
    // zero.
    let fast = r#"{"quality":"fast","deadline_us":1000000,"ids":[0,1,0,2,1,3]}"#;
    assert!(conn.post_json("/solve", fast).unwrap().is_success());
    let best = format!(
        r#"{{"quality":"best","deadline_us":45,"ids":[{}]}}"#,
        interleaved_ids()
    );
    assert!(conn
        .post_json("/solve", best.as_str())
        .unwrap()
        .is_success());
    assert!(handle
        .engine()
        .drain_upgrades(std::time::Duration::from_secs(60)));
    assert!(conn
        .post_json("/solve", best.as_str())
        .unwrap()
        .is_success());

    let stats = conn.get("/stats").unwrap();
    let stats_json = dwm_foundation::json::parse(stats.body_str().unwrap()).expect("stats is JSON");
    let stats_obj = stats_json.as_object().expect("stats is an object");
    let section = |name: &str, key: &str| {
        stats_obj
            .get(name)
            .and_then(|v| v.as_object())
            .and_then(|o| o.get(key))
            .and_then(|v| v.as_number())
            .and_then(|n| n.as_u64())
            .unwrap_or_else(|| panic!("stats field {name}.{key} missing"))
    };

    let text = conn.get("/metrics").unwrap().body_str().unwrap().to_owned();
    for (stats_value, metric) in [
        (
            section("tiers", "tier0"),
            r#"dwm_serve_tier_solves_total{tier="0"}"#,
        ),
        (
            section("tiers", "tier1"),
            r#"dwm_serve_tier_solves_total{tier="1"}"#,
        ),
        (
            section("tiers", "tier2"),
            r#"dwm_serve_tier_solves_total{tier="2"}"#,
        ),
        (
            section("tiers", "tier3"),
            r#"dwm_serve_tier_solves_total{tier="3"}"#,
        ),
        (
            section("upgrades", "enqueued"),
            "dwm_serve_upgrades_enqueued_total",
        ),
        (
            section("upgrades", "applied"),
            "dwm_serve_upgrades_applied_total",
        ),
        (
            section("upgrades", "discarded"),
            "dwm_serve_upgrades_discarded_total",
        ),
        (
            section("upgrades", "queue_depth"),
            "dwm_serve_upgrade_queue_depth",
        ),
        (section("deadline", "met"), "dwm_serve_deadline_met_total"),
        (
            section("deadline", "missed"),
            "dwm_serve_deadline_missed_total",
        ),
        (
            section("deadline", "infeasible"),
            "dwm_serve_deadline_infeasible_total",
        ),
    ] {
        assert_eq!(
            stats_value,
            scrape_value(&text, metric),
            "/stats and /metrics disagree on {metric}"
        );
    }

    // The concrete shape of this sequence: two foreground tier-0
    // solves, no foreground tier 1/2, exactly one upgrade enqueued and
    // applied, and every deadline-carrying response audited.
    assert_eq!(section("tiers", "tier0"), 2);
    assert_eq!(section("tiers", "tier1"), 0);
    assert_eq!(section("tiers", "tier2"), 0);
    assert_eq!(section("tiers", "tier3"), 0);
    assert_eq!(section("deadline", "infeasible"), 0);
    assert_eq!(section("upgrades", "enqueued"), 1);
    assert_eq!(section("upgrades", "applied"), 1);
    assert_eq!(section("upgrades", "queue_depth"), 0);
    assert_eq!(
        section("deadline", "met") + section("deadline", "missed"),
        3,
        "all three deadline-carrying solves must be audited"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn load_harness_reports_clean_deterministic_run() {
    let handle = ephemeral_server(4, 128);
    let config = LoadConfig {
        requests: 120,
        clients: 4,
        workloads: 6,
        items: 32,
        len: 900,
        ..LoadConfig::new(handle.local_addr())
    };
    let report = load::run(&config).expect("clients connect");
    handle.shutdown();
    handle.join();

    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.sent, 120);
    assert_eq!(report.hits + report.misses, report.sent);
    assert!(report.hits > 0, "{}", report.summary());

    // The throughput floor only means anything in release builds; a
    // debug-mode solver is an order of magnitude slower.
    #[cfg(not(debug_assertions))]
    assert!(
        report.rps() >= 1000.0,
        "cached-solve throughput below 1000 req/s: {}",
        report.summary()
    );
}

// ---------------------------------------------------------------------
// Event-loop protocol edges and the cluster front (see docs/SERVING.md)
// ---------------------------------------------------------------------

/// Runs the shared request sequence against a clustered daemon and
/// returns the response bodies.
fn run_cluster_sequence(cluster: usize, workers: usize) -> Vec<String> {
    let handle = start(ServeConfig {
        workers,
        cache_capacity: 64,
        cluster,
        ..ServeConfig::ephemeral()
    })
    .expect("clustered loopback server starts");
    let mut conn = ClientConn::connect(handle.local_addr()).expect("connect");
    let bodies: Vec<String> = request_sequence()
        .iter()
        .map(|(path, body)| {
            let resp = conn.post_json(path, body.as_str()).expect("response");
            assert!(resp.is_success(), "{path}: status {}", resp.status);
            resp.body_str().expect("utf-8 body").to_owned()
        })
        .collect();
    handle.shutdown();
    handle.join();
    bodies
}

#[test]
fn cluster_bodies_are_byte_identical_across_shard_counts_and_threads() {
    // The determinism contract must not care how many engine shards sit
    // behind the consistent-hash front or how wide the solver pool is:
    // same requests, same bytes, for every (cluster, threads) corner.
    let single = {
        let _guard = par::override_threads(1);
        run_sequence(1)
    };
    let corners = [
        {
            let _guard = par::override_threads(1);
            run_cluster_sequence(1, 1)
        },
        {
            let _guard = par::override_threads(1);
            run_cluster_sequence(4, 1)
        },
        {
            let _guard = par::override_threads(8);
            run_cluster_sequence(4, 8)
        },
    ];
    for (i, bodies) in corners.iter().enumerate() {
        assert_eq!(
            &single, bodies,
            "cluster corner {i} diverged from the single-engine bodies"
        );
    }
}

#[test]
fn cluster_stats_and_metrics_agree_on_the_routed_family() {
    let handle = start(ServeConfig {
        workers: 2,
        cluster: 3,
        ..ServeConfig::ephemeral()
    })
    .unwrap();
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    // Spread some traffic: distinct solves hash to (potentially)
    // different shards; sessions and health pin to shard 0.
    for k in 0..6u32 {
        let ids: Vec<String> = (0..40).map(|i| ((i * (k + 3)) % 13).to_string()).collect();
        let body = format!(r#"{{"ids":[{}]}}"#, ids.join(","));
        assert!(conn
            .post_json("/solve", body.as_str())
            .unwrap()
            .is_success());
    }
    assert!(conn.get("/health").unwrap().is_success());

    let stats = conn.get("/stats").unwrap();
    let stats_json = dwm_foundation::json::parse(stats.body_str().unwrap()).expect("stats JSON");
    let obj = stats_json.as_object().expect("stats object");
    let cluster = obj
        .get("cluster")
        .and_then(|v| v.as_object())
        .expect("cluster section");
    let num = |v: &dwm_foundation::json::Value| v.as_number().and_then(|n| n.as_u64());
    assert_eq!(cluster.get("shards").and_then(&num), Some(3));
    let shards = obj
        .get("shards")
        .and_then(|v| v.as_array())
        .expect("per-shard stats array");
    assert_eq!(shards.len(), 3);
    // Shard 0 owns /health: its own stats object counted it.
    let shard0 = shards[0].as_object().expect("shard 0 stats");
    assert!(shard0.get("requests").and_then(&num).unwrap() >= 1);

    // /stats and /metrics are two renderings of the same cluster
    // registry: the routed counters must agree exactly per shard.
    let routed = cluster
        .get("routed")
        .and_then(|v| v.as_object())
        .expect("routed section");
    let metrics = conn.get("/metrics").unwrap();
    let text = metrics.body_str().unwrap().to_owned();
    let mut total = 0;
    for shard in 0..3 {
        let from_stats = routed.get(&shard.to_string()).and_then(&num).unwrap();
        let from_scrape = scrape_value(
            &text,
            &format!(r#"dwm_serve_cluster_routed_total{{shard="{shard}"}}"#),
        );
        assert_eq!(from_stats, from_scrape, "routed[{shard}] disagrees");
        total += from_stats;
    }
    // 6 solves + 1 health were routed; /stats and /metrics are answered
    // by the front itself and never counted.
    assert_eq!(total, 7);
    // Every shard's engine registry appears in the joined scrape under
    // its shard label.
    for shard in 0..3 {
        assert!(
            text.contains(&format!(r#"dwm_serve_requests_total{{shard="{shard}"}}"#)),
            "shard {shard} engine registry missing from the cluster scrape:\n{text}"
        );
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn event_loop_metric_families_cover_the_transport_stats() {
    let handle = ephemeral_server(2, 16);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    assert!(conn.get("/health").unwrap().is_success());
    let metrics = conn.get("/metrics").unwrap();
    let text = metrics.body_str().unwrap().to_owned();

    // The event-loop families from docs/OBSERVABILITY.md all exist the
    // moment a server has started (registered eagerly, not on first
    // event).
    for family in [
        "dwm_net_connections_accepted_total",
        "dwm_net_connections_rejected_total",
        "dwm_net_requests_total",
        "dwm_net_malformed_requests_total",
        "dwm_net_queue_depth",
        "dwm_net_handler_latency_ns",
        "dwm_net_loop_wakeups_total",
        "dwm_net_readiness_queue_depth",
        "dwm_net_open_connections",
        "dwm_net_read_timeouts_total",
        r#"dwm_net_shard_accepted_total{shard="0"}"#,
        r#"dwm_net_shard_open_connections{shard="0"}"#,
    ] {
        assert!(text.contains(family), "family {family} missing:\n{text}");
    }

    // The transport families live in the process-global registry, which
    // every concurrently running test server shares — so the scrape is
    // a monotone upper bound on this one server's counters, never less.
    use std::sync::atomic::Ordering;
    let stats = handle.stats();
    assert!(
        scrape_value(&text, "dwm_net_connections_accepted_total")
            >= stats.accepted.load(Ordering::Relaxed)
    );
    assert!(
        scrape_value(&text, "dwm_net_requests_total") >= stats.requests.load(Ordering::Relaxed)
    );
    assert!(stats.accepted.load(Ordering::Relaxed) >= 1);
    assert!(stats.requests.load(Ordering::Relaxed) >= 2);

    handle.shutdown();
    handle.join();
}

#[test]
fn pipelined_keep_alive_requests_preserve_framing() {
    let handle = ephemeral_server(2, 16);
    let addr = handle.local_addr();

    // Three requests in one burst before reading anything: the daemon
    // must answer all three, in order, on the one connection.
    let mut wire = Vec::new();
    Request::new("GET", "/health").write_to(&mut wire).unwrap();
    Request::post("/solve", br#"{"ids":[0,2,0,2,1]}"#.to_vec())
        .write_to(&mut wire)
        .unwrap();
    Request::new("GET", "/health").write_to(&mut wire).unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();

    let mut reader = std::io::BufReader::new(stream);
    let first = read_response(&mut reader).unwrap().expect("first response");
    assert_eq!(first.status, 200);
    assert_eq!(
        first.body_str().unwrap(),
        r#"{"status":"ok","service":"dwm-serve"}"#
    );
    let second = read_response(&mut reader)
        .unwrap()
        .expect("second response");
    assert_eq!(second.status, 200);
    assert!(second.body_str().unwrap().contains(r#""results""#));
    let third = read_response(&mut reader).unwrap().expect("third response");
    assert_eq!(third.status, 200);
    assert_eq!(first.body_str(), third.body_str());

    handle.shutdown();
    handle.join();
}

#[test]
fn slow_header_writer_is_cut_off_with_408() {
    let handle = start(ServeConfig {
        workers: 1,
        read_deadline: std::time::Duration::from_millis(150),
        ..ServeConfig::ephemeral()
    })
    .unwrap();

    // A slowloris client: opens, writes half a request line, stalls.
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.write_all(b"POST /sol").unwrap();
    stream.flush().unwrap();

    let mut reader = std::io::BufReader::new(stream);
    let resp = read_response(&mut reader)
        .expect("a 408, not a reset")
        .expect("a response, not silent EOF");
    assert_eq!(resp.status, 408);
    assert_eq!(resp.header("connection"), Some("close"));
    let eof = read_response(&mut reader).expect("clean close after 408");
    assert!(eof.is_none(), "connection must close after the timeout");

    // The daemon itself is unharmed.
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    assert!(conn.get("/health").unwrap().is_success());

    handle.shutdown();
    handle.join();
}

/// A solve body big enough that its response (a placement array over
/// every item) overflows the kernel socket buffer of a non-reading
/// client, forcing the event loop through its partial-write path.
fn large_solve_body() -> String {
    let ids: Vec<String> = (0..60_000u32).map(|i| i.to_string()).collect();
    format!(r#"{{"algorithm":"organ-pipe","ids":[{}]}}"#, ids.join(","))
}

#[test]
fn partial_writes_to_a_slow_reader_preserve_framing() {
    let handle = ephemeral_server(2, 16);
    let addr = handle.local_addr();

    // Reference bytes from a promptly reading client.
    let mut prompt = ClientConn::connect(addr).unwrap();
    let reference = prompt.post_json("/solve", large_solve_body()).unwrap();
    assert!(reference.is_success());

    // The slow client writes the request, then refuses to read while
    // the server fills the socket buffer and has to park the remainder
    // behind EPOLLOUT.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    Request::post("/solve", large_solve_body().into_bytes())
        .write_to(&mut wire)
        .unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));

    let mut reader = std::io::BufReader::new(stream);
    let resp = read_response(&mut reader)
        .expect("readable response")
        .expect("a response despite the stalled buffer");
    assert_eq!(resp.status, 200);
    // The cache field legitimately flips miss→hit between the two
    // requests; everything from "results" on must be byte-identical.
    let results = |r: &Response| {
        r.body_str()
            .and_then(|b| {
                b.split_once(r#""results":"#)
                    .map(|(_, rest)| rest.to_owned())
            })
            .expect("results portion")
    };
    assert_eq!(
        results(&resp),
        results(&reference),
        "partial writes must reassemble to the exact same bytes"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn mid_response_disconnect_leaves_the_daemon_serving() {
    let handle = ephemeral_server(2, 16);
    let addr = handle.local_addr();

    // Ask for a big response and vanish before reading it: the write
    // path hits a dead peer (EPIPE/ECONNRESET) and must just drop the
    // connection, not panic or wedge a shard.
    for _ in 0..3 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        Request::post("/solve", large_solve_body().into_bytes())
            .write_to(&mut wire)
            .unwrap();
        stream.write_all(&wire).unwrap();
        drop(stream);
    }
    std::thread::sleep(std::time::Duration::from_millis(300));

    // Fresh connections still get full service afterwards.
    let mut conn = ClientConn::connect(addr).unwrap();
    assert!(conn.get("/health").unwrap().is_success());
    let solve = conn.post_json("/solve", r#"{"ids":[0,1,0,2]}"#).unwrap();
    assert!(solve.is_success());

    handle.shutdown();
    handle.join();
}
