use dwm_foundation::par;
use dwm_graph::{AccessGraph, CsrGraph};

use crate::algorithms::chain::{ChainGrowth, GroupedChainGrowth};
use crate::algorithms::frequency::OrganPipe;
use crate::algorithms::insertion::GreedyInsertion;
use crate::algorithms::local_search::LocalSearch;
use crate::algorithms::spectral::Spectral;
use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// The full proposed pipeline: portfolio construction + local search.
///
/// No single constructive heuristic dominates across workload shapes —
/// chain growth wins on trace-like graphs, spectral on grids and
/// butterflies, organ pipe on frequency-skewed independent accesses,
/// and the naive first-touch order is already strong on streaming
/// kernels. `Hybrid` therefore evaluates all deterministic candidates
/// (including the naive order), keeps the cheapest, and refines it with
/// windowed [`LocalSearch`].
///
/// Two properties follow by construction and are enforced by tests:
///
/// * **Never worse than naive** — the naive placement is in the
///   candidate pool, so the selected start (and local search, which
///   never increases cost) is at most its cost.
/// * **Deterministic** — every candidate and the refiner are
///   deterministic.
///
/// # Example
///
/// ```
/// use dwm_trace::kernels::Kernel;
/// use dwm_graph::AccessGraph;
/// use dwm_core::{Hybrid, PlacementAlgorithm, Placement};
///
/// let trace = Kernel::Stencil2d { rows: 8, cols: 8, block: 2 }.trace();
/// let graph = AccessGraph::from_trace(&trace);
/// let placement = Hybrid::default().place(&graph);
/// let naive = graph.arrangement_cost(Placement::identity(graph.num_items()).offsets());
/// assert!(graph.arrangement_cost(placement.offsets()) <= naive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hybrid {
    /// The refiner applied to the best candidate.
    pub refiner: LocalSearch,
}

impl Hybrid {
    /// A hybrid pipeline with a custom refiner.
    pub fn with_refiner(refiner: LocalSearch) -> Self {
        Hybrid { refiner }
    }
}

impl PlacementAlgorithm for Hybrid {
    fn name(&self) -> String {
        "hybrid".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        // The graph is frozen once; every candidate, the scoring, and
        // the refiner share the CSR arrays. The portfolio's
        // constructive candidates run in parallel (they are
        // independent); the winner is picked by (cost, roster
        // position), so the choice is identical at any worker count.
        // The naive identity placement leads the roster, preserving the
        // never-worse-than-naive guarantee.
        let csr = CsrGraph::freeze(graph);
        type Candidate<'a> = Box<dyn Fn() -> Placement + Sync + 'a>;
        let mut candidates: Vec<Candidate<'_>> = vec![
            Box::new(|| Placement::identity(graph.num_items())),
            Box::new(|| OrganPipe.place(graph)),
            Box::new(|| ChainGrowth.place(graph)),
            Box::new(|| GroupedChainGrowth.place(graph)),
            Box::new(|| Spectral::default().place_frozen(&csr)),
        ];
        // GreedyInsertion scales as O(n·(n + E)); skip it on large
        // graphs where its marginal benefit cannot justify the latency.
        if graph.num_items() <= 512 {
            candidates.push(Box::new(|| GreedyInsertion.place_frozen(&csr)));
        }
        let scored = par::par_map(&candidates, |candidate| {
            let p = candidate();
            let cost = csr.arrangement_cost(p.offsets());
            (cost, p)
        });
        let mut best = scored
            .into_iter()
            .min_by_key(|(cost, _)| *cost)
            .expect("roster is never empty")
            .1;
        self.refiner.refine_frozen(&csr, &mut best);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{
        interleaved_cluster_graph, kernel_graph, two_cluster_graph,
    };
    use dwm_graph::generators::{clustered_graph, random_graph};

    #[test]
    fn never_worse_than_naive() {
        let graphs = vec![
            two_cluster_graph(),
            interleaved_cluster_graph(),
            kernel_graph(),
            random_graph(24, 0.3, 6, 1),
            clustered_graph(30, 5, 0.8, 0.1, 8, 2),
            AccessGraph::with_items(0),
            AccessGraph::with_items(3),
        ];
        for g in graphs {
            let naive = g.arrangement_cost(Placement::identity(g.num_items()).offsets());
            let hybrid = g.arrangement_cost(Hybrid::default().place(&g).offsets());
            assert!(hybrid <= naive, "hybrid {hybrid} > naive {naive}");
        }
    }

    #[test]
    fn at_least_as_good_as_every_candidate() {
        let g = kernel_graph();
        let hybrid = g.arrangement_cost(Hybrid::default().place(&g).offsets());
        for alg in [
            &OrganPipe as &dyn PlacementAlgorithm,
            &ChainGrowth,
            &GroupedChainGrowth,
            &Spectral::default(),
        ] {
            let c = g.arrangement_cost(alg.place(&g).offsets());
            assert!(hybrid <= c, "hybrid {hybrid} worse than {} {c}", alg.name());
        }
    }

    #[test]
    fn deterministic() {
        let g = random_graph(20, 0.4, 5, 7);
        assert_eq!(Hybrid::default().place(&g), Hybrid::default().place(&g));
    }

    #[test]
    fn produces_valid_permutation() {
        let g = random_graph(15, 0.5, 4, 3);
        let p = Hybrid::default().place(&g);
        let mut seen = [false; 15];
        for off in 0..15 {
            let item = p.item_at(off);
            assert!(!seen[item]);
            seen[item] = true;
        }
    }
}
