//! A minimal blocking client for the serve protocol.
//!
//! One [`ClientConn`] holds one keep-alive TCP connection and issues
//! requests sequentially — exactly the shape of a closed-loop load
//! generator, which is its main consumer ([`crate::load`]), and of the
//! loopback integration tests.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use dwm_foundation::net::{read_response, NetError, Request, Response};

/// One keep-alive connection to a running daemon.
///
/// Holds exactly one file descriptor: the stream lives inside the
/// read buffer and writes borrow it out. The alternative —
/// `try_clone` into a separate writer — duplicates the fd, which
/// would double the cost of the C10k idle-connection hold
/// (`serve_load --idle-conns`) and halve how many a process can park.
pub struct ClientConn {
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Requests are small and latency-bound; Nagle + delayed ACK
        // would add a ~40 ms stall to every round-trip.
        stream.set_nodelay(true)?;
        Ok(ClientConn {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O failures, a malformed response, or the server closing the
    /// connection before answering (mapped to `UnexpectedEof`).
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        // Serialize first so the request leaves as one write (one
        // segment), not a header-by-header trickle.
        let mut wire = Vec::with_capacity(256 + req.body.len());
        req.write_to(&mut wire)?;
        let writer = self.reader.get_mut();
        writer.write_all(&wire)?;
        writer.flush()?;
        match read_response(&mut self.reader) {
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )),
            Err(NetError::Io(e)) => Err(e),
            Err(NetError::Malformed(m)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response: {m}"),
            )),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Same as [`request`](Self::request).
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request(&Request::new("GET", path))
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Same as [`request`](Self::request).
    pub fn post_json(&mut self, path: &str, body: impl Into<Vec<u8>>) -> io::Result<Response> {
        self.request(&Request::post(path, body))
    }
}
