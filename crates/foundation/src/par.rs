//! A zero-dependency scoped work-stealing parallel substrate.
//!
//! The workspace is hermetic (no registry dependencies, enforced by
//! `tests/hermetic.rs`), so rayon is off the table; this module covers
//! the workloads the reproduction actually has — embarrassingly
//! parallel sweeps, per-DBC simulation, portfolio/multi-start
//! placement, and bound-sharing branch and bound — with nothing but
//! `std::thread`, atomics, and a mutex.
//!
//! # Scheduling
//!
//! [`par_map`] / [`par_map_indexed`] / [`par_chunks`] split the index
//! range into one contiguous block per worker. Each worker claims
//! indices from the front of its own block; a worker whose block runs
//! dry *steals the back half* of the richest remaining block (classic
//! range-stealing), falling back to single-index claims for blocks too
//! small to split. All claims go through atomics, so no index is ever
//! processed twice and none is dropped.
//!
//! # Determinism
//!
//! Every `par_*` function returns results **in input order**, so a
//! computation whose per-item closure is pure produces byte-identical
//! output at any worker count. `DWM_THREADS=1` (or
//! [`override_threads`]`(1)`) forces the fully sequential path, which
//! the pool-size invariance tests in `tests/parallel.rs` compare
//! against.
//!
//! # Thread-count selection
//!
//! [`num_threads`] resolves, in order: the thread-local
//! [`override_threads_local`] value, the process-local
//! [`override_threads`] value, the `DWM_THREADS` environment variable,
//! and finally [`std::thread::available_parallelism`].
//!
//! # Priority lanes
//!
//! Foreground work (a request being answered right now) and background
//! work (speculative refinement that only matters eventually) share one
//! machine. [`IdleLane`] is the background side of that split: a single
//! dedicated worker that runs queued jobs **sequentially** (thread-local
//! override pinned to 1) and only starts a job while no section marked
//! with [`enter_foreground`] is in flight. Foreground latency therefore
//! pays at most one core of background interference, and only for the
//! remainder of a job that was already running when the request
//! arrived.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process-local thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread thread-count override; 0 means "not set". Outranks
    /// the process-global override so a background worker can pin
    /// itself sequential without perturbing foreground `par_*` calls.
    static LOCAL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Serializes tests (across this crate's test binary) that install
/// thread overrides, since the override is process-global.
#[cfg(test)]
pub(crate) static TEST_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Restores the previous [`override_threads`] value when dropped.
#[derive(Debug)]
#[must_use = "the override is reverted when the guard drops"]
pub struct ThreadOverrideGuard {
    prev: usize,
}

impl Drop for ThreadOverrideGuard {
    fn drop(&mut self) {
        OVERRIDE.store(self.prev, Ordering::SeqCst);
    }
}

/// Overrides the worker count for the current process until the
/// returned guard drops. Takes precedence over `DWM_THREADS`. Used by
/// the bench harness to time the same workload at several thread
/// counts, and by tests that must not touch the process environment.
pub fn override_threads(n: usize) -> ThreadOverrideGuard {
    ThreadOverrideGuard {
        prev: OVERRIDE.swap(n, Ordering::SeqCst),
    }
}

/// Restores the previous [`override_threads_local`] value when dropped.
/// Not `Send`: the guard must drop on the thread that installed it.
#[derive(Debug)]
#[must_use = "the override is reverted when the guard drops"]
pub struct LocalThreadOverrideGuard {
    prev: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for LocalThreadOverrideGuard {
    fn drop(&mut self) {
        LOCAL_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Overrides the worker count for the **current thread only** until the
/// returned guard drops. Outranks [`override_threads`] and
/// `DWM_THREADS`, so one thread can run sequentially (or wider) while
/// the rest of the process is unaffected — the [`IdleLane`] worker pins
/// itself to 1 this way.
pub fn override_threads_local(n: usize) -> LocalThreadOverrideGuard {
    LocalThreadOverrideGuard {
        prev: LOCAL_OVERRIDE.with(|c| c.replace(n)),
        _not_send: PhantomData,
    }
}

/// The worker count `par_*` calls will use right now.
///
/// Resolution order: [`override_threads_local`], then
/// [`override_threads`], then the `DWM_THREADS` environment variable
/// (values `>= 1`; `0` or garbage fall through), then
/// [`std::thread::available_parallelism`]. Always `>= 1`.
pub fn num_threads() -> usize {
    let local = LOCAL_OVERRIDE.with(Cell::get);
    if local > 0 {
        return local;
    }
    let over = OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Some(n) = std::env::var("DWM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Count of foreground sections currently in flight (process-wide).
static FOREGROUND: AtomicUsize = AtomicUsize::new(0);

/// Marks the current code path as foreground until dropped; see
/// [`enter_foreground`].
#[derive(Debug)]
#[must_use = "foreground status ends when the guard drops"]
pub struct ForegroundGuard(());

impl Drop for ForegroundGuard {
    fn drop(&mut self) {
        FOREGROUND.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Declares that latency-sensitive foreground work is in flight until
/// the returned guard drops. While any foreground section is active,
/// every [`IdleLane`] defers *starting* queued jobs — a request never
/// waits behind speculative background work for a core.
pub fn enter_foreground() -> ForegroundGuard {
    FOREGROUND.fetch_add(1, Ordering::SeqCst);
    ForegroundGuard(())
}

/// Whether any [`enter_foreground`] section is currently in flight.
pub fn foreground_active() -> bool {
    FOREGROUND.load(Ordering::SeqCst) > 0
}

struct LaneShared {
    queue: Mutex<LaneQueue>,
    cv: Condvar,
    closed: AtomicBool,
    executed: AtomicU64,
}

struct LaneJob {
    /// Scheduling priority: highest weight runs first.
    weight: u64,
    /// Submission sequence number: FIFO tie-break within a weight.
    seq: u64,
    job: Box<dyn FnOnce() + Send>,
}

struct LaneQueue {
    jobs: Vec<LaneJob>,
    next_seq: u64,
    running: bool,
}

impl LaneQueue {
    /// Removes and returns the highest-priority job: maximum weight,
    /// ties broken by submission order (lowest sequence first), so an
    /// all-equal-weight queue drains exactly FIFO.
    fn pop_best(&mut self) -> Option<Box<dyn FnOnce() + Send>> {
        let best = self
            .jobs
            .iter()
            .enumerate()
            .max_by_key(|(_, j)| (j.weight, std::cmp::Reverse(j.seq)))
            .map(|(i, _)| i)?;
        Some(self.jobs.remove(best).job)
    }
}

/// An idle-priority background lane: one dedicated worker draining a
/// weighted queue of jobs (highest weight first, FIFO within a
/// weight), each run **sequentially** (thread-local override
/// pinned to 1) and only started while no [`enter_foreground`] section
/// is in flight.
///
/// The lane is the substrate for `dwm-serve`'s background solve
/// upgrades: heavier solvers re-run cached workloads without stealing
/// cycles from the requests that are being answered right now. Jobs
/// must be self-contained (`FnOnce() + Send + 'static`); a panicking
/// job is swallowed so the lane survives. Dropping the lane finishes
/// the job in progress, discards the rest of the queue, and joins the
/// worker.
pub struct IdleLane {
    shared: Arc<LaneShared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for IdleLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdleLane")
            .field("pending", &self.pending())
            .field("executed", &self.executed())
            .finish()
    }
}

impl Default for IdleLane {
    fn default() -> Self {
        Self::new()
    }
}

impl IdleLane {
    /// Starts the lane and its worker thread.
    pub fn new() -> Self {
        let shared = Arc::new(LaneShared {
            queue: Mutex::new(LaneQueue {
                jobs: Vec::new(),
                next_seq: 0,
                running: false,
            }),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
            executed: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("dwm-idle-lane".into())
            .spawn(move || Self::run_worker(&worker_shared))
            .expect("spawning the idle-lane worker");
        IdleLane {
            shared,
            worker: Some(worker),
        }
    }

    fn run_worker(shared: &LaneShared) {
        loop {
            let job = {
                let mut q = shared.queue.lock().expect("lane queue poisoned");
                loop {
                    if shared.closed.load(Ordering::SeqCst) {
                        return;
                    }
                    if q.jobs.is_empty() {
                        q = shared
                            .cv
                            .wait_timeout(q, Duration::from_millis(50))
                            .expect("lane queue poisoned")
                            .0;
                        continue;
                    }
                    // Idle priority: defer while a foreground section
                    // is in flight — *before* selecting a job, so the
                    // weight order is decided when the lane actually
                    // resumes. Popping first would take the best job
                    // of a quiet moment hostage while hotter work
                    // arrives behind it. The lock is released across
                    // the sleep so submitters never queue behind the
                    // poll, and shutdown cuts the wait short so drop
                    // never hangs behind a busy foreground. The poll
                    // interval is a foreground-visible cost on a
                    // loaded single-core box — every wakeup steals a
                    // context switch from whatever is running — so it
                    // is deliberately coarse; background jobs can
                    // afford to start a millisecond late.
                    if foreground_active() {
                        drop(q);
                        std::thread::sleep(Duration::from_millis(1));
                        q = shared.queue.lock().expect("lane queue poisoned");
                        continue;
                    }
                    let job = q.pop_best().expect("queue checked non-empty");
                    q.running = true;
                    break job;
                }
            };
            {
                let _pin = override_threads_local(1);
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            shared.executed.fetch_add(1, Ordering::SeqCst);
            let mut q = shared.queue.lock().expect("lane queue poisoned");
            q.running = false;
            drop(q);
            shared.cv.notify_all();
        }
    }

    /// Enqueues a job at the baseline priority (weight 0). Equal-weight
    /// jobs run in submission order, one at a time. Jobs submitted
    /// after shutdown began are dropped.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.submit_weighted(0, job);
    }

    /// Enqueues a job with an explicit scheduling weight: the queued
    /// job with the **highest** weight runs next, ties broken FIFO.
    /// The weight orders only *queued* jobs — a running job is never
    /// preempted. `dwm-serve` passes the solve-cache hit count here so
    /// the hottest fingerprints upgrade first. Jobs submitted after
    /// shutdown began are dropped.
    pub fn submit_weighted<F: FnOnce() + Send + 'static>(&self, weight: u64, job: F) {
        if self.shared.closed.load(Ordering::SeqCst) {
            return;
        }
        let mut q = self.shared.queue.lock().expect("lane queue poisoned");
        let seq = q.next_seq;
        q.next_seq += 1;
        q.jobs.push(LaneJob {
            weight,
            seq,
            job: Box::new(job),
        });
        drop(q);
        self.shared.cv.notify_all();
    }

    /// Jobs queued or currently running.
    pub fn pending(&self) -> usize {
        let q = self.shared.queue.lock().expect("lane queue poisoned");
        q.jobs.len() + usize::from(q.running)
    }

    /// Total jobs the lane has finished (including panicked ones).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::SeqCst)
    }

    /// Blocks until the lane is empty (no queued or running job) or the
    /// timeout elapses; returns `true` when it drained. Tests and the
    /// bench harness use this to make background completion a
    /// synchronization point instead of a race.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().expect("lane queue poisoned");
        while !q.jobs.is_empty() || q.running {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            q = self
                .shared
                .cv
                .wait_timeout(q, (deadline - now).min(Duration::from_millis(20)))
                .expect("lane queue poisoned")
                .0;
        }
        true
    }
}

impl Drop for IdleLane {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A shared monotonically decreasing `u64` — the atomic-best reducer
/// for branch-and-bound incumbent sharing.
///
/// Workers publish every improvement with [`improve`](Self::improve)
/// and prune against [`get`](Self::get). Because the value only ever
/// decreases toward the true optimum, sharing it across threads cannot
/// change *what* the search converges to, only how fast subtrees are
/// pruned.
#[derive(Debug)]
pub struct AtomicMin(AtomicU64);

impl AtomicMin {
    /// A reducer starting at `initial` (typically a heuristic seed
    /// cost, so pruning bites from the first node).
    pub fn new(initial: u64) -> Self {
        AtomicMin(AtomicU64::new(initial))
    }

    /// The current best value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Publishes `candidate`; returns `true` when it strictly improved
    /// the shared best.
    pub fn improve(&self, candidate: u64) -> bool {
        self.0.fetch_min(candidate, Ordering::SeqCst) > candidate
    }
}

/// A scope handle for coarse fork-join work; see [`scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env> {
    inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Runs `f` on a scoped worker thread — or inline, right now, when
    /// the pool is sequential ([`num_threads`]` == 1`).
    pub fn spawn<F: FnOnce() + Send + 'scope>(&self, f: F) {
        match self.inner {
            Some(s) => {
                s.spawn(f);
            }
            None => f(),
        }
    }
}

/// Scoped fork-join: tasks spawned on the [`Scope`] may borrow from the
/// caller's stack and are all joined before `scope` returns. With one
/// thread every task runs inline in spawn order, which keeps the
/// sequential path allocation- and thread-free.
pub fn scope<'env, T, F>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    if num_threads() <= 1 {
        f(&Scope { inner: None })
    } else {
        std::thread::scope(|s| f(&Scope { inner: Some(s) }))
    }
}

/// A contiguous index block `[start, end)` packed into one atomic so
/// claim and steal are single CAS operations.
struct Block(AtomicU64);

impl Block {
    fn new(start: usize, end: usize) -> Self {
        Block(AtomicU64::new(Self::pack(start, end)))
    }

    fn pack(start: usize, end: usize) -> u64 {
        ((start as u64) << 32) | end as u64
    }

    fn unpack(v: u64) -> (usize, usize) {
        ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
    }

    /// Claims the front index of the block, if any.
    fn claim(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::SeqCst);
        loop {
            let (start, end) = Self::unpack(cur);
            if start >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(start + 1, end),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(start),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of unclaimed indices left in the block.
    fn remaining(&self) -> usize {
        let (start, end) = Self::unpack(self.0.load(Ordering::SeqCst));
        end.saturating_sub(start)
    }

    /// Steals the back half of the block (only when it holds at least
    /// two indices — singletons are claimed, not stolen). Returns the
    /// stolen range.
    fn steal_half(&self) -> Option<(usize, usize)> {
        let mut cur = self.0.load(Ordering::SeqCst);
        loop {
            let (start, end) = Self::unpack(cur);
            if end.saturating_sub(start) < 2 {
                return None;
            }
            let mid = start + (end - start).div_ceil(2);
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(start, mid),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some((mid, end)),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Applies `f` to every item, returning the results **in input order**.
///
/// Work is distributed over [`num_threads`] workers with range
/// stealing; with one thread (or one item) this is a plain sequential
/// map. A panic in `f` propagates to the caller.
///
/// # Example
///
/// ```
/// let squares = dwm_foundation::par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] with the item index passed to the closure.
pub fn par_map_indexed<T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync>(
    items: &[T],
    f: F,
) -> Vec<R> {
    let n = items.len();
    let workers = num_threads().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    assert!(n < u32::MAX as usize, "index range too large to pack");

    // One contiguous block per worker; sizes differ by at most one.
    let blocks: Vec<Block> = (0..workers)
        .map(|w| Block::new(w * n / workers, (w + 1) * n / workers))
        .collect();
    let completed = AtomicUsize::new(0);

    let run_worker = |me: usize| -> Vec<(usize, R)> {
        let mut out = Vec::new();
        let process = |i: usize, out: &mut Vec<(usize, R)>| {
            out.push((i, f(i, &items[i])));
            completed.fetch_add(1, Ordering::SeqCst);
        };
        loop {
            if let Some(i) = blocks[me].claim() {
                process(i, &mut out);
                continue;
            }
            // Own block dry: steal the back half of the richest block.
            let victim = (0..blocks.len())
                .filter(|&w| w != me)
                .max_by_key(|&w| (blocks[w].remaining(), w));
            if let Some((start, end)) = victim.and_then(|w| blocks[w].steal_half()) {
                // No other worker installs into our slot (they only
                // shrink blocks with >= 2 items; ours is empty).
                blocks[me]
                    .0
                    .store(Block::pack(start, end), Ordering::SeqCst);
                continue;
            }
            // Nothing to split: drain stragglers one index at a time.
            if let Some(i) = blocks.iter().find_map(Block::claim) {
                process(i, &mut out);
                continue;
            }
            if completed.load(Ordering::SeqCst) >= n {
                return out;
            }
            std::thread::yield_now();
        }
    };

    let gathered: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| s.spawn(move || run_worker(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    into_ordered(n, gathered.into_iter().flatten())
}

/// Applies `f` to chunks of at most `chunk_size` consecutive items,
/// returning per-chunk results in chunk order. The closure receives the
/// chunk index and the chunk slice.
pub fn par_chunks<T: Sync, R: Send, F: Fn(usize, &[T]) -> R + Sync>(
    items: &[T],
    chunk_size: usize,
    f: F,
) -> Vec<R> {
    let chunks: Vec<&[T]> = items.chunks(chunk_size.max(1)).collect();
    par_map_indexed(&chunks, |i, chunk| f(i, chunk))
}

/// Applies `f` to every item through a mutable reference, returning the
/// results in input order. Items are handed out from a shared queue
/// (coarse tasks — per-DBC simulation — are the intended use), so
/// uneven items still balance across workers.
pub fn par_map_mut<T: Send, R: Send, F: Fn(usize, &mut T) -> R + Sync>(
    items: &mut [T],
    f: F,
) -> Vec<R> {
    let n = items.len();
    let workers = num_threads().min(n);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let queue: Mutex<Vec<(usize, &mut T)>> = Mutex::new(items.iter_mut().enumerate().collect());
    let gathered: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let task = queue.lock().expect("queue poisoned").pop();
                        match task {
                            Some((i, item)) => out.push((i, f(i, item))),
                            None => return out,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    into_ordered(n, gathered.into_iter().flatten())
}

/// Reassembles `(index, result)` pairs into input order.
fn into_ordered<R>(n: usize, pairs: impl Iterator<Item = (usize, R)>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in pairs {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_OVERRIDE_LOCK as LOCK;

    #[test]
    fn par_map_preserves_input_order() {
        let _l = LOCK.lock().unwrap();
        let _g = override_threads(8);
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_passes_correct_indices() {
        let _l = LOCK.lock().unwrap();
        let _g = override_threads(4);
        let items = vec!["a"; 257];
        let out = par_map_indexed(&items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree_on_uneven_work() {
        let _l = LOCK.lock().unwrap();
        let work = |i: usize, x: &u64| -> u64 {
            // Skewed cost: later items spin longer, forcing steals.
            let mut acc = *x;
            for _ in 0..(i * 37) % 4096 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let items: Vec<u64> = (0..500).collect();
        let seq = {
            let _g = override_threads(1);
            par_map_indexed(&items, work)
        };
        let par = {
            let _g = override_threads(7);
            par_map_indexed(&items, work)
        };
        assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let _l = LOCK.lock().unwrap();
        let _g = override_threads(3);
        let items: Vec<u64> = (0..101).collect();
        let sums = par_chunks(&items, 10, |_, c| c.iter().sum::<u64>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        assert_eq!(sums[0], (0..10).sum::<u64>());
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_orders_results() {
        let _l = LOCK.lock().unwrap();
        let _g = override_threads(4);
        let mut items: Vec<u64> = (0..64).collect();
        let old = par_map_mut(&mut items, |i, x| {
            let prev = *x;
            *x += i as u64;
            prev
        });
        assert_eq!(old, (0..64).collect::<Vec<_>>());
        assert_eq!(items, (0..64).map(|i| 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn atomic_min_keeps_the_minimum() {
        let m = AtomicMin::new(100);
        assert!(m.improve(40));
        assert!(!m.improve(40));
        assert!(!m.improve(90));
        assert!(m.improve(7));
        assert_eq!(m.get(), 7);
    }

    #[test]
    fn atomic_min_under_contention() {
        let _l = LOCK.lock().unwrap();
        let _g = override_threads(8);
        let m = AtomicMin::new(u64::MAX);
        let values: Vec<u64> = (0..400).map(|i| 1000 - (i % 997)).collect();
        par_map(&values, |&v| m.improve(v));
        assert_eq!(m.get(), *values.iter().min().unwrap());
    }

    #[test]
    fn scope_joins_all_tasks() {
        let _l = LOCK.lock().unwrap();
        for threads in [1usize, 4] {
            let _g = override_threads(threads);
            let counter = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..16 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 16);
        }
    }

    #[test]
    fn override_guard_restores_previous_value() {
        let _l = LOCK.lock().unwrap();
        let outer = override_threads(5);
        assert_eq!(num_threads(), 5);
        {
            let _inner = override_threads(2);
            assert_eq!(num_threads(), 2);
        }
        assert_eq!(num_threads(), 5);
        drop(outer);
    }

    #[test]
    fn local_override_outranks_global_and_is_thread_scoped() {
        let _l = LOCK.lock().unwrap();
        let _g = override_threads(6);
        assert_eq!(num_threads(), 6);
        {
            let _local = override_threads_local(2);
            assert_eq!(num_threads(), 2);
            // Another thread is unaffected by this thread's override.
            let other = std::thread::spawn(num_threads).join().unwrap();
            assert_eq!(other, 6);
        }
        assert_eq!(num_threads(), 6);
    }

    #[test]
    fn foreground_guard_counts_nested_sections() {
        // FOREGROUND is process-global; serialize with the other test
        // that observes it.
        let _l = LOCK.lock().unwrap();
        assert!(!foreground_active());
        let outer = enter_foreground();
        let inner = enter_foreground();
        assert!(foreground_active());
        drop(inner);
        assert!(foreground_active());
        drop(outer);
        assert!(!foreground_active());
    }

    #[test]
    fn idle_lane_runs_jobs_in_order_and_drains() {
        let lane = IdleLane::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8 {
            let log = Arc::clone(&log);
            lane.submit(move || log.lock().unwrap().push(i));
        }
        assert!(lane.wait_idle(Duration::from_secs(10)), "lane drained");
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
        assert_eq!(lane.pending(), 0);
        assert_eq!(lane.executed(), 8);
    }

    #[test]
    fn idle_lane_jobs_run_sequentially_pinned() {
        let lane = IdleLane::new();
        let seen = Arc::new(Mutex::new(0usize));
        {
            let seen = Arc::clone(&seen);
            lane.submit(move || *seen.lock().unwrap() = num_threads());
        }
        assert!(lane.wait_idle(Duration::from_secs(10)));
        assert_eq!(*seen.lock().unwrap(), 1, "lane jobs are pinned to 1 thread");
    }

    #[test]
    fn idle_lane_defers_while_foreground_active() {
        let _l = LOCK.lock().unwrap();
        let lane = IdleLane::new();
        let fg = enter_foreground();
        let ran = Arc::new(AtomicBool::new(false));
        {
            let ran = Arc::clone(&ran);
            lane.submit(move || ran.store(true, Ordering::SeqCst));
        }
        assert!(
            !lane.wait_idle(Duration::from_millis(150)),
            "job must not start while a foreground section is in flight"
        );
        assert!(!ran.load(Ordering::SeqCst));
        drop(fg);
        assert!(lane.wait_idle(Duration::from_secs(10)));
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn idle_lane_drains_hotter_jobs_before_colder_ones() {
        // Weight ordering applies to *queued* jobs, so hold the lane
        // with a foreground section while everything is submitted.
        let _l = LOCK.lock().unwrap();
        let lane = IdleLane::new();
        let fg = enter_foreground();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (weight, name) in [(1, "cold"), (5, "hot"), (5, "hot-later"), (0, "coldest")] {
            let log = Arc::clone(&log);
            lane.submit_weighted(weight, move || log.lock().unwrap().push(name));
        }
        drop(fg);
        assert!(lane.wait_idle(Duration::from_secs(10)));
        assert_eq!(
            *log.lock().unwrap(),
            vec!["hot", "hot-later", "cold", "coldest"],
            "highest weight first, FIFO within a weight"
        );
    }

    #[test]
    fn idle_lane_survives_a_panicking_job() {
        let lane = IdleLane::new();
        lane.submit(|| panic!("boom"));
        let ran = Arc::new(AtomicBool::new(false));
        {
            let ran = Arc::clone(&ran);
            lane.submit(move || ran.store(true, Ordering::SeqCst));
        }
        assert!(lane.wait_idle(Duration::from_secs(10)));
        assert!(ran.load(Ordering::SeqCst), "lane survives a panic");
        assert_eq!(lane.executed(), 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _l = LOCK.lock().unwrap();
        let _g = override_threads(8);
        assert_eq!(par_map::<u64, u64, _>(&[], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[9u64], |&x| x + 1), vec![10]);
    }
}
