//! Umbrella crate for the DWM data-placement reproduction.
//!
//! Re-exports the public API of every crate in the workspace so that
//! examples and integration tests can use a single dependency:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`device`] | `dwm-device` | racetrack device model: tracks, DBCs, ports, timing/energy |
//! | [`trace`] | `dwm-trace` | access traces, synthetic generators, benchmark kernels |
//! | [`graph`] | `dwm-graph` | weighted access graphs and generators |
//! | [`core`] | `dwm-core` | placement algorithms, cost models, exact optima, SPM allocation, online placement |
//! | [`cache`] | `dwm-cache` | DWM set-associative cache with shift-aware policies |
//! | [`compile`] | `dwm-compile` | affine loop-nest IR → trace → data-layout pass |
//! | [`isa`] | `dwm-isa` | basic-block layout for racetrack instruction memories |
//! | [`sim`] | `dwm-sim` | bit-level self-checking scratchpad simulator |
//!
//! # Quick start
//!
//! ```
//! use dwm_placement::prelude::*;
//!
//! let trace = Trace::from_ids([0u32, 1, 2, 1, 0, 1, 2]);
//! let graph = AccessGraph::from_trace(&trace);
//! let placement = Hybrid::default().place(&graph);
//! let model = SinglePortCost::new();
//! let tuned = model.trace_cost(&placement, &trace).stats.shifts;
//! let naive = model
//!     .trace_cost(&Placement::identity(3), &trace)
//!     .stats
//!     .shifts;
//! assert!(tuned <= naive);
//! ```

#![forbid(unsafe_code)]

pub use dwm_cache as cache;
pub use dwm_compile as compile;
pub use dwm_core as core;
pub use dwm_device as device;
pub use dwm_graph as graph;
pub use dwm_isa as isa;
pub use dwm_sim as sim;
pub use dwm_trace as trace;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dwm_cache::prelude::*;
    pub use dwm_compile::prelude::*;
    pub use dwm_core::prelude::*;
    pub use dwm_device::prelude::*;
    pub use dwm_graph::prelude::*;
    pub use dwm_isa::prelude::*;
    pub use dwm_sim::prelude::*;
    pub use dwm_trace::prelude::*;
}
