//! Pool-size invariance: every parallel code path must produce
//! byte-identical artifacts at any `DWM_THREADS` setting.
//!
//! This is the contract that makes the `dwm_foundation::par` substrate
//! safe to thread through solvers and experiments: parallelism is an
//! execution detail, never an observable one. Each test runs the same
//! pipeline under `DWM_THREADS=1` (forced sequential) and
//! `DWM_THREADS=8` (more workers than the experiment has rows) and
//! compares the serialized JSON byte for byte.
//!
//! The env knob itself is exercised (rather than
//! `par::override_threads`) so the user-facing configuration surface is
//! what is tested.

use std::sync::Mutex;

use dwm_placement::graph::generators::{clustered_graph, random_graph};
use dwm_placement::prelude::*;
use dwm_placement::trace::kernels::Kernel;

/// `DWM_THREADS` is process-global; tests that flip it must not
/// interleave.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("DWM_THREADS", threads.to_string());
    let result = f();
    std::env::remove_var("DWM_THREADS");
    result
}

/// Every parallel artifact the workspace produces, serialized: hybrid
/// portfolio placement, exact branch-and-bound order + cost, parallel
/// multi-start annealing, multi-DBC partitioned layout, and the
/// bit-level multi-DBC simulation report.
fn artifacts() -> Vec<(&'static str, String)> {
    let mut out = Vec::new();

    let trace = Kernel::MatMul { n: 8, block: 2 }.trace();
    let graph = AccessGraph::from_trace(&trace);

    let hybrid = Hybrid::default().place(&graph);
    out.push(("hybrid placement", dwm_foundation::json::to_string(&hybrid)));

    let bb_graph = random_graph(12, 0.5, 8, 0xD15C);
    let (bb_placement, bb_cost) = branch_and_bound_placement(&bb_graph).expect("solvable");
    out.push((
        "branch-and-bound placement",
        format!(
            "{} cost={bb_cost}",
            dwm_foundation::json::to_string(&bb_placement)
        ),
    ));

    let ms_graph = clustered_graph(24, 4, 0.85, 0.1, 8, 3);
    let multi = MultiStart::new(5, 0xD15C).place(&ms_graph);
    out.push((
        "multi-start placement",
        dwm_foundation::json::to_string(&multi),
    ));

    let layout = SpmAllocator::new(4, 16)
        .allocate(&trace, &GroupedChainGrowth)
        .expect("fits");
    let assignment: Vec<String> = (0..layout.num_items())
        .map(|i| format!("{i}:{}/{}", layout.dbc_of(i), layout.offset_of(i)))
        .collect();
    out.push(("spm layout", assignment.join(",")));

    let config = DeviceConfig::builder()
        .dbcs(4)
        .domains_per_track(16)
        .tracks_per_dbc(32)
        .build()
        .expect("valid");
    let mut sim = SpmSimulator::with_layout(&config, &layout).expect("fits");
    let report = sim.run(&trace).expect("replay");
    out.push(("sim report", dwm_foundation::json::to_string(&report)));

    out
}

#[test]
fn pipeline_artifacts_are_identical_at_1_and_8_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Force metric collection ON: instrumented hot loops must not
    // perturb any artifact byte at any thread count.
    let _obs_lock = dwm_foundation::obs::TEST_OVERRIDE_LOCK.lock().unwrap();
    let _obs = dwm_foundation::obs::override_enabled(true);
    let sequential = with_threads(1, artifacts);
    let parallel = with_threads(8, artifacts);
    assert_eq!(sequential.len(), parallel.len());
    for ((name, a), (_, b)) in sequential.iter().zip(&parallel) {
        assert_eq!(a, b, "{name} differs between DWM_THREADS=1 and 8");
    }
}

#[test]
fn dwm_threads_env_knob_is_honoured() {
    let _guard = ENV_LOCK.lock().unwrap();
    assert_eq!(with_threads(1, dwm_foundation::par::num_threads), 1);
    assert_eq!(with_threads(8, dwm_foundation::par::num_threads), 8);
    // Garbage and zero fall back to the hardware default (≥ 1).
    std::env::set_var("DWM_THREADS", "0");
    assert!(dwm_foundation::par::num_threads() >= 1);
    std::env::set_var("DWM_THREADS", "many");
    assert!(dwm_foundation::par::num_threads() >= 1);
    std::env::remove_var("DWM_THREADS");
}
